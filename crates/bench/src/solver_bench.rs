//! The `solver_scaling` sweep: the repo's first tracked perf-trajectory
//! artifact.
//!
//! Sweeps table count × GPU count under identical seeds, running four
//! placement paths per point — size-lookup greedy, the pre-refactor
//! [`StructuredSolver`], the bucketed [`ScalableSolver`], and the two-level
//! [`HierarchicalSolver`] — and scores every plan with the *same* structured
//! cost model (max per-GPU coverage-weighted milliseconds). The result
//! serialises to a canonical `BENCH_solver.json`.
//!
//! Determinism contract: everything in the JSON is a pure function of the
//! sweep configuration and seed, **except** wall-clock timings, which are
//! only measured into the file when
//! [`SolverBenchConfig::include_timing`] is set (`RECSHARD_BENCH_TIMING=1`);
//! otherwise the timing fields hold the documented `-1.0` sentinel so two
//! runs with the same seed emit byte-identical files. Measured wall times
//! are always printed to stdout. The scaled-down sweep is regression-locked
//! by `tests/golden_fingerprints.rs`.

use crate::{skewed_model, Strategy};
use recshard::{
    HierarchicalSolver, RecShardConfig, ScalableSolveReport, ScalableSolver, StructuredSolver,
};
use recshard_memsim::AnalyticalEstimator;
use recshard_sharding::{ClusterSpec, DeviceClass, NodeTopology, ShardingPlan, SystemSpec};
use recshard_stats::{DatasetProfile, DatasetProfiler};
use std::time::Instant;

/// Sentinel written to timing fields when wall-clock measurement is off.
pub const TIMING_DISABLED: f64 = -1.0;

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverBenchConfig {
    /// Table counts swept.
    pub table_counts: Vec<usize>,
    /// GPU counts swept.
    pub gpu_counts: Vec<usize>,
    /// Synthetic samples profiled per point.
    pub profile_samples: usize,
    /// Master seed.
    pub seed: u64,
    /// Measure wall-clock times into the report (breaks byte-stability of
    /// the JSON across runs; stdout always shows measured times).
    pub include_timing: bool,
}

impl SolverBenchConfig {
    /// The full production-scale sweep (100 → 5,000 tables × up to 16 GPUs).
    pub fn full() -> Self {
        Self {
            table_counts: vec![100, 500, 1_000, 2_500, 5_000],
            gpu_counts: vec![4, 8, 16],
            profile_samples: 1_200,
            seed: 0x5CA1E,
            include_timing: false,
        }
    }

    /// A seconds-scale sweep for tests and CI smoke runs.
    pub fn tiny() -> Self {
        Self {
            table_counts: vec![24, 60],
            gpu_counts: vec![4],
            profile_samples: 600,
            seed: 0x5CA1E,
            include_timing: false,
        }
    }

    /// [`full`](Self::full) with environment overrides:
    /// `RECSHARD_SOLVER_MAX_TABLES` truncates the table sweep,
    /// `RECSHARD_SOLVER_MAX_GPUS` the GPU sweep, `RECSHARD_SEED` reseeds,
    /// and `RECSHARD_BENCH_TIMING=1` measures wall times into the JSON.
    pub fn from_env() -> Self {
        let mut cfg = Self::full();
        let get = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
        if let Some(max) = get("RECSHARD_SOLVER_MAX_TABLES") {
            cfg.table_counts.retain(|&t| t as u64 <= max);
        }
        if let Some(max) = get("RECSHARD_SOLVER_MAX_GPUS") {
            cfg.gpu_counts.retain(|&g| g as u64 <= max);
        }
        if let Some(seed) = get("RECSHARD_SEED") {
            cfg.seed = seed;
        }
        cfg.include_timing = std::env::var("RECSHARD_BENCH_TIMING").as_deref() == Ok("1");
        cfg
    }
}

/// One sweep point's results.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Tables in the model.
    pub tables: usize,
    /// GPUs in the system.
    pub gpus: usize,
    /// Nodes of the hierarchical path's topology.
    pub nodes: usize,
    /// Max per-GPU cost (ms) of the greedy size-lookup baseline plan.
    pub greedy_cost_ms: f64,
    /// Max per-GPU cost (ms) of the pre-refactor structured solver plan.
    pub structured_cost_ms: f64,
    /// Max per-GPU cost (ms) of the bucketed scalable solver plan.
    pub scalable_cost_ms: f64,
    /// Max per-GPU cost (ms) of the two-level hierarchical plan.
    pub hierarchical_cost_ms: f64,
    /// `scalable_cost_ms / greedy_cost_ms` (≤ 1: never worse than greedy).
    pub scalable_vs_greedy: f64,
    /// `scalable_cost_ms / structured_cost_ms` (≤ 1.01: within 1% of the
    /// pre-refactor solver).
    pub scalable_vs_structured: f64,
    /// Buckets the preprocessor collapsed the tables into.
    pub buckets: usize,
    /// `tables / buckets`.
    pub compression_ratio: f64,
    /// Expected inter-node bytes per iteration of the hierarchical plan.
    pub internode_bytes_per_iter: f64,
    /// FNV-1a fingerprint of the scalable plan's placements.
    pub scalable_plan_fingerprint: u64,
    /// Wall-clock times (ms), or [`TIMING_DISABLED`].
    pub wall_greedy_ms: f64,
    /// Structured solve wall time (ms), or [`TIMING_DISABLED`].
    pub wall_structured_ms: f64,
    /// Scalable solve wall time (ms), or [`TIMING_DISABLED`].
    pub wall_scalable_ms: f64,
    /// Hierarchical solve wall time (ms), or [`TIMING_DISABLED`].
    pub wall_hierarchical_ms: f64,
}

/// One `hetero_scaling` point: the same skewed workload placed on a mixed
/// two-class cluster (half fast/large-HBM devices, half slow/small-HBM), the
/// class-aware scalable solver against the class-blind greedy baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroPoint {
    /// Tables in the model.
    pub tables: usize,
    /// Total GPUs (evenly split between the two classes).
    pub gpus: usize,
    /// GPUs of the fast/large class.
    pub big_gpus: usize,
    /// GPUs of the slow/small class.
    pub small_gpus: usize,
    /// Max per-GPU cost (ms) of the class-blind greedy size-lookup plan.
    pub greedy_cost_ms: f64,
    /// Max per-GPU cost (ms) of the class-aware scalable plan.
    pub scalable_cost_ms: f64,
    /// `scalable_cost_ms / greedy_cost_ms` — asserted *strictly* below 1 on
    /// skewed-capacity clusters (the class-aware solver must win).
    pub scalable_vs_greedy: f64,
    /// FNV-1a fingerprint of the scalable plan's placements.
    pub scalable_plan_fingerprint: u64,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverBenchReport {
    /// Seed the sweep ran under.
    pub seed: u64,
    /// Whether timing fields hold measurements.
    pub timed: bool,
    /// Per-point results, sweep order (tables outer, gpus inner).
    pub points: Vec<SweepPoint>,
    /// Heterogeneous-cluster results, one per table count.
    pub hetero: Vec<HeteroPoint>,
}

/// Node grid used by the hierarchical path at a given GPU count.
pub fn bench_topology(gpus: usize) -> NodeTopology {
    if gpus >= 16 && gpus.is_multiple_of(4) {
        NodeTopology::new(4, gpus / 4)
    } else if gpus >= 4 && gpus.is_multiple_of(2) {
        NodeTopology::new(2, gpus / 2)
    } else {
        NodeTopology::single(gpus)
    }
}

/// The evaluation system at a sweep point: per-GPU HBM holds about a third
/// of the model's fair share (the paper's capacity-pressure regime), DRAM
/// holds everything.
pub fn bench_system(model_bytes: u64, gpus: usize) -> SystemSpec {
    SystemSpec::uniform(
        gpus,
        (model_bytes / (3 * gpus as u64)).max(1),
        model_bytes,
        1555.0,
        16.0,
    )
}

/// The mixed two-class evaluation cluster of the `hetero_scaling` points:
/// the *aggregate* HBM equals [`bench_system`]'s (same overall capacity
/// pressure) but it is skewed 3:1 between a fast H100-like class and a slow
/// A100-like class, each holding half the GPUs. A class-blind cost model
/// balances load evenly across GPUs and starves on the small/slow half; the
/// class-aware solvers shift hot splits toward the big/fast half.
pub fn hetero_bench_system(model_bytes: u64, gpus: usize) -> ClusterSpec {
    assert!(
        gpus >= 2 && gpus.is_multiple_of(2),
        "hetero points need an even GPU count"
    );
    let fair = (model_bytes / (3 * gpus as u64)).max(2);
    let big = DeviceClass::new("h100-like", fair / 2 * 3, model_bytes, 3350.0, 50.0);
    let small = DeviceClass::new("a100-like", fair / 2, model_bytes, 1555.0, 16.0);
    ClusterSpec::mixed(&[(big, gpus / 2), (small, gpus / 2)])
}

fn max_cost(
    solver: &StructuredSolver,
    model: &recshard_data::ModelSpec,
    profile: &DatasetProfile,
    system: &SystemSpec,
    plan: &ShardingPlan,
) -> f64 {
    // Grid-free exact objective: identical to gpu_costs for plans whose
    // splits sit on their own ICDF grid (greedy, structured), artifact-free
    // for bucketed plans carrying representative-grid row counts.
    solver
        .gpu_costs_exact(model, profile, system, plan)
        .into_iter()
        .fold(0.0f64, f64::max)
}

pub(crate) fn fnv_fold(hash: &mut u64, word: u64) {
    *hash ^= word;
    *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
}

fn plan_fingerprint(plan: &ShardingPlan) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for p in plan.placements() {
        for word in [p.gpu as u64, p.hbm_rows, p.total_rows, p.row_bytes] {
            fnv_fold(&mut hash, word);
        }
    }
    hash
}

/// Runs the sweep.
pub fn run_sweep(cfg: &SolverBenchConfig) -> SolverBenchReport {
    let eval_config = RecShardConfig::default();
    let evaluator = StructuredSolver::new(eval_config);
    let mut points = Vec::new();

    for &tables in &cfg.table_counts {
        let model = skewed_model(tables);
        let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);
        for &gpus in &cfg.gpu_counts {
            let system = bench_system(model.total_bytes(), gpus);
            let topology = bench_topology(gpus);

            let timed = |f: &mut dyn FnMut() -> ShardingPlan| -> (ShardingPlan, f64) {
                let start = Instant::now();
                let plan = f();
                (plan, start.elapsed().as_secs_f64() * 1e3)
            };

            let (greedy_plan, wall_greedy) =
                timed(&mut || Strategy::SizeLookupBased.plan(&model, &profile, &system));
            let (structured_plan, wall_structured) = timed(&mut || {
                evaluator
                    .solve(&model, &profile, &system)
                    .expect("structured solve failed")
            });
            let mut scalable_report: Option<ScalableSolveReport> = None;
            let (scalable_plan, wall_scalable) = timed(&mut || {
                let report = ScalableSolver::new(eval_config)
                    .solve_report(&model, &profile, &system)
                    .expect("scalable solve failed");
                let plan = report.plan.clone();
                scalable_report = Some(report);
                plan
            });
            let scalable_report = scalable_report.expect("scalable report captured");
            let (hier_plan, wall_hier) = timed(&mut || {
                HierarchicalSolver::new(eval_config, topology)
                    .solve(&model, &profile, &system)
                    .expect("hierarchical solve failed")
            });

            let greedy_cost = max_cost(&evaluator, &model, &profile, &system, &greedy_plan);
            let structured_cost = max_cost(&evaluator, &model, &profile, &system, &structured_plan);
            let scalable_cost = max_cost(&evaluator, &model, &profile, &system, &scalable_plan);
            let hier_cost = max_cost(&evaluator, &model, &profile, &system, &hier_plan);
            let internode_bytes = AnalyticalEstimator::new(&profile, &system, model.batch_size())
                .internode_bytes_per_iteration(&hier_plan);

            let gate = |ms: f64| {
                if cfg.include_timing {
                    ms
                } else {
                    TIMING_DISABLED
                }
            };
            points.push(SweepPoint {
                tables,
                gpus,
                nodes: topology.num_nodes,
                greedy_cost_ms: greedy_cost,
                structured_cost_ms: structured_cost,
                scalable_cost_ms: scalable_cost,
                hierarchical_cost_ms: hier_cost,
                scalable_vs_greedy: scalable_cost / greedy_cost.max(1e-12),
                scalable_vs_structured: scalable_cost / structured_cost.max(1e-12),
                buckets: scalable_report.buckets,
                compression_ratio: scalable_report.compression_ratio,
                internode_bytes_per_iter: internode_bytes,
                scalable_plan_fingerprint: plan_fingerprint(&scalable_plan),
                wall_greedy_ms: gate(wall_greedy),
                wall_structured_ms: gate(wall_structured),
                wall_scalable_ms: gate(wall_scalable),
                wall_hierarchical_ms: gate(wall_hier),
            });
            println!(
                "solver_scaling: {tables} tables x {gpus} GPUs ({} nodes): \
                 greedy {wall_greedy:.1} ms, structured {wall_structured:.1} ms, \
                 scalable {wall_scalable:.1} ms ({} buckets, {:.2}x), \
                 hierarchical {wall_hier:.1} ms | cost vs greedy {:.3}, vs structured {:.4}",
                topology.num_nodes,
                scalable_report.buckets,
                scalable_report.compression_ratio,
                scalable_cost / greedy_cost.max(1e-12),
                scalable_cost / structured_cost.max(1e-12),
            );
        }
    }

    // ---- hetero_scaling: mixed two-class cluster, one point per table
    // count at the sweep's largest even GPU count ----
    let mut hetero = Vec::new();
    let hetero_gpus = cfg.gpu_counts.iter().copied().filter(|g| g % 2 == 0).max();
    if let Some(gpus) = hetero_gpus {
        for &tables in &cfg.table_counts {
            let model = skewed_model(tables);
            let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);
            let system = hetero_bench_system(model.total_bytes(), gpus);
            let greedy_plan = Strategy::SizeLookupBased.plan(&model, &profile, &system);
            let scalable_plan = ScalableSolver::new(eval_config)
                .solve(&model, &profile, &system)
                .expect("hetero scalable solve failed");
            let greedy_cost = max_cost(&evaluator, &model, &profile, &system, &greedy_plan);
            let scalable_cost = max_cost(&evaluator, &model, &profile, &system, &scalable_plan);
            let ratio = scalable_cost / greedy_cost.max(1e-12);
            println!(
                "hetero_scaling: {tables} tables x {gpus} GPUs ({}+{} mixed): class-aware vs class-blind greedy cost ratio {ratio:.3}",
                gpus / 2,
                gpus / 2,
            );
            hetero.push(HeteroPoint {
                tables,
                gpus,
                big_gpus: gpus / 2,
                small_gpus: gpus / 2,
                greedy_cost_ms: greedy_cost,
                scalable_cost_ms: scalable_cost,
                scalable_vs_greedy: ratio,
                scalable_plan_fingerprint: plan_fingerprint(&scalable_plan),
            });
        }
    }

    SolverBenchReport {
        seed: cfg.seed,
        timed: cfg.include_timing,
        points,
        hetero,
    }
}

impl SolverBenchReport {
    /// Canonical JSON serialisation (the `BENCH_solver.json` payload):
    /// key order fixed, floats in `{:.9e}`, one point per line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"solver_scaling\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"timed\": {},\n", self.timed));
        out.push_str("  \"timing_sentinel\": \"-1 = timing disabled for byte-stable output\",\n");
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let f = |x: f64| format!("{x:.9e}");
            out.push_str(&format!(
                "    {{\"tables\": {}, \"gpus\": {}, \"nodes\": {}, \
                 \"greedy_cost_ms\": {}, \"structured_cost_ms\": {}, \
                 \"scalable_cost_ms\": {}, \"hierarchical_cost_ms\": {}, \
                 \"scalable_vs_greedy\": {}, \"scalable_vs_structured\": {}, \
                 \"buckets\": {}, \"compression_ratio\": {}, \
                 \"internode_bytes_per_iter\": {}, \
                 \"scalable_plan_fingerprint\": \"{:#018x}\", \
                 \"wall_greedy_ms\": {}, \"wall_structured_ms\": {}, \
                 \"wall_scalable_ms\": {}, \"wall_hierarchical_ms\": {}}}{}\n",
                p.tables,
                p.gpus,
                p.nodes,
                f(p.greedy_cost_ms),
                f(p.structured_cost_ms),
                f(p.scalable_cost_ms),
                f(p.hierarchical_cost_ms),
                f(p.scalable_vs_greedy),
                f(p.scalable_vs_structured),
                p.buckets,
                f(p.compression_ratio),
                f(p.internode_bytes_per_iter),
                p.scalable_plan_fingerprint,
                f(p.wall_greedy_ms),
                f(p.wall_structured_ms),
                f(p.wall_scalable_ms),
                f(p.wall_hierarchical_ms),
                if i + 1 < self.points.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"hetero_points\": [\n");
        for (i, p) in self.hetero.iter().enumerate() {
            let f = |x: f64| format!("{x:.9e}");
            out.push_str(&format!(
                "    {{\"tables\": {}, \"gpus\": {}, \"big_gpus\": {}, \
                 \"small_gpus\": {}, \"greedy_cost_ms\": {}, \
                 \"scalable_cost_ms\": {}, \"scalable_vs_greedy\": {}, \
                 \"scalable_plan_fingerprint\": \"{:#018x}\"}}{}\n",
                p.tables,
                p.gpus,
                p.big_gpus,
                p.small_gpus,
                f(p.greedy_cost_ms),
                f(p.scalable_cost_ms),
                f(p.scalable_vs_greedy),
                p.scalable_plan_fingerprint,
                if i + 1 < self.hetero.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// FNV-1a fingerprint over the canonical JSON with timing fields
    /// blanked, so the value is identical whether or not timing ran.
    pub fn fingerprint(&self) -> u64 {
        let mut untimed = self.clone();
        untimed.timed = false;
        for p in &mut untimed.points {
            p.wall_greedy_ms = TIMING_DISABLED;
            p.wall_structured_ms = TIMING_DISABLED;
            p.wall_scalable_ms = TIMING_DISABLED;
            p.wall_hierarchical_ms = TIMING_DISABLED;
        }
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in untimed.to_json().bytes() {
            fnv_fold(&mut hash, byte as u64);
        }
        hash
    }
}

/// Extracts a numeric field from one canonical-JSON point line.
pub(crate) fn field_num(line: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\": ");
    let start = line.find(&key)? + key.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Compares a freshly computed report against a previously committed
/// `BENCH_solver.json` payload and returns one human-readable line per
/// *cost-ratio regression*: a sweep point (matched on `tables` × `gpus`)
/// whose `scalable_cost_ms` — or a hetero point whose class-aware cost —
/// grew by more than `tolerance` (relative). Points missing on either side
/// are ignored, so trimming the sweep via the `RECSHARD_SOLVER_MAX_*`
/// environment overrides never false-positives.
///
/// This is deliberately stronger than fingerprint comparison: a fingerprint
/// flags *any* plan change, while this gate fails only when the perf
/// trajectory actually regresses.
pub fn cost_regressions(
    current: &SolverBenchReport,
    baseline_json: &str,
    tolerance: f64,
) -> Vec<String> {
    let mut in_hetero = false;
    let mut baseline_points = Vec::new(); // (hetero, tables, gpus, scalable_cost)
    for line in baseline_json.lines() {
        if line.contains("\"hetero_points\"") {
            in_hetero = true;
        }
        let (Some(tables), Some(gpus), Some(cost)) = (
            field_num(line, "tables"),
            field_num(line, "gpus"),
            field_num(line, "scalable_cost_ms"),
        ) else {
            continue;
        };
        baseline_points.push((in_hetero, tables as usize, gpus as usize, cost));
    }

    let mut regressions = Vec::new();
    let mut check = |hetero: bool, tables: usize, gpus: usize, cost: f64| {
        let Some(&(_, _, _, base)) = baseline_points
            .iter()
            .find(|&&(h, t, g, _)| h == hetero && t == tables && g == gpus)
        else {
            return;
        };
        if cost > base * (1.0 + tolerance) {
            regressions.push(format!(
                "{}{tables} tables x {gpus} GPUs: scalable cost {cost:.6e} ms exceeds                  baseline {base:.6e} ms by more than {:.1}%",
                if hetero { "hetero " } else { "" },
                tolerance * 100.0,
            ));
        }
    };
    for p in &current.points {
        check(false, p.tables, p.gpus, p.scalable_cost_ms);
    }
    for h in &current.hetero {
        check(true, h.tables, h.gpus, h.scalable_cost_ms);
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_deterministic_and_sound() {
        let cfg = SolverBenchConfig::tiny();
        let a = run_sweep(&cfg);
        let b = run_sweep(&cfg);
        assert_eq!(a, b, "same seed must reproduce the same sweep");
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.points.len(), 2);
        for p in &a.points {
            assert!(
                p.scalable_vs_greedy <= 1.0 + 1e-9,
                "scalable must never lose to greedy ({})",
                p.scalable_vs_greedy
            );
            assert!(
                p.scalable_vs_structured <= 1.01 + 1e-9,
                "scalable must stay within 1% of the structured solver ({})",
                p.scalable_vs_structured
            );
            assert!(p.compression_ratio >= 1.0);
            assert_eq!(p.wall_scalable_ms, TIMING_DISABLED);
        }
    }

    #[test]
    fn hetero_points_class_aware_strictly_beats_class_blind_greedy() {
        let report = run_sweep(&SolverBenchConfig::tiny());
        assert_eq!(report.hetero.len(), 2, "one hetero point per table count");
        for h in &report.hetero {
            assert_eq!(h.big_gpus + h.small_gpus, h.gpus);
            assert!(
                h.scalable_vs_greedy < 1.0,
                "{} tables x {} GPUs mixed: the class-aware solver must beat \
                 class-blind greedy strictly (ratio {})",
                h.tables,
                h.gpus,
                h.scalable_vs_greedy
            );
        }
    }

    #[test]
    fn hetero_system_preserves_aggregate_pressure() {
        let model = skewed_model(24);
        let uniform = bench_system(model.total_bytes(), 4);
        let mixed = hetero_bench_system(model.total_bytes(), 4);
        assert_eq!(mixed.num_classes(), 2);
        assert!(!mixed.is_uniform());
        // Same aggregate HBM (up to the /2*3 rounding), skewed 3:1 per GPU.
        let tol = 4 * 2; // one rounding unit per GPU
        assert!(
            mixed
                .total_hbm_capacity()
                .abs_diff(uniform.total_hbm_capacity())
                <= tol,
            "aggregate HBM must match the uniform bench system ({} vs {})",
            mixed.total_hbm_capacity(),
            uniform.total_hbm_capacity()
        );
        assert_eq!(mixed.hbm_capacity(0), 3 * mixed.hbm_capacity(3));
    }

    #[test]
    fn cost_regression_gate_accepts_itself_and_catches_inflation() {
        let report = run_sweep(&SolverBenchConfig::tiny());
        let baseline = report.to_json();
        assert!(
            cost_regressions(&report, &baseline, 0.02).is_empty(),
            "a report can never regress against its own serialisation"
        );

        // Inflate every current cost by 10%: a 2% gate must flag every
        // matched point, uniform and hetero alike.
        let mut inflated = report.clone();
        for p in &mut inflated.points {
            p.scalable_cost_ms *= 1.1;
        }
        for h in &mut inflated.hetero {
            h.scalable_cost_ms *= 1.1;
        }
        let regressions = cost_regressions(&inflated, &baseline, 0.02);
        assert_eq!(
            regressions.len(),
            report.points.len() + report.hetero.len(),
            "every inflated point must be flagged: {regressions:?}"
        );
        // A looser 20% gate accepts the same drift.
        assert!(cost_regressions(&inflated, &baseline, 0.2).is_empty());

        // Baseline/current sweep-shape mismatches are ignored, not flagged.
        let mut trimmed = report.clone();
        trimmed.points.truncate(1);
        assert!(cost_regressions(&trimmed, &baseline, 0.02).is_empty());
    }

    #[test]
    fn timing_mode_changes_json_but_not_fingerprint() {
        let mut cfg = SolverBenchConfig::tiny();
        cfg.table_counts = vec![24];
        let untimed = run_sweep(&cfg);
        cfg.include_timing = true;
        let timed = run_sweep(&cfg);
        assert_ne!(untimed.to_json(), timed.to_json());
        assert_eq!(untimed.fingerprint(), timed.fingerprint());
        assert!(timed.points[0].wall_scalable_ms >= 0.0);
    }
}
