//! Figure 13: slowdown of each sharding strategy as the model scales 2x (RM2)
//! and 4x (RM3) from RM1.

use recshard_bench::{compare_strategies, ExperimentConfig, Strategy};
use recshard_data::RmKind;
use std::collections::HashMap;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let mut times: HashMap<(RmKind, Strategy), f64> = HashMap::new();
    for kind in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
        let cmp = compare_strategies(kind, &cfg);
        for (s, _, r) in &cmp.results {
            times.insert((kind, *s), r.iteration_time_ms());
        }
    }

    println!("# Figure 13: max EMB iteration-time slowdown as the model scales from RM1");
    println!("| strategy | 2x model (RM2 / RM1) | 4x model (RM3 / RM1) |");
    println!("|----------|----------------------|----------------------|");
    for s in Strategy::all() {
        let base = times[&(RmKind::Rm1, s)];
        println!(
            "| {} | {:.2}x | {:.2}x |",
            s.label(),
            times[&(RmKind::Rm2, s)] / base,
            times[&(RmKind::Rm3, s)] / base
        );
    }
    let baseline_avg_4x: f64 = [Strategy::SizeBased, Strategy::LookupBased, Strategy::SizeLookupBased]
        .iter()
        .map(|&s| times[&(RmKind::Rm3, s)] / times[&(RmKind::Rm1, s)])
        .sum::<f64>()
        / 3.0;
    let recshard_4x = times[&(RmKind::Rm3, Strategy::RecShard)] / times[&(RmKind::Rm1, Strategy::RecShard)];
    println!();
    println!(
        "Baselines slow down by {baseline_avg_4x:.2}x on average going to the 4x model while \
         RecShard slows down by only {recshard_4x:.2}x — the paper reports 3.07x vs 1.2x, because \
         the extra capacity added by larger hash sizes is rarely accessed and RecShard leaves it in UVM."
    );
}
