//! The dot-product feature interaction layer.

/// Pairwise dot-product interaction (the canonical DLRM interaction): given
/// the bottom-MLP output and every pooled embedding vector (all of the same
/// length), computes the dot product of every unordered pair and concatenates
/// the results with the bottom-MLP output.
///
/// With `n` vectors of dimension `d`, the output has `d + n*(n-1)/2` entries.
///
/// # Panics
///
/// Panics if the vectors do not all share the same dimension.
pub fn dot_interaction(dense: &[f32], pooled_embeddings: &[Vec<f32>]) -> Vec<f32> {
    let d = dense.len();
    for e in pooled_embeddings {
        assert_eq!(
            e.len(),
            d,
            "all interaction inputs must share one dimension"
        );
    }
    let mut all: Vec<&[f32]> = Vec::with_capacity(pooled_embeddings.len() + 1);
    all.push(dense);
    for e in pooled_embeddings {
        all.push(e);
    }
    let mut out = dense.to_vec();
    for i in 0..all.len() {
        for j in (i + 1)..all.len() {
            out.push(all[i].iter().zip(all[j]).map(|(&a, &b)| a * b).sum());
        }
    }
    out
}

/// Output length of [`dot_interaction`] for `num_embeddings` embedding vectors
/// of dimension `dim`.
pub fn interaction_output_dim(dim: usize, num_embeddings: usize) -> usize {
    let n = num_embeddings + 1;
    dim + n * (n - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dimension_matches_formula() {
        let dense = vec![1.0; 4];
        let embs = vec![vec![0.5; 4]; 3];
        let out = dot_interaction(&dense, &embs);
        assert_eq!(out.len(), interaction_output_dim(4, 3));
    }

    #[test]
    fn dot_products_are_correct() {
        let dense = vec![1.0, 2.0];
        let embs = vec![vec![3.0, 4.0]];
        let out = dot_interaction(&dense, &embs);
        // [dense..., dense·emb]
        assert_eq!(out, vec![1.0, 2.0, 11.0]);
    }

    #[test]
    fn no_embeddings_passes_dense_through() {
        let dense = vec![1.0, 2.0, 3.0];
        assert_eq!(dot_interaction(&dense, &[]), dense);
        assert_eq!(interaction_output_dim(3, 0), 3);
    }

    #[test]
    #[should_panic(expected = "must share one dimension")]
    fn mismatched_dims_panic() {
        let _ = dot_interaction(&[1.0, 2.0], &[vec![1.0]]);
    }
}
