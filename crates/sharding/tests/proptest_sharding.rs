//! Property-based tests for sharding plans, the greedy baselines, the
//! remapping tables and two-level (hierarchical) plans.

use proptest::prelude::*;
use recshard_data::{FeatureId, ModelSpec};
use recshard_sharding::{
    GreedySharder, LookupCost, MemoryTier, NodeAssigner, NodeTopology, RemapTable, ShardingPlan,
    SizeCost, SizeLookupCost, SystemSpec, TablePlacement,
};
use recshard_stats::{DatasetProfile, DatasetProfiler};

/// Builds a two-level plan entirely at the sharding layer: level 1 assigns
/// tables to nodes with [`NodeAssigner`], level 2 runs an independent greedy
/// shard per node over that node's tables, and the merged placements use
/// node-major global GPU ids (mirroring `recshard`'s hierarchical solver).
fn two_level_greedy(
    model: &ModelSpec,
    profile: &DatasetProfile,
    system: &SystemSpec,
    topology: NodeTopology,
) -> Option<ShardingPlan> {
    let assignment = NodeAssigner.assign(model, profile, system, topology).ok()?;
    let node_system = SystemSpec::uniform(
        topology.gpus_per_node,
        system.hbm_capacity(0),
        system.dram_capacity(0),
        system.hbm_bandwidth_gbps(0),
        system.uvm_bandwidth_gbps(0),
    );
    let mut placements: Vec<Option<TablePlacement>> = vec![None; model.num_features()];
    for node in 0..topology.num_nodes {
        let tables = assignment.tables_on_node(node);
        if tables.is_empty() {
            continue;
        }
        let features = tables
            .iter()
            .enumerate()
            .map(|(local, &t)| {
                let mut spec = model.features()[t].clone();
                spec.id = FeatureId(local as u32);
                spec
            })
            .collect();
        let profiles = tables
            .iter()
            .enumerate()
            .map(|(local, &t)| {
                let mut p = profile.profiles()[t].clone();
                p.id = FeatureId(local as u32);
                p
            })
            .collect();
        let sub_model = ModelSpec::new(
            "node-sub",
            recshard_data::RmKind::Custom,
            features,
            model.batch_size(),
        );
        let sub_profile = DatasetProfile::new(profiles, profile.samples_profiled());
        let sub_plan = GreedySharder::new(SizeLookupCost)
            .shard(&sub_model, &sub_profile, &node_system)
            .ok()?;
        for (local, p) in sub_plan.placements().iter().enumerate() {
            let global = tables[local];
            placements[global] = Some(TablePlacement {
                table: FeatureId(global as u32),
                gpu: node * topology.gpus_per_node + p.gpu,
                ..*p
            });
        }
    }
    let placements = placements.into_iter().collect::<Option<Vec<_>>>()?;
    Some(
        ShardingPlan::new("two-level-greedy", system.num_gpus(), placements)
            .with_topology(topology),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every row of a remapped table lands in exactly one tier with dense,
    /// unique slots per tier, regardless of the ranking or the HBM budget.
    #[test]
    fn remap_is_a_partition(
        total_rows in 1u64..400,
        hbm_budget in 0u64..500,
        ranking_seed in any::<u64>(),
    ) {
        // A pseudo-random permutation prefix as the "hottest rows" ranking.
        let mut ranked: Vec<u64> = (0..total_rows).collect();
        let mut state = ranking_seed | 1;
        for i in (1..ranked.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ranked.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let ranked_prefix = &ranked[..(ranked.len() / 2)];

        let placement = TablePlacement {
            table: FeatureId(0),
            gpu: 0,
            hbm_rows: hbm_budget.min(total_rows),
            total_rows,
            row_bytes: 64,
        };
        let remap = RemapTable::build(&placement, ranked_prefix);
        prop_assert_eq!(remap.total_rows(), total_rows);
        prop_assert_eq!(remap.hbm_rows() + remap.uvm_rows(), total_rows);
        prop_assert_eq!(remap.hbm_rows(), placement.hbm_rows);

        let mut hbm_slots = std::collections::HashSet::new();
        let mut uvm_slots = std::collections::HashSet::new();
        for row in 0..total_rows {
            let r = remap.lookup(row);
            match r.tier {
                MemoryTier::Hbm => prop_assert!(hbm_slots.insert(r.slot) && r.slot < remap.hbm_rows()),
                MemoryTier::Uvm => prop_assert!(uvm_slots.insert(r.slot) && r.slot < remap.uvm_rows()),
            }
        }
    }

    /// Greedy baseline plans are always structurally valid and within
    /// capacity whenever the sharder succeeds, for all three cost functions.
    #[test]
    fn greedy_plans_are_valid(
        n_tables in 2usize..12,
        seed in 0u64..200,
        gpus in 1usize..5,
        hbm_denominator in 1u64..12,
    ) {
        let model = ModelSpec::small(n_tables, seed);
        let profile = DatasetProfiler::profile_model(&model, 300, seed ^ 0xF00D);
        let system = SystemSpec::uniform(
            gpus,
            (model.total_bytes() / (gpus as u64 * hbm_denominator)).max(1),
            model.total_bytes() * 2,
            1555.0,
            16.0,
        );
        for plan in [
            GreedySharder::new(SizeCost).shard(&model, &profile, &system),
            GreedySharder::new(LookupCost).shard(&model, &profile, &system),
            GreedySharder::new(SizeLookupCost).shard(&model, &profile, &system),
        ]
        .into_iter()
        .flatten()
        {
            prop_assert!(plan.validate(&model, &system).is_ok());
            // Baselines never split a table.
            for p in plan.placements() {
                prop_assert!(p.hbm_rows == 0 || p.hbm_rows == p.total_rows);
            }
        }
    }

    /// Plan accounting identities: per-GPU byte sums equal the model total,
    /// and UVM row fractions stay in [0, 1].
    #[test]
    fn plan_accounting_identities(n_tables in 2usize..10, seed in 0u64..200, gpus in 1usize..4) {
        let model = ModelSpec::small(n_tables, seed);
        let profile = DatasetProfiler::profile_model(&model, 200, seed);
        let system = SystemSpec::uniform(gpus, model.total_bytes(), model.total_bytes(), 1555.0, 16.0);
        let plan = GreedySharder::new(SizeCost).shard(&model, &profile, &system).unwrap();
        let hbm: u64 = plan.hbm_bytes_per_gpu().iter().sum();
        let uvm: u64 = plan.uvm_bytes_per_gpu().iter().sum();
        prop_assert_eq!(hbm + uvm, model.total_bytes());
        prop_assert!((0.0..=1.0).contains(&plan.uvm_row_fraction()));
        prop_assert!((0.0..=1.0).contains(&plan.mean_table_uvm_fraction()));
    }

    /// Every plan places every table exactly once: the per-GPU table lists
    /// partition the model's feature set (no table lost, none duplicated),
    /// and the routing vector agrees with the placements.
    #[test]
    fn plans_place_every_table_exactly_once(
        n_tables in 2usize..14,
        seed in 0u64..300,
        gpus in 1usize..5,
        hbm_denominator in 1u64..10,
    ) {
        let model = ModelSpec::small(n_tables, seed);
        let profile = DatasetProfiler::profile_model(&model, 250, seed ^ 0xACE);
        let system = SystemSpec::uniform(
            gpus,
            (model.total_bytes() / (gpus as u64 * hbm_denominator)).max(1),
            model.total_bytes() * 2,
            1555.0,
            16.0,
        );
        let plan = GreedySharder::new(SizeLookupCost).shard(&model, &profile, &system).unwrap();
        let mut seen = std::collections::HashSet::new();
        for gpu in 0..gpus {
            for table in plan.tables_on_gpu(gpu) {
                prop_assert!(seen.insert(table), "table {table} placed twice");
            }
        }
        prop_assert_eq!(seen.len(), model.num_features());
        let routing = plan.gpu_assignments();
        prop_assert_eq!(routing.len(), model.num_features());
        for (t, p) in plan.placements().iter().enumerate() {
            prop_assert_eq!(routing[t], p.gpu);
            prop_assert!(p.gpu < gpus);
        }
    }

    /// No successful plan ever exceeds a GPU's HBM (or DRAM) capacity, even
    /// one byte, across random capacity pressure.
    #[test]
    fn per_gpu_capacity_is_never_exceeded(
        n_tables in 2usize..12,
        seed in 0u64..300,
        gpus in 1usize..5,
        hbm_denominator in 1u64..16,
    ) {
        let model = ModelSpec::small(n_tables, seed);
        let profile = DatasetProfiler::profile_model(&model, 250, seed);
        let system = SystemSpec::uniform(
            gpus,
            (model.total_bytes() / (gpus as u64 * hbm_denominator)).max(1),
            model.total_bytes() * 2,
            1555.0,
            16.0,
        );
        for plan in [
            GreedySharder::new(SizeCost).shard(&model, &profile, &system),
            GreedySharder::new(LookupCost).shard(&model, &profile, &system),
        ]
        .into_iter()
        .flatten()
        {
            for &bytes in &plan.hbm_bytes_per_gpu() {
                prop_assert!(bytes <= system.hbm_capacity(0));
            }
            for &bytes in &plan.uvm_bytes_per_gpu() {
                prop_assert!(bytes <= system.dram_capacity(0));
            }
        }
    }

    /// Two-level plans place every table exactly once across (node, GPU)
    /// pairs, and the node derived from the global GPU id agrees with the
    /// level-1 assignment.
    #[test]
    fn hierarchical_plans_place_exactly_once_across_node_gpu_pairs(
        n_tables in 4usize..16,
        seed in 0u64..200,
        nodes in 2usize..4,
        gpus_per_node in 1usize..3,
    ) {
        let topology = NodeTopology::new(nodes, gpus_per_node);
        let model = ModelSpec::small(n_tables, seed);
        let profile = DatasetProfiler::profile_model(&model, 300, seed ^ 0x2077);
        let system = SystemSpec::uniform(
            topology.num_gpus(),
            (model.total_bytes() / topology.num_gpus() as u64).max(1),
            model.total_bytes() * 2,
            1555.0,
            16.0,
        );
        let Some(plan) = two_level_greedy(&model, &profile, &system, topology) else { continue };
        prop_assert!(plan.validate(&model, &system).is_ok());
        prop_assert_eq!(plan.topology(), Some(topology));

        let mut seen = std::collections::HashSet::new();
        for node in 0..nodes {
            for gpu in topology.gpus_of_node(node) {
                for table in plan.tables_on_gpu(gpu) {
                    prop_assert!(seen.insert(table), "table {table} placed twice");
                    prop_assert_eq!(plan.node_assignments()[table.index()], node);
                }
            }
        }
        prop_assert_eq!(seen.len(), model.num_features());
        // The per-node table lists partition the model as well.
        let per_node: usize = (0..nodes).map(|n| plan.tables_on_node(n).len()).sum();
        prop_assert_eq!(per_node, model.num_features());
    }

    /// Two-level plans never exceed per-GPU capacity, and therefore never
    /// exceed per-node capacity (each node's budget is the sum of its GPUs');
    /// both are asserted independently against the accounting helpers.
    #[test]
    fn hierarchical_per_node_and_per_gpu_capacity_never_exceeded(
        n_tables in 4usize..14,
        seed in 0u64..200,
        nodes in 2usize..4,
        hbm_denominator in 1u64..8,
    ) {
        let topology = NodeTopology::new(nodes, 2);
        let model = ModelSpec::small(n_tables, seed);
        let profile = DatasetProfiler::profile_model(&model, 300, seed ^ 0xF1E1D);
        let system = SystemSpec::uniform(
            topology.num_gpus(),
            (model.total_bytes() / (topology.num_gpus() as u64 * hbm_denominator)).max(1),
            model.total_bytes() * 2,
            1555.0,
            16.0,
        );
        let Some(plan) = two_level_greedy(&model, &profile, &system, topology) else { continue };
        for &bytes in &plan.hbm_bytes_per_gpu() {
            prop_assert!(bytes <= system.hbm_capacity(0));
        }
        for &bytes in &plan.uvm_bytes_per_gpu() {
            prop_assert!(bytes <= system.dram_capacity(0));
        }
        let node_hbm_cap = system.hbm_capacity(0) * topology.gpus_per_node as u64;
        let node_dram_cap = system.dram_capacity(0) * topology.gpus_per_node as u64;
        let hbm_per_node = plan.hbm_bytes_per_node();
        let uvm_per_node = plan.uvm_bytes_per_node();
        prop_assert_eq!(hbm_per_node.len(), nodes);
        for (&hbm, &uvm) in hbm_per_node.iter().zip(&uvm_per_node) {
            prop_assert!(hbm <= node_hbm_cap);
            prop_assert!(uvm <= node_dram_cap);
        }
        // Node accounting sums to GPU accounting.
        prop_assert_eq!(
            hbm_per_node.iter().sum::<u64>(),
            plan.hbm_bytes_per_gpu().iter().sum::<u64>()
        );
    }

    /// Flattening a two-level plan yields a valid single-level plan with
    /// identical placements (global GPU ids already encode the node-major
    /// layout).
    #[test]
    fn flattening_two_level_plan_yields_valid_single_level_plan(
        n_tables in 4usize..14,
        seed in 0u64..200,
        nodes in 2usize..4,
    ) {
        let topology = NodeTopology::new(nodes, 2);
        let model = ModelSpec::small(n_tables, seed);
        let profile = DatasetProfiler::profile_model(&model, 300, seed ^ 0xFA7);
        let system = SystemSpec::uniform(
            topology.num_gpus(),
            (model.total_bytes() / topology.num_gpus() as u64).max(1),
            model.total_bytes() * 2,
            1555.0,
            16.0,
        );
        let Some(plan) = two_level_greedy(&model, &profile, &system, topology) else { continue };
        let flat = plan.flatten();
        prop_assert_eq!(flat.topology(), None);
        prop_assert!(flat.validate(&model, &system).is_ok());
        prop_assert_eq!(flat.placements(), plan.placements());
        // A flat plan's node view degenerates to one all-covering node.
        prop_assert_eq!(flat.node_assignments(), vec![0usize; model.num_features()]);
        prop_assert_eq!(flat.effective_topology(), NodeTopology::single(system.num_gpus()));
    }

    /// Remap *transitions* are valid permutations: re-sharding a table from
    /// plan A's split to plan B's split maps every row's old location to
    /// exactly one new location — no row lost, none duplicated — because
    /// each side's remap is a bijection row ↔ (tier, slot).
    #[test]
    fn remap_transitions_are_valid_permutations(
        total_rows in 1u64..300,
        budget_a in 0u64..300,
        budget_b in 0u64..300,
        ranking_seed in any::<u64>(),
    ) {
        let mut ranked: Vec<u64> = (0..total_rows).collect();
        let mut state = ranking_seed | 1;
        for i in (1..ranked.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ranked.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mk = |budget: u64| {
            let placement = TablePlacement {
                table: FeatureId(0),
                gpu: 0,
                hbm_rows: budget.min(total_rows),
                total_rows,
                row_bytes: 32,
            };
            RemapTable::build(&placement, &ranked)
        };
        let a = mk(budget_a);
        let b = mk(budget_b);

        // The transition map old-location -> new-location, keyed by row.
        let mut old_locations = std::collections::HashSet::new();
        let mut new_locations = std::collections::HashSet::new();
        for row in 0..total_rows {
            prop_assert!(old_locations.insert(a.lookup(row)), "row {row} duplicated in A");
            prop_assert!(new_locations.insert(b.lookup(row)), "row {row} duplicated in B");
        }
        // Both sides cover every row exactly once with consistent tier sums:
        // the composed transition is a permutation of the table's rows.
        prop_assert_eq!(old_locations.len() as u64, total_rows);
        prop_assert_eq!(new_locations.len() as u64, total_rows);
        prop_assert_eq!(a.hbm_rows() + a.uvm_rows(), total_rows);
        prop_assert_eq!(b.hbm_rows() + b.uvm_rows(), total_rows);
        // Slots within each tier are dense prefixes, so equal-sized splits
        // produce exactly the same location sets (a permutation in the
        // strictest sense).
        if a.hbm_rows() == b.hbm_rows() {
            prop_assert_eq!(old_locations, new_locations);
        }
    }
}
