//! # recshard-data
//!
//! Synthetic sparse-feature universe and training-data generation for the
//! [RecShard](https://doi.org/10.1145/3503222.3507777) reproduction.
//!
//! The RecShard paper characterises production recommendation training data
//! along three per-feature axes (Section 3 of the paper):
//!
//! * the **categorical value frequency distribution** — most features follow a
//!   power law, so a small set of embedding rows sources most accesses,
//! * the **pooling factor** — how many embedding rows a single training sample
//!   reads from a feature's table, and
//! * the **coverage** — the probability the feature is present in a sample at
//!   all.
//!
//! Production traces are not available, so this crate builds a *synthetic
//! feature universe* whose per-feature statistics span the same ranges the
//! paper reports (hundreds of features, cardinalities from hundreds to
//! hundreds of millions, Zipf exponents from near-uniform to strongly skewed,
//! average pooling factors from 1 to ~200 and coverages from <1% to 100%),
//! together with the multi-hot sample generator, the feature hashing scheme
//! and the temporal drift model the paper's figures depend on.
//!
//! ## Quick example
//!
//! ```
//! use recshard_data::{ModelSpec, SampleGenerator};
//!
//! // A scaled-down RM1-like model (Table 2 of the paper).
//! let model = ModelSpec::rm1().scaled(1024);
//! assert_eq!(model.features().len(), 397);
//!
//! // Generate a small batch of multi-hot training samples.
//! let mut gen = SampleGenerator::new(&model, 42);
//! let batch = gen.batch(8);
//! assert_eq!(batch.len(), 8);
//! ```
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod drift;
pub mod feature;
pub mod growth;
pub mod hash;
pub mod model;
pub mod pooling;
pub mod sample;
pub mod scenario;
pub mod zipf;

pub use drift::{DriftModel, DriftPoint};
pub use feature::{FeatureClass, FeatureId, FeatureSpec};
pub use growth::{GpuGeneration, GrowthPoint, GrowthTrend, HardwareCatalog};
pub use hash::{FeatureHasher, HashStats};
pub use model::{ModelSpec, RmKind};
pub use pooling::PoolingSpec;
pub use sample::{Batch, SampleGenerator, SparseSample};
pub use scenario::{
    parse_trace_csv, RateCurve, ScenarioError, ScenarioSpec, ShiftEvent, ShiftKind, TracePoint,
};
pub use zipf::Zipf;
