//! Workspace walking and scan orchestration.

use crate::diag::{Baseline, Diagnostic};
use crate::file::{FileKind, SourceFile};
use crate::rules;
use std::fs;
use std::path::{Path, PathBuf};

/// Name of the committed baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Directories scanned at the workspace root.
const ROOT_DIRS: &[&str] = &["crates", "examples", "tests"];

/// Path prefixes excluded from scanning: vendored stand-ins for crates.io
/// dependencies are external code, not ours to lint.
const EXCLUDED_PREFIXES: &[&str] = &["crates/vendor/"];

/// Classifies a workspace-relative path, or `None` to skip the file.
pub fn classify(rel: &str) -> Option<FileKind> {
    if !rel.ends_with(".rs") {
        return None;
    }
    if EXCLUDED_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return None;
    }
    if rel.starts_with("examples/") {
        return Some(FileKind::Example);
    }
    if rel.starts_with("tests/") {
        return Some(FileKind::Test);
    }
    if rel.starts_with("crates/") {
        // crates/<name>/<role>/...
        let mut parts = rel.splitn(3, '/');
        let (_, _, tail) = (parts.next()?, parts.next()?, parts.next()?);
        if tail.starts_with("tests/") {
            return Some(FileKind::Test);
        }
        if tail.starts_with("benches/") || tail.starts_with("src/bin/") || tail == "src/main.rs" {
            return Some(FileKind::Bin);
        }
        if tail.starts_with("examples/") {
            return Some(FileKind::Example);
        }
        if tail.starts_with("src/") {
            return Some(FileKind::Lib);
        }
    }
    None
}

/// Recursively lists the `.rs` files under the scanned roots, sorted by
/// path for deterministic diagnostic order.
pub fn workspace_files(root: &Path) -> Result<Vec<(PathBuf, String, FileKind)>, String> {
    let mut out = Vec::new();
    for dir in ROOT_DIRS {
        let abs = root.join(dir);
        if abs.is_dir() {
            walk(root, &abs, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, String, FileKind)>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk(root, &p, out)?;
        } else if let Some(rel) = relative(root, &p) {
            if let Some(kind) = classify(&rel) {
                out.push((p, rel, kind));
            }
        }
    }
    Ok(())
}

fn relative(root: &Path, p: &Path) -> Option<String> {
    let rel = p.strip_prefix(root).ok()?;
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    Some(s)
}

/// Runs every rule over one in-memory source, returning located
/// diagnostics. This is the seam the fixture tests drive.
pub fn analyze_source(rel_path: &str, kind: FileKind, src: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel_path, kind, src);
    rules::run_all(&file)
        .into_iter()
        .map(|v| Diagnostic {
            path: rel_path.to_string(),
            line: v.line,
            rule: v.rule.to_string(),
            message: v.message,
            code: file.line_text(v.line).replace('\t', " "),
        })
        .collect()
}

/// Scans the whole workspace under `root`.
pub fn scan_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    for (abs, rel, kind) in workspace_files(root)? {
        let src =
            fs::read_to_string(&abs).map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        diags.extend(analyze_source(&rel, kind, &src));
    }
    crate::diag::sort(&mut diags);
    Ok(diags)
}

/// Outcome of a `--check` run.
#[derive(Debug)]
pub struct CheckReport {
    /// Violations not covered by the baseline: these fail the build.
    pub new: Vec<Diagnostic>,
    /// Grandfathered violations (present and baselined).
    pub baselined: Vec<Diagnostic>,
    /// Baseline entries whose violation no longer exists: also a failure —
    /// the baseline must be regenerated so it only ever shrinks for a reason.
    pub stale: Vec<String>,
}

impl CheckReport {
    /// Whether the check passes.
    pub fn ok(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Scans the workspace and partitions the findings against the committed
/// baseline (an absent baseline file is an empty baseline).
pub fn check(root: &Path) -> Result<CheckReport, String> {
    let diags = scan_workspace(root)?;
    let baseline_path = root.join(BASELINE_FILE);
    let baseline = if baseline_path.is_file() {
        let text = fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
        Baseline::parse(&text)?
    } else {
        Baseline::default()
    };
    let (baselined, new, stale) = baseline.partition(&diags);
    Ok(CheckReport {
        new,
        baselined,
        stale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_layout() {
        assert_eq!(classify("crates/des/src/cluster.rs"), Some(FileKind::Lib));
        assert_eq!(
            classify("crates/bench/src/bin/des_bench.rs"),
            Some(FileKind::Bin)
        );
        assert_eq!(classify("crates/lint/src/main.rs"), Some(FileKind::Bin));
        assert_eq!(
            classify("crates/dlrm/benches/iteration_time.rs"),
            Some(FileKind::Bin)
        );
        assert_eq!(
            classify("crates/stats/tests/p2_accuracy.rs"),
            Some(FileKind::Test)
        );
        assert_eq!(classify("tests/des_cluster.rs"), Some(FileKind::Test));
        assert_eq!(classify("examples/quickstart.rs"), Some(FileKind::Example));
        assert_eq!(classify("crates/vendor/rand/src/lib.rs"), None);
        assert_eq!(classify("README.md"), None);
        assert_eq!(classify("crates/des/Cargo.toml"), None);
    }

    #[test]
    fn analyze_source_locates_and_snips() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let diags = analyze_source("crates/demo/src/lib.rs", FileKind::Lib, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[0].rule, "unwrap");
        assert_eq!(diags[0].code, "x.unwrap()");
    }
}
