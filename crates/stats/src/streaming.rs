//! Streaming summary statistics (mean / variance / extrema).

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance, plus extrema.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WelfordAccumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl WelfordAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the observations (0 when fewer than two).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &WelfordAccumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot of the accumulated statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
            mean: self.mean(),
            std_dev: self.std_dev(),
        }
    }
}

/// Min / max / mean / standard deviation of a set of observations — the
/// format Table 3 of the paper reports per-GPU iteration times in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Mean observation.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes a summary from a slice of observations.
    pub fn of(values: &[f64]) -> Self {
        let mut acc = WelfordAccumulator::new();
        for &v in values {
            acc.push(v);
        }
        acc.summary()
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2}/{:.2}/{:.2}/{:.2}",
            self.min, self.max, self.mean, self.std_dev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_direct_computation() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&values);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let acc = WelfordAccumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
        assert_eq!(acc.summary().count, 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = WelfordAccumulator::new();
        for &v in &values {
            all.push(v);
        }
        let mut a = WelfordAccumulator::new();
        let mut b = WelfordAccumulator::new();
        for &v in &values[..37] {
            a.push(v);
        }
        for &v in &values[37..] {
            b.push(v);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = WelfordAccumulator::new();
        a.push(1.0);
        let empty = WelfordAccumulator::new();
        let mut b = a;
        b.merge(&empty);
        assert_eq!(b, a);
        let mut c = WelfordAccumulator::new();
        c.merge(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn display_is_paper_format() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(format!("{s}"), "1.00/3.00/2.00/0.82");
    }
}
