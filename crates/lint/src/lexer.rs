//! A hand-rolled Rust lexer, just deep enough for lint-grade analysis.
//!
//! The workspace has no crates.io access, so `syn` is off the table; the
//! rules in [`crate::rules`] instead pattern-match over this token stream.
//! The lexer therefore has one job above all: *never* mistake the inside of
//! a string literal or a comment for code (our own rule fixtures embed
//! violating code in raw strings), and never mistake a lifetime for an
//! unterminated char literal. Everything else — precise spans, numeric
//! values, keyword classification — is intentionally out of scope.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `as`, `HashMap`, ...).
    Ident,
    /// A single punctuation character. Multi-character operators arrive as
    /// consecutive tokens (`::` is `:` then `:`), which keeps matching
    /// simple and unambiguous.
    Punct,
    /// String literal (cooked, raw, byte or raw-byte); `text` is the
    /// *content*, with the quotes and any `r#`/`b` prefix stripped.
    Str,
    /// Character or byte literal; `text` keeps the escape spelling.
    Char,
    /// Numeric literal, underscores/suffixes included.
    Num,
    /// A lifetime such as `'a` or `'static` (without the quote).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification of the token.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what is stripped).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// One comment (line or block), kept out of the code token stream but
/// preserved for allow-annotation and justification-comment parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// Whether this was a `/* ... */` block comment.
    pub block: bool,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated constructs (string,
/// block comment) consume to end of input rather than erroring: for lint
/// purposes a file that far gone will fail `rustc` anyway.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.cooked_string(0);
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if self.raw_string_ahead() {
                self.raw_string();
            } else if c == 'b' && self.peek(1) == Some('\'') {
                // Byte literal b'x'.
                let line = self.line;
                self.bump(); // b
                self.char_literal(line);
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.cooked_string(1);
            } else if c == '_' || c.is_alphabetic() {
                self.ident();
            } else if c.is_ascii_digit() {
                self.number();
            } else {
                let line = self.line;
                self.bump();
                self.push(TokenKind::Punct, c.to_string(), line);
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text,
            block: false,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            text,
            block: true,
        });
    }

    /// Cooked string starting `prefix` characters ahead of the opening quote
    /// (1 for `b"`). Handles escapes and embedded newlines.
    fn cooked_string(&mut self, prefix: usize) {
        let line = self.line;
        for _ in 0..=prefix {
            self.bump(); // prefix chars + opening quote
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// Whether `r"`, `r#"`, `br"` or `br#"` (any number of hashes) starts
    /// at the cursor.
    fn raw_string_ahead(&self) -> bool {
        let mut i = 0;
        if self.peek(i) == Some('b') {
            i += 1;
        }
        if self.peek(i) != Some('r') {
            return false;
        }
        i += 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self) {
        let line = self.line;
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '"' {
                // Candidate terminator: needs `hashes` following '#'s.
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Str, text, line);
    }

    /// At a `'`: disambiguates char literals from lifetimes. `'\...'` and
    /// `'x'` are chars; `'ident` not followed by a closing quote is a
    /// lifetime (`'a`, `'static`, `'_`).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        if self.peek(1) == Some('\\') || self.peek(2) == Some('\'') {
            self.char_literal(line);
            return;
        }
        // Lifetime.
        self.bump(); // quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Lifetime, text, line);
    }

    /// At the opening `'` of a (possibly escaped) char literal.
    fn char_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '\'' {
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Char, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let radix_prefixed =
            self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('b') | Some('o'));
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the literal; `0..10` does not (the second
                // char of `..` is not a digit).
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && !radix_prefixed
                && text.chars().last().is_some_and(|p| p == 'e' || p == 'E')
            {
                // Exponent sign of a decimal float (`1.0e-3`); hex literals
                // like `0x1E` never absorb a following operator.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("let x = a.iter::<u64>();");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "a", ".", "iter", ":", ":", "<", "u64", ">", "(", ")", ";"]
        );
    }

    #[test]
    fn numeric_literals_do_not_swallow_ranges_or_hex_subtraction() {
        let texts: Vec<String> = kinds("0..10").into_iter().map(|(_, t)| t).collect();
        assert_eq!(texts, ["0", ".", ".", "10"]);
        let texts: Vec<String> = kinds("0x1E-3").into_iter().map(|(_, t)| t).collect();
        assert_eq!(texts, ["0x1E", "-", "3"]);
        let texts: Vec<String> = kinds("1.0e-3+2.5E+7").into_iter().map(|(_, t)| t).collect();
        assert_eq!(texts, ["1.0e-3", "+", "2.5E+7"]);
        let texts: Vec<String> = kinds("0xCBF2_9CE4_8422_2325u64")
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(texts, ["0xCBF2_9CE4_8422_2325u64"]);
    }

    #[test]
    fn strings_hide_their_contents_from_the_token_stream() {
        let lexed = lex(r#"let s = "x.unwrap() /* not a comment */";"#);
        assert!(lexed.tokens.iter().all(|t| t.text != "unwrap"));
        assert!(lexed.comments.is_empty());
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("string token");
        assert_eq!(s.text, "x.unwrap() /* not a comment */");
    }

    #[test]
    fn escaped_quotes_and_multiline_strings() {
        let lexed = lex("let s = \"a\\\"b\nc\"; let t = 1;");
        let s = &lexed.tokens[3];
        assert_eq!(s.kind, TokenKind::Str);
        assert_eq!(s.text, "a\\\"b\nc");
        // The token after the string sits on line 2.
        let t = lexed.tokens.iter().find(|t| t.text == "t").expect("t");
        assert_eq!(t.line, 2);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "r##\"contains \"# quote and .unwrap()\"## + br\"bytes\"";
        let lexed = lex(src);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["contains \"# quote and .unwrap()", "bytes"]);
        assert!(lexed.tokens.iter().all(|t| t.text != "unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("a /* outer /* inner */ still comment */ b");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
        assert!(lexed.comments[0].block);
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let q = '\\''; }");
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["x", "\\n", "\\'"]);
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let lexed = lex("&'static str; &'_ u8; b'z'");
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["static", "_"]);
        let chars: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["z"]);
    }

    #[test]
    fn doc_comments_are_comments() {
        let lexed =
            lex("/// outer doc\n//! inner doc\nfn x() {}\n// recshard-lint: allow(unwrap) -- why");
        assert_eq!(lexed.comments.len(), 3);
        assert_eq!(lexed.comments[0].text, "/ outer doc");
        assert!(lexed.comments[2].text.contains("recshard-lint"));
        assert_eq!(lexed.comments[2].line, 4);
    }

    #[test]
    fn line_numbers_survive_every_construct() {
        let src = "a\n\"s\ntring\"\n/* c\nomment */\nb";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.text == "b").expect("b");
        assert_eq!(b.line, 6);
    }

    #[test]
    fn unterminated_string_consumes_to_eof_without_panicking() {
        let lexed = lex("let s = \"never closed");
        assert_eq!(lexed.tokens.last().map(|t| t.kind), Some(TokenKind::Str));
    }
}
