//! Per-rule positive/negative fixtures, driven through the same
//! [`analyze_source`] seam the workspace scan uses. Every fixture is an
//! in-memory source string, so these tests pin the *behaviour* of each rule
//! — what it must flag and, just as important, what it must stay silent on.

use recshard_lint::{analyze_source, FileKind};

/// Rules fired for `src` as a library file, as `(line, rule)` pairs.
fn lib(src: &str) -> Vec<(u32, String)> {
    at("crates/demo/src/lib.rs", FileKind::Lib, src)
}

fn at(path: &str, kind: FileKind, src: &str) -> Vec<(u32, String)> {
    analyze_source(path, kind, src)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

fn rules_of(found: &[(u32, String)]) -> Vec<&str> {
    found.iter().map(|(_, r)| r.as_str()).collect()
}

// ---------------------------------------------------------------- hash-iter

#[test]
fn hash_iter_flags_method_iteration_of_declared_map() {
    let src = "use std::collections::HashMap;\n\
               fn f(m: HashMap<u64, u64>) -> Vec<u64> {\n    \
                   m.keys().copied().collect()\n\
               }\n";
    assert_eq!(lib(src), vec![(3, "hash-iter".to_string())]);
}

#[test]
fn hash_iter_flags_for_loop_over_constructed_set() {
    let src = "fn f() {\n    \
                   let s = std::collections::HashSet::new();\n    \
                   for x in &s {\n        let _ = x;\n    }\n\
               }\n";
    assert_eq!(lib(src), vec![(3, "hash-iter".to_string())]);
}

#[test]
fn hash_iter_flags_struct_field_iteration() {
    let src = "struct S {\n    counts: std::collections::HashMap<u64, u64>,\n}\n\
               impl S {\n    fn dump(&self) {\n        \
                   for (k, v) in &self.counts {\n            let _ = (k, v);\n        }\n    \
               }\n}\n";
    assert_eq!(lib(src), vec![(6, "hash-iter".to_string())]);
}

#[test]
fn hash_iter_ignores_btreemap_and_point_access() {
    let src = "use std::collections::{BTreeMap, HashMap};\n\
               fn f(b: BTreeMap<u64, u64>, h: HashMap<u64, u64>) -> u64 {\n    \
                   let _ = b.iter().count();\n    \
                   *h.get(&1).unwrap_or(&0)\n\
               }\n";
    assert_eq!(lib(src), vec![]);
}

#[test]
fn hash_iter_ignores_loops_over_call_results() {
    // `for x in m.ranked()` iterates whatever the call returned, not the map.
    let src = "fn f(m: std::collections::HashMap<u64, u64>) {\n    \
                   for x in ranked(&m) {\n        let _ = x;\n    }\n\
               }\n";
    assert_eq!(lib(src), vec![]);
}

#[test]
fn hash_iter_is_suppressed_by_trailing_allow() {
    let src = "fn f(m: std::collections::HashMap<u64, u64>) -> u64 {\n    \
                   // recshard-lint: allow(hash-iter) -- order-insensitive max\n    \
                   m.values().copied().max().unwrap_or(0)\n\
               }\n";
    assert_eq!(lib(src), vec![]);
}

// ---------------------------------------------------------------- float-acc

#[test]
fn float_acc_flags_float_sum_over_hash_values() {
    let src = "fn f(m: std::collections::HashMap<u64, f64>) -> f64 {\n    \
                   m.values().sum()\n\
               }\n";
    let found = lib(src);
    // Same line, so the (line, rule) sort puts float-acc first.
    assert_eq!(rules_of(&found), vec!["float-acc", "hash-iter"]);
}

#[test]
fn float_acc_flags_turbofish_float_sum() {
    let src = "fn f(m: std::collections::HashMap<u64, u64>) -> f64 {\n    \
                   m.values().map(|&v| v as f64).sum::<f64>()\n\
               }\n";
    let found = lib(src);
    assert!(rules_of(&found).contains(&"float-acc"), "{found:?}");
}

#[test]
fn float_acc_ignores_integer_sums() {
    // Integer addition commutes, so hash order cannot leak into the result
    // — only hash-iter itself fires.
    let src = "fn f(m: std::collections::HashMap<u64, u64>) -> u64 {\n    \
                   m.values().sum()\n\
               }\n";
    assert_eq!(rules_of(&lib(src)), vec!["hash-iter"]);
}

// ---------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_flags_ungated_instant_now() {
    let src = "use std::time::Instant;\n\
               fn f() -> std::time::Duration {\n    \
                   let t = Instant::now();\n    t.elapsed()\n\
               }\n";
    assert_eq!(lib(src), vec![(3, "wall-clock".to_string())]);
}

#[test]
fn wall_clock_accepts_bench_timing_gated_code() {
    let src = "fn f(include_timing: bool) -> u64 {\n    \
                   if include_timing {\n        \
                       let _ = std::time::Instant::now();\n    \
                   }\n    0\n\
               }\n";
    assert_eq!(lib(src), vec![]);
}

#[test]
fn wall_clock_accepts_env_var_gated_code() {
    let src = "fn f() {\n    \
                   if std::env::var(\"RECSHARD_BENCH_TIMING\").is_ok() {\n        \
                       let _ = std::time::Instant::now();\n    \
                   }\n\
               }\n";
    assert_eq!(lib(src), vec![]);
}

#[test]
fn wall_clock_ignores_bare_imports_and_types() {
    let src = "use std::time::Instant;\n\
               struct S {\n    started: Instant,\n}\n";
    assert_eq!(lib(src), vec![]);
}

// -------------------------------------------------------------- thread-fanin

#[test]
fn thread_fanin_flags_unannotated_spawn() {
    let src = "fn f() {\n    \
                   let h = std::thread::spawn(|| 1);\n    \
                   let _ = h.join();\n\
               }\n";
    assert_eq!(lib(src), vec![(2, "thread-fanin".to_string())]);
}

#[test]
fn thread_fanin_flags_scoped_spawn() {
    let src = "fn f() {\n    \
                   std::thread::scope(|scope| {\n        \
                       scope.spawn(|| 1);\n    \
                   });\n\
               }\n";
    let found = lib(src);
    assert!(
        found.contains(&(3, "thread-fanin".to_string())),
        "{found:?}"
    );
}

#[test]
fn thread_fanin_accepts_annotated_spawn() {
    let src = "fn f() {\n    \
                   // recshard-lint: allow(thread-fanin) -- joined in index order\n    \
                   let h = std::thread::spawn(|| 1);\n    \
                   let _ = h.join();\n\
               }\n";
    assert_eq!(lib(src), vec![]);
}

// ------------------------------------------------------------------- unwrap

#[test]
fn unwrap_flags_unwrap_and_expect_in_lib_code() {
    let src = "fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    \
                   x.unwrap() + y.expect(\"y\")\n\
               }\n";
    let found = lib(src);
    assert_eq!(rules_of(&found), vec!["unwrap", "unwrap"]);
}

#[test]
fn unwrap_ignores_non_panicking_relatives() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   x.unwrap_or(0).max(x.unwrap_or_default())\n\
               }\n";
    assert_eq!(lib(src), vec![]);
}

#[test]
fn unwrap_ignores_test_files_and_cfg_test_blocks() {
    let src = "fn prod(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n\
               #[cfg(test)]\n\
               mod tests {\n    \
                   #[test]\n    fn t() {\n        \
                       assert_eq!(super::prod(Some(3)).checked_add(1).unwrap(), 4);\n    \
                   }\n\
               }\n";
    assert_eq!(lib(src), vec![]);
    let src_test = "fn helper(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(
        at("crates/demo/tests/it.rs", FileKind::Test, src_test),
        vec![]
    );
}

#[test]
fn unwrap_ignores_bins_and_examples() {
    let src = "fn main() {\n    let x: Option<u32> = Some(1);\n    x.unwrap();\n}\n";
    assert_eq!(at("crates/demo/src/main.rs", FileKind::Bin, src), vec![]);
    assert_eq!(at("examples/demo.rs", FileKind::Example, src), vec![]);
}

// ----------------------------------------------------------- narrowing-cast

#[test]
fn narrowing_cast_flags_quantity_truncation() {
    let src = "fn f(elapsed_ns: u64) -> u32 {\n    elapsed_ns as u32\n}\n";
    assert_eq!(lib(src), vec![(2, "narrowing-cast".to_string())]);
}

#[test]
fn narrowing_cast_ignores_widening_and_counts() {
    let src = "fn f(arrivals_ns: &[u64], t_ns: u64) -> (u64, u32, u32) {\n    \
                   let widened = t_ns as u64;\n    \
                   let n = arrivals_ns.len() as u32;\n    \
                   let k = arrivals_ns.iter().filter(|&&a| a < t_ns).count() as u32;\n    \
                   (widened, n, k)\n\
               }\n";
    assert_eq!(lib(src), vec![]);
}

#[test]
fn narrowing_cast_exempts_the_simtime_helpers() {
    let src = "fn f(elapsed_ns: u64) -> u32 {\n    elapsed_ns as u32\n}\n";
    assert_eq!(at("crates/des/src/time.rs", FileKind::Lib, src), vec![]);
}

// ------------------------------------------------------------------- seqcst

#[test]
fn seqcst_flags_everywhere_including_tests() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::SeqCst)\n}\n";
    assert_eq!(lib(src), vec![(3, "seqcst".to_string())]);
    assert_eq!(
        at("crates/demo/tests/it.rs", FileKind::Test, src),
        vec![(3, "seqcst".to_string())]
    );
}

#[test]
fn seqcst_ignores_relaxed() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Relaxed)\n}\n";
    assert_eq!(lib(src), vec![]);
}

// ------------------------------------------------------------- obs-ordering

#[test]
fn obs_ordering_requires_justification_in_obs_crate() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               fn publish(a: &AtomicU64) {\n    a.store(1, Ordering::Release);\n}\n";
    assert_eq!(
        at("crates/obs/src/registry.rs", FileKind::Lib, src),
        vec![(3, "obs-ordering".to_string())]
    );
    // The same code outside crates/obs is not this rule's business.
    assert_eq!(lib(src), vec![]);
}

#[test]
fn obs_ordering_accepts_a_justified_edge() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               fn publish(a: &AtomicU64) {\n    \
                   // ordering: publishes the snapshot the reader Acquires.\n    \
                   a.store(1, Ordering::Release);\n\
               }\n";
    assert_eq!(at("crates/obs/src/registry.rs", FileKind::Lib, src), vec![]);
}

// ------------------------------------------------------- annotation hygiene

#[test]
fn bad_allow_flags_missing_reason_and_unknown_rule() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   // recshard-lint: allow(unwrap)\n    \
                   x.unwrap()\n\
               }\n";
    let found = lib(src);
    assert_eq!(rules_of(&found), vec!["bad-allow"], "{found:?}");

    let src = "fn f() {\n    // recshard-lint: allow(no-such-rule) -- why\n    let _ = 1;\n}\n";
    let found = lib(src);
    assert!(rules_of(&found).contains(&"bad-allow"), "{found:?}");
}

#[test]
fn bad_allow_flags_unparseable_annotation() {
    let src = "fn f() {\n    // recshard-lint: allowing everything\n    let _ = 1;\n}\n";
    assert_eq!(rules_of(&lib(src)), vec!["bad-allow"]);
}

#[test]
fn unused_allow_flags_annotation_that_suppresses_nothing() {
    let src = "fn f() {\n    \
                   // recshard-lint: allow(unwrap) -- stale claim\n    \
                   let _ = 1;\n\
               }\n";
    assert_eq!(lib(src), vec![(2, "unused-allow".to_string())]);
}

#[test]
fn one_annotation_can_cover_multiple_rules() {
    let src = "fn f(m: std::collections::HashMap<u64, f64>) -> f64 {\n    \
                   // recshard-lint: allow(hash-iter, float-acc) -- tolerance-checked\n    \
                   m.values().sum()\n\
               }\n";
    assert_eq!(lib(src), vec![]);
}

// ----------------------------------------------------------- lexer plumbing

#[test]
fn code_inside_strings_and_comments_does_not_fire() {
    let src = "fn f() -> &'static str {\n    \
                   // example: m.values().sum::<f64>() over a HashMap\n    \
                   \"let t = Instant::now(); x.unwrap(); Ordering::SeqCst\"\n\
               }\n";
    assert_eq!(lib(src), vec![]);
}

#[test]
fn raw_strings_with_hashes_are_opaque() {
    let src = "fn f(m: std::collections::HashMap<u64, u64>) -> &'static str {\n    \
                   let _ = m.len();\n    \
                   r#\"m.iter() \"quoted\" Ordering::SeqCst\"#\n\
               }\n";
    assert_eq!(lib(src), vec![]);
}

#[test]
fn nested_block_comments_are_skipped_entirely() {
    let src = "/* outer /* inner x.unwrap() */ still comment Ordering::SeqCst */\n\
               fn f() -> u32 {\n    0\n}\n";
    assert_eq!(lib(src), vec![]);
}

#[test]
fn diagnostics_are_sorted_by_line_then_rule() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               fn f(m: std::collections::HashMap<u64, u64>, x: Option<u32>, a: &AtomicU64) -> u64 {\n    \
                   let _ = x.unwrap();\n    \
                   let _ = a.load(Ordering::SeqCst);\n    \
                   m.values().copied().sum::<u64>()\n\
               }\n";
    let found = lib(src);
    let mut sorted = found.clone();
    sorted.sort();
    assert_eq!(found, sorted);
    assert_eq!(
        rules_of(&found),
        vec!["unwrap", "seqcst", "hash-iter"],
        "{found:?}"
    );
}
