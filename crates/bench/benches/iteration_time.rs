//! Criterion bench backing Table 3 / Figure 11: the cost of simulating one
//! embedding-operator iteration under each sharding strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use recshard_bench::{ExperimentConfig, Strategy};
use recshard_data::RmKind;
use recshard_memsim::EmbeddingOpSimulator;
use recshard_stats::DatasetProfiler;

fn iteration_time(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::fast();
    cfg.scale = 8_192;
    cfg.profile_samples = 1_500;
    let model = cfg.model(RmKind::Rm2);
    let system = cfg.system();
    let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);

    let mut group = c.benchmark_group("iteration_time");
    group.sample_size(10);
    for strategy in Strategy::all() {
        let plan = strategy.plan(&model, &profile, &system);
        let sim = EmbeddingOpSimulator::new(&model, &plan, &profile, &system, cfg.sim_config());
        group.bench_with_input(
            BenchmarkId::new("simulate_iteration", strategy.label()),
            &strategy,
            |b, _| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                b.iter(|| sim.run_iteration(64, &mut rng));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, iteration_time);
criterion_main!(benches);
