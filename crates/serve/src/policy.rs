//! Cache policies and the statistics-guided admission/pinning plan.
//!
//! The paper's core observation — per-table access CDFs are heavily skewed,
//! so a small head of rows sources most accesses (Figure 5) — applies to
//! inference traffic exactly as it does to training. [`StatGuide`] turns a
//! [`DatasetProfile`](recshard_stats::DatasetProfile) into a serving-cache
//! policy:
//!
//! * **Pinning** — each table's rows above the [CDF knee]
//!   (`recshard_stats::AccessCdf::knee_rank`) are pin candidates; candidates
//!   are ranked globally by profiled access rate and pinned until the
//!   configured fraction of the shard's capacity is used. Pinned rows are
//!   pre-loaded and never evicted, so the head's hit rate cannot be churned
//!   away by tail traffic.
//! * **Admission filtering** — rows that profiling never observed are
//!   refused admission on their *first* miss (the cache's doorkeeper set
//!   admits them on a repeat access). Under a power law an unobserved row
//!   is overwhelmingly likely to be a one-hit wonder; letting it straight
//!   in would evict a warmer row (cache pollution, the classic failure
//!   mode of plain LRU under skew), while the second-chance rule keeps
//!   genuinely warm unprofiled rows cacheable at the cost of one miss.
//!
//! [CDF knee]: recshard_stats::AccessCdf::knee_rank

use recshard_stats::DatasetProfile;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The eviction/admission policy of a serving cache shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Evict the least-recently-used row; admit everything.
    Lru,
    /// Evict the least-frequently-used row (ties by recency); admit
    /// everything.
    Lfu,
    /// LRU over the unpinned region, with profile-driven pinning and
    /// admission (see [`StatGuide`]).
    StatGuided,
}

impl PolicyKind {
    /// All policies, in the order the serving benchmark reports them.
    pub fn all() -> [PolicyKind; 3] {
        [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::StatGuided]
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Lfu => "LFU",
            PolicyKind::StatGuided => "StatGuided",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Tunables of the stat-guided policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatGuidedConfig {
    /// Fraction of the shard's capacity reserved for pinned knee rows; the
    /// remainder is the LRU-managed region for the admitted tail.
    pub pin_capacity_fraction: f64,
}

impl Default for StatGuidedConfig {
    fn default() -> Self {
        Self {
            pin_capacity_fraction: 0.8,
        }
    }
}

/// The materialised stat-guided plan for one GPU shard: which rows to pin
/// and which rows a miss may admit.
#[derive(Debug, Clone, PartialEq)]
pub struct StatGuide {
    /// `(table, row, bytes)` pins, hottest first, within the pin budget.
    pins: Vec<(u32, u64, u64)>,
    /// Per table, the rows profiling observed (admissible on a miss).
    admit: HashMap<u32, HashSet<u64>>,
    /// Maximum fraction of *each cache stripe* that pins may occupy — the
    /// per-stripe enforcement of the shard-level pin budget, guaranteeing
    /// every stripe keeps an evictable LRU region even when the stripe hash
    /// distributes pins unevenly.
    pin_fraction: f64,
}

impl StatGuide {
    /// Builds the guide for one GPU shard.
    ///
    /// `gpu_of[t]` is the owning GPU of table `t` (the sharding plan's
    /// routing); only tables owned by `gpu` contribute. The pin budget is
    /// `config.pin_capacity_fraction * capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_of` and the profile disagree on the table count.
    pub fn for_gpu(
        gpu: usize,
        gpu_of: &[usize],
        profile: &DatasetProfile,
        capacity_bytes: u64,
        config: &StatGuidedConfig,
    ) -> Self {
        assert_eq!(
            gpu_of.len(),
            profile.num_features(),
            "routing/profile mismatch"
        );
        let budget = (capacity_bytes as f64 * config.pin_capacity_fraction.clamp(0.0, 1.0)) as u64;

        // Pin candidates: each owned table's rows above its CDF knee, with
        // the profiled per-row access rate (accesses per profiled sample) as
        // the global ranking key.
        let mut candidates: Vec<(f64, u32, u64, u64)> = Vec::new();
        let mut admit: HashMap<u32, HashSet<u64>> = HashMap::new();
        for (t, prof) in profile.profiles().iter().enumerate() {
            if gpu_of[t] != gpu {
                continue;
            }
            let table = t as u32;
            admit.insert(table, prof.ranked_rows.iter().copied().collect());
            let knee = prof.cdf.knee_rank();
            let total = prof.total_lookups as f64;
            let row_bytes = prof.row_bytes();
            for (rank, &row) in prof.ranked_rows.iter().take(knee as usize).enumerate() {
                let rank = rank as u64;
                let marginal = prof.cdf.access_fraction(rank + 1) - prof.cdf.access_fraction(rank);
                candidates.push((marginal * total, table, row, row_bytes));
            }
        }
        // Hottest first; deterministic tie-break on (table, row).
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

        let mut pins = Vec::new();
        let mut pinned_bytes = 0u64;
        for (_, table, row, bytes) in candidates {
            if pinned_bytes + bytes > budget {
                break;
            }
            pinned_bytes += bytes;
            pins.push((table, row, bytes));
        }
        Self {
            pins,
            admit,
            pin_fraction: config.pin_capacity_fraction.clamp(0.0, 1.0),
        }
    }

    /// Builds a guide directly from parts (for tests and custom policies);
    /// pins may fill whole stripes (`pin_fraction = 1`).
    pub fn from_parts(
        pins: Vec<(u32, u64, u64)>,
        admit: impl IntoIterator<Item = (u32, Vec<u64>)>,
    ) -> Self {
        Self {
            pins,
            admit: admit
                // recshard-lint: allow(hash-iter) -- elements go straight into
                // a map keyed by table id; per-element visit order is absorbed.
                .into_iter()
                .map(|(t, rows)| (t, rows.into_iter().collect()))
                .collect(),
            pin_fraction: 1.0,
        }
    }

    /// Maximum fraction of each cache stripe pins may occupy.
    pub fn pin_fraction(&self) -> f64 {
        self.pin_fraction
    }

    /// Overrides the per-stripe pin fraction (clamped to `[0, 1]`).
    pub fn with_pin_fraction(mut self, fraction: f64) -> Self {
        self.pin_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Whether a missed row may be admitted into the cache.
    pub fn admits(&self, table: u32, row: u64) -> bool {
        self.admit
            .get(&table)
            .is_some_and(|rows| rows.contains(&row))
    }

    /// The pinned rows, hottest first.
    pub fn pins(&self) -> &[(u32, u64, u64)] {
        &self.pins
    }

    /// Total bytes of pinned rows.
    pub fn pinned_bytes(&self) -> u64 {
        self.pins.iter().map(|&(_, _, b)| b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::ModelSpec;
    use recshard_stats::DatasetProfiler;

    fn profiled() -> (ModelSpec, DatasetProfile) {
        let model = ModelSpec::small(6, 3);
        let profile = DatasetProfiler::profile_model(&model, 2_000, 9);
        (model, profile)
    }

    #[test]
    fn pins_respect_the_budget_and_rank_hottest_first() {
        let (model, profile) = profiled();
        let gpu_of = vec![0; model.num_features()];
        let capacity = 1 << 16;
        let cfg = StatGuidedConfig::default();
        let guide = StatGuide::for_gpu(0, &gpu_of, &profile, capacity, &cfg);
        assert!(guide.pinned_bytes() <= (capacity as f64 * cfg.pin_capacity_fraction) as u64);
        assert!(!guide.pins().is_empty(), "skewed tables must pin a head");
        // Every pinned row must be admissible (it was observed).
        for &(t, r, _) in guide.pins() {
            assert!(guide.admits(t, r));
        }
    }

    #[test]
    fn only_owned_tables_contribute() {
        let (model, profile) = profiled();
        let n = model.num_features();
        let gpu_of: Vec<usize> = (0..n).map(|t| t % 2).collect();
        let guide0 = StatGuide::for_gpu(0, &gpu_of, &profile, 1 << 20, &Default::default());
        let guide1 = StatGuide::for_gpu(1, &gpu_of, &profile, 1 << 20, &Default::default());
        for &(t, _, _) in guide0.pins() {
            assert_eq!(gpu_of[t as usize], 0);
        }
        for &(t, _, _) in guide1.pins() {
            assert_eq!(gpu_of[t as usize], 1);
        }
        assert!(!guide0.admits(1, 0) || gpu_of[1] == 0);
    }

    #[test]
    fn unobserved_rows_are_not_admitted() {
        let (model, profile) = profiled();
        let gpu_of = vec![0; model.num_features()];
        let guide = StatGuide::for_gpu(0, &gpu_of, &profile, 1 << 20, &Default::default());
        for (t, prof) in profile.profiles().iter().enumerate() {
            let observed: std::collections::HashSet<u64> =
                prof.ranked_rows.iter().copied().collect();
            // Find a row the profile never saw, if any exists.
            if let Some(cold) = (0..prof.hash_size).find(|r| !observed.contains(r)) {
                assert!(!guide.admits(t as u32, cold));
            }
            if let Some(&hot) = prof.ranked_rows.first() {
                assert!(guide.admits(t as u32, hot));
            }
        }
    }

    #[test]
    fn zero_budget_pins_nothing() {
        let (model, profile) = profiled();
        let gpu_of = vec![0; model.num_features()];
        let cfg = StatGuidedConfig {
            pin_capacity_fraction: 0.0,
        };
        let guide = StatGuide::for_gpu(0, &gpu_of, &profile, 1 << 20, &cfg);
        assert!(guide.pins().is_empty());
        assert_eq!(guide.pinned_bytes(), 0);
    }

    #[test]
    fn policy_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            PolicyKind::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 3);
        assert_eq!(PolicyKind::StatGuided.to_string(), "StatGuided");
    }
}
