//! Property-based tests for the MILP solver: solutions are always feasible,
//! and on small binary knapsacks branch-and-bound matches brute force.

use proptest::prelude::*;
use recshard_milp::{ConstraintSense, Model, Sense, Status};

/// Brute-force optimum of a 0/1 knapsack.
fn knapsack_brute_force(values: &[f64], weights: &[f64], capacity: f64) -> f64 {
    let n = values.len();
    let mut best = 0.0f64;
    for mask in 0..(1u32 << n) {
        let mut v = 0.0;
        let mut w = 0.0;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                v += values[i];
                w += weights[i];
            }
        }
        if w <= capacity + 1e-9 && v > best {
            best = v;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Branch-and-bound matches exhaustive enumeration on random knapsacks.
    #[test]
    fn knapsack_matches_brute_force(
        values in prop::collection::vec(1.0f64..20.0, 2..8),
        weights_raw in prop::collection::vec(1.0f64..10.0, 2..8),
        cap_frac in 0.2f64..0.9,
    ) {
        let n = values.len().min(weights_raw.len());
        let values = &values[..n];
        let weights = &weights_raw[..n];
        let capacity = weights.iter().sum::<f64>() * cap_frac;

        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| m.add_binary(format!("x{i}"), v))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter().zip(weights).map(|(&v, &w)| (v, w)).collect(),
            ConstraintSense::Le,
            capacity,
        );
        let sol = m.solve().expect("knapsack always feasible (empty set)");
        prop_assert_eq!(sol.status(), Status::Optimal);
        let expected = knapsack_brute_force(values, weights, capacity);
        prop_assert!((sol.objective() - expected).abs() < 1e-6,
            "B&B gave {} but brute force gives {}", sol.objective(), expected);
        // And the returned assignment must itself be feasible.
        prop_assert!(m.is_feasible(sol.values(), 1e-6));
    }

    /// Whatever the solver returns for a random feasible-by-construction LP
    /// satisfies every constraint and bound.
    #[test]
    fn lp_solutions_are_feasible(
        coeffs in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 3), 1..5),
        bounds in prop::collection::vec(1.0f64..50.0, 1..5),
        obj in prop::collection::vec(-3.0f64..3.0, 3),
    ) {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = obj
            .iter()
            .enumerate()
            .map(|(i, &c)| m.add_var(format!("x{i}"), recshard_milp::VarKind::Continuous, 0.0, 20.0, c))
            .collect();
        // Constraints of the form a·x <= b with b > 0 are always feasible at x = 0.
        for (row, b) in coeffs.iter().zip(&bounds) {
            m.add_constraint(
                "c",
                vars.iter().zip(row).map(|(&v, &a)| (v, a)).collect(),
                ConstraintSense::Le,
                *b,
            );
        }
        let sol = m.solve().expect("x = 0 is always feasible");
        prop_assert!(m.is_feasible(sol.values(), 1e-5));
    }

    /// Min-max assignment MILPs (the RecShard structure) always return a
    /// makespan at least as large as the trivial lower bound
    /// `max(total/machines, max item)` and no larger than the total.
    #[test]
    fn min_max_assignment_bounds(costs in prop::collection::vec(1.0f64..10.0, 2..6)) {
        let gpus = 2usize;
        let mut m = Model::new(Sense::Minimize);
        let c = m.add_continuous("C", 1.0);
        let mut assign = Vec::new();
        for (j, _) in costs.iter().enumerate() {
            let row: Vec<_> = (0..gpus).map(|g| m.add_binary(format!("p{g}_{j}"), 0.0)).collect();
            m.add_constraint(
                format!("one_{j}"),
                row.iter().map(|&v| (v, 1.0)).collect(),
                ConstraintSense::Eq,
                1.0,
            );
            assign.push(row);
        }
        for g in 0..gpus {
            let mut terms: Vec<_> = costs.iter().enumerate().map(|(j, &w)| (assign[j][g], w)).collect();
            terms.push((c, -1.0));
            m.add_constraint(format!("load_{g}"), terms, ConstraintSense::Le, 0.0);
        }
        let sol = m.solve().expect("assignment always feasible");
        let total: f64 = costs.iter().sum();
        let max_item = costs.iter().cloned().fold(0.0f64, f64::max);
        let lower = (total / gpus as f64).max(max_item);
        prop_assert!(sol.objective() + 1e-6 >= lower);
        prop_assert!(sol.objective() <= total + 1e-6);
    }
}
