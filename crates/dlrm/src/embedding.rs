//! Embedding bags with sum pooling.

use rand::Rng;
use recshard_data::FeatureSpec;
use serde::{Deserialize, Serialize};

/// One embedding table with sum pooling: the DLRM's `EmbeddingBag`.
///
/// Raw categorical values are hashed with the feature's hasher to rows of a
/// `hash_size x dim` table; a lookup gathers and element-wise sums the rows of
/// all activated values (Figure 3 of the paper). Rows are updated with plain
/// SGD on the pooled gradient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingBag {
    hash_size: u64,
    dim: usize,
    weights: Vec<f32>,
    hasher_seed: u64,
}

impl EmbeddingBag {
    /// Creates an embedding bag for a feature spec with small random weights.
    ///
    /// # Panics
    ///
    /// Panics if the table would be unreasonably large to hold in memory
    /// (more than ~64M parameters); scale the model down first.
    pub fn new<R: Rng + ?Sized>(spec: &FeatureSpec, rng: &mut R) -> Self {
        let params = spec.hash_size * spec.embedding_dim as u64;
        assert!(
            params <= 64_000_000,
            "embedding table too large to materialise ({params} parameters); use ModelSpec::scaled"
        );
        let dim = spec.embedding_dim as usize;
        let mut weights = vec![0.0f32; params as usize];
        let scale = 1.0 / (dim as f32).sqrt();
        for w in &mut weights {
            *w = rng.gen_range(-scale..scale);
        }
        Self {
            hash_size: spec.hash_size,
            dim,
            weights,
            hasher_seed: spec.hash_seed,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.hash_size
    }

    /// Hashes a raw value to its row.
    fn row_of(&self, raw: u64) -> usize {
        let hasher = recshard_data::FeatureHasher::new(self.hash_size, self.hasher_seed);
        hasher.hash(raw) as usize
    }

    /// Sum-pooled lookup of a multi-hot value list. An empty list yields the
    /// zero vector (the NULL case of Figure 3).
    pub fn lookup(&self, raw_values: &[u64]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for &raw in raw_values {
            let row = self.row_of(raw);
            let base = row * self.dim;
            for (o, w) in out.iter_mut().zip(&self.weights[base..base + self.dim]) {
                *o += w;
            }
        }
        out
    }

    /// SGD update: the gradient of the loss w.r.t. the pooled output flows
    /// unchanged to every contributing row (sum pooling).
    pub fn sgd_update(&mut self, raw_values: &[u64], pooled_grad: &[f32], learning_rate: f32) {
        assert_eq!(pooled_grad.len(), self.dim, "gradient dimension mismatch");
        for &raw in raw_values {
            let row = self.row_of(raw);
            let base = row * self.dim;
            for (w, g) in self.weights[base..base + self.dim]
                .iter_mut()
                .zip(pooled_grad)
            {
                *w -= learning_rate * g;
            }
        }
    }

    /// A copy of one row (for tests).
    pub fn row(&self, row: u64) -> &[f32] {
        let base = row as usize * self.dim;
        &self.weights[base..base + self.dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use recshard_data::ModelSpec;

    fn bag() -> (EmbeddingBag, FeatureSpec) {
        let model = ModelSpec::small(2, 3).scaled(8);
        let spec = model.features()[0].clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        (EmbeddingBag::new(&spec, &mut rng), spec)
    }

    #[test]
    fn empty_lookup_is_zero_vector() {
        let (bag, _) = bag();
        let out = bag.lookup(&[]);
        assert_eq!(out.len(), bag.dim());
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lookup_sums_rows() {
        let (bag, _) = bag();
        let a = bag.lookup(&[1]);
        let b = bag.lookup(&[2]);
        let ab = bag.lookup(&[1, 2]);
        for i in 0..bag.dim() {
            assert!((ab[i] - (a[i] + b[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn sgd_moves_only_touched_rows() {
        let (mut bag, spec) = bag();
        let hasher = spec.hasher();
        let touched_row = hasher.hash(5);
        // Find an untouched row.
        let untouched_row = (0..spec.hash_size).find(|&r| r != touched_row).unwrap();
        let before_touched = bag.row(touched_row).to_vec();
        let before_untouched = bag.row(untouched_row).to_vec();
        bag.sgd_update(&[5], &vec![1.0; bag.dim()], 0.1);
        assert_ne!(bag.row(touched_row), before_touched.as_slice());
        assert_eq!(bag.row(untouched_row), before_untouched.as_slice());
    }

    #[test]
    fn duplicate_values_accumulate_gradient() {
        let (mut bag, spec) = bag();
        let row = spec.hasher().hash(7);
        let before = bag.row(row)[0];
        bag.sgd_update(&[7, 7], &vec![1.0; bag.dim()], 0.1);
        let after = bag.row(row)[0];
        assert!(
            (before - after - 0.2).abs() < 1e-6,
            "two contributions of lr*1.0 each"
        );
    }

    #[test]
    #[should_panic(expected = "too large to materialise")]
    fn oversized_table_rejected() {
        let model = ModelSpec::rm1();
        let spec = model
            .features()
            .iter()
            .max_by_key(|f| f.hash_size)
            .unwrap()
            .clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let _ = EmbeddingBag::new(&spec, &mut rng);
    }
}
