//! The production-scale placement solver: bucketing + structured phases.
//!
//! [`ScalableSolver`] produces the same three-phase plan shape as
//! [`StructuredSolver`](crate::solver::StructuredSolver) — split selection
//! against the aggregate HBM budget, min-max LPT assignment with bottleneck
//! local search, per-GPU backfill — but runs the expensive per-table work
//! once per *bucket* of near-identical tables
//! ([`TableBuckets`](crate::bucketing::TableBuckets)):
//!
//! * one [`TableCostModel`] is built per bucket representative instead of per
//!   table (the `O(tables × icdf_steps)` formulation term shrinks by the
//!   compression ratio), and
//! * phase-1 split selection walks one heap entry per bucket, each downgrade
//!   freeing `members × bytes` at once.
//!
//! Assignment and refinement still place every member individually, so the
//! emitted [`ShardingPlan`] is exactly as granular as the structured
//! solver's; on seed experiment configurations the plan cost matches the
//! structured solver within 1% (asserted by the `solver_scaling` bench and
//! the golden tests).

use crate::bucketing::{BucketingConfig, TableBuckets};
use crate::config::RecShardConfig;
use crate::cost::TableCostModel;
use crate::error::RecShardError;
use crate::solver::StructuredSolver;
use recshard_data::ModelSpec;
use recshard_sharding::{ShardingPlan, SystemSpec, TablePlacement};
use recshard_stats::DatasetProfile;
use std::collections::BinaryHeap;

/// Scalable RecShard placement solver (bucketed structured solve).
#[derive(Debug, Clone)]
pub struct ScalableSolver {
    config: RecShardConfig,
    bucketing: BucketingConfig,
}

/// A solve plus the preprocessor statistics the benches report.
#[derive(Debug, Clone)]
pub struct ScalableSolveReport {
    /// The placement plan.
    pub plan: ShardingPlan,
    /// Number of tables in the model.
    pub tables: usize,
    /// Number of buckets the preprocessor collapsed them into.
    pub buckets: usize,
    /// `tables / buckets`.
    pub compression_ratio: f64,
}

impl ScalableSolver {
    /// Creates a solver with default bucketing.
    pub fn new(config: RecShardConfig) -> Self {
        Self {
            config,
            bucketing: BucketingConfig::default(),
        }
    }

    /// Creates a solver with explicit bucketing tuning.
    pub fn with_bucketing(config: RecShardConfig, bucketing: BucketingConfig) -> Self {
        Self { config, bucketing }
    }

    /// Produces a placement plan.
    ///
    /// # Errors
    ///
    /// As [`StructuredSolver::solve`](crate::solver::StructuredSolver::solve).
    pub fn solve(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> Result<ShardingPlan, RecShardError> {
        Ok(self.solve_report(model, profile, system)?.plan)
    }

    /// Re-solves after a drift/re-sharding event, warm-started from the
    /// previous plan: phase-2 assignment first tries to keep every table on
    /// its previous GPU (minimising migration churn), and the usual
    /// bottleneck local search then only moves tables when that strictly
    /// improves the max per-GPU cost. The result is *gated* against a cold
    /// solve on the exact objective ([`StructuredSolver::gpu_costs_exact`]):
    /// the returned plan is never costlier than the cold re-solve, and on
    /// ties the warm (migration-friendly) plan wins.
    ///
    /// A `previous` plan whose GPU count or table count no longer matches
    /// the inputs is ignored (plain cold solve).
    ///
    /// # Errors
    ///
    /// As [`StructuredSolver::solve`](crate::solver::StructuredSolver::solve).
    pub fn solve_seeded(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
        previous: &ShardingPlan,
    ) -> Result<ShardingPlan, RecShardError> {
        let cold = self.solve_report_impl(model, profile, system, None)?;
        if previous.num_gpus() != system.num_gpus()
            || previous.placements().len() != model.num_features()
        {
            return Ok(cold.plan);
        }
        let seed = previous.gpu_assignments();
        // A seed can wedge the packing (pinning large tables to their old
        // GPUs may leave a later table nowhere to go); the cold plan in
        // hand is feasible, so an infeasible warm attempt falls back to it
        // rather than failing the re-solve.
        let Ok(warm) = self.solve_report_impl(model, profile, system, Some(&seed)) else {
            return Ok(cold.plan);
        };
        let evaluator = StructuredSolver::new(self.config);
        let max_cost = |plan: &ShardingPlan| {
            evaluator
                .gpu_costs_exact(model, profile, system, plan)
                .into_iter()
                .fold(0.0f64, f64::max)
        };
        if max_cost(&warm.plan) <= max_cost(&cold.plan) * (1.0 + 1e-9) {
            Ok(warm.plan)
        } else {
            Ok(cold.plan)
        }
    }

    /// Produces a placement plan plus bucketing statistics.
    ///
    /// # Errors
    ///
    /// As [`StructuredSolver::solve`](crate::solver::StructuredSolver::solve).
    pub fn solve_report(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> Result<ScalableSolveReport, RecShardError> {
        self.solve_report_impl(model, profile, system, None)
    }

    /// Like [`solve_report`](Self::solve_report), recording a
    /// [`TraceEvent::Bucketing`](recshard_obs::TraceEvent::Bucketing) event
    /// with the preprocessor's compression ratio into `obs`. The solve
    /// itself is observation-independent.
    ///
    /// # Errors
    ///
    /// As [`StructuredSolver::solve`](crate::solver::StructuredSolver::solve).
    pub fn solve_report_observed(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
        obs: &mut recshard_obs::ObsHandle<'_>,
    ) -> Result<ScalableSolveReport, RecShardError> {
        let report = self.solve_report_impl(model, profile, system, None)?;
        obs.record(
            0,
            recshard_obs::TraceEvent::Bucketing {
                tables: report.tables as u64,
                buckets: report.buckets as u64,
                compression: report.compression_ratio,
            },
        );
        Ok(report)
    }

    fn solve_report_impl(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
        seed_assignment: Option<&[usize]>,
    ) -> Result<ScalableSolveReport, RecShardError> {
        self.config
            .validate()
            .map_err(RecShardError::InvalidConfig)?;
        if profile.num_features() != model.num_features() {
            return Err(RecShardError::ProfileMismatch(format!(
                "profile covers {} features, model has {}",
                profile.num_features(),
                model.num_features()
            )));
        }
        if model.total_bytes() > system.total_capacity() {
            return Err(RecShardError::CapacityExceeded {
                required_bytes: model.total_bytes(),
                available_bytes: system.total_capacity(),
            });
        }

        let batch = model.batch_size();
        let buckets = TableBuckets::build(model, profile, &self.bucketing);
        // One cost menu per bucket representative, built against the
        // cluster's reference class (class 0): phase-1 split selection needs
        // a single shared price per downgrade. Per-GPU costs during
        // assignment and refinement are charged under the owning GPU's own
        // device class (see `true_cost_at`), so heterogeneity only ever
        // sharpens the balancing — on a uniform cluster the reference class
        // is the only class and behaviour is bit-identical to before.
        let reference = *system.reference_class();
        let menus: Vec<TableCostModel> = buckets
            .buckets()
            .iter()
            .map(|b| {
                TableCostModel::build(
                    b.representative,
                    &profile.profiles()[b.representative],
                    &reference,
                    batch,
                    &self.config,
                )
            })
            .collect();
        let menu_of = buckets.bucket_of_table();
        let num_tables = model.num_features();

        // ---- Phase 1: split selection over buckets ----
        let budget = (system.total_hbm_capacity() as f64 * (1.0 - self.config.hbm_slack)) as u64;
        let mut bucket_step: Vec<usize> = menus.iter().map(|m| m.options.len() - 1).collect();
        let mut hbm_demand: u64 = buckets
            .buckets()
            .iter()
            .zip(&menus)
            .map(|(b, m)| m.max_option().hbm_bytes * b.members.len() as u64)
            .sum();

        #[derive(PartialEq)]
        struct Downgrade {
            ratio: f64,
            bucket: usize,
            from_step: usize,
        }
        impl Eq for Downgrade {}
        impl PartialOrd for Downgrade {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Downgrade {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .ratio
                    .partial_cmp(&self.ratio)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(other.bucket.cmp(&self.bucket))
            }
        }

        let downgrade_of = |menus: &[TableCostModel], bucket: usize, from_step: usize| {
            if from_step == 0 {
                return None;
            }
            let cur = &menus[bucket].options[from_step];
            let mut to = from_step;
            while to > 0 {
                to -= 1;
                if menus[bucket].options[to].hbm_bytes < cur.hbm_bytes {
                    break;
                }
            }
            let next = &menus[bucket].options[to];
            let freed = cur.hbm_bytes.saturating_sub(next.hbm_bytes);
            if freed == 0 {
                return None;
            }
            let extra_cost = (next.weighted_cost - cur.weighted_cost).max(0.0);
            Some(Downgrade {
                // Per-byte marginal cost is member-count invariant: each
                // member frees `freed` bytes and pays `extra_cost`.
                ratio: extra_cost / freed as f64,
                bucket,
                from_step,
            })
        };

        let mut heap: BinaryHeap<Downgrade> = BinaryHeap::new();
        for b in 0..menus.len() {
            if let Some(d) = downgrade_of(&menus, b, bucket_step[b]) {
                heap.push(d);
            }
        }
        while hbm_demand > budget {
            let Some(d) = heap.pop() else { break };
            if d.from_step != bucket_step[d.bucket] {
                continue; // stale entry
            }
            let cur_bytes = menus[d.bucket].options[d.from_step].hbm_bytes;
            let mut to = d.from_step;
            while to > 0 {
                to -= 1;
                if menus[d.bucket].options[to].hbm_bytes < cur_bytes {
                    break;
                }
            }
            let freed_each = cur_bytes - menus[d.bucket].options[to].hbm_bytes;
            let members = buckets.buckets()[d.bucket].members.len() as u64;
            bucket_step[d.bucket] = to;
            hbm_demand -= freed_each * members;
            if let Some(next) = downgrade_of(&menus, d.bucket, to) {
                heap.push(next);
            }
        }

        // Per-table steps seeded from the bucket decision; assignment and
        // backfill refine them individually from here on. The shared menus
        // supply step geometry (row counts, bytes); each member's *cost* at
        // its current step is computed exactly from its own CDF — an O(1)
        // indexed lookup — so balancing never pays the merge tolerance.
        let mut step: Vec<usize> = (0..num_tables).map(|t| bucket_step[menu_of[t]]).collect();
        // Exact per-member cost of a split under one GPU's device class.
        let true_cost_on = |t: usize, hbm_rows: u64, gpu: usize| -> f64 {
            TableCostModel::weighted_cost_at(
                &profile.profiles()[t],
                system.device(gpu),
                batch,
                &self.config,
                hbm_rows,
            )
        };
        // Reference-class cost, used before a table has an owner (LPT order).
        let true_cost_at = |t: usize, hbm_rows: u64| -> f64 {
            TableCostModel::weighted_cost_at(
                &profile.profiles()[t],
                &reference,
                batch,
                &self.config,
                hbm_rows,
            )
        };
        // `cost_of[t]` is the cost of `t` at its current split under its
        // *current owner's* class once assigned (reference class before).
        let mut cost_of: Vec<f64> = (0..num_tables)
            .map(|t| true_cost_at(t, menus[menu_of[t]].options[step[t]].hbm_rows))
            .collect();

        // ---- Phase 2: min-max assignment (LPT + capacity) ----
        let m = system.num_gpus();
        let mut gpu_cost = vec![0.0f64; m];
        let mut hbm_free: Vec<u64> = (0..m).map(|g| system.hbm_capacity(g)).collect();
        let mut dram_free: Vec<u64> = (0..m).map(|g| system.dram_capacity(g)).collect();
        let mut assignment: Vec<Option<usize>> = vec![None; num_tables];

        let mut order: Vec<usize> = (0..num_tables).collect();
        order.sort_by(|&a, &b| {
            cost_of[b]
                .partial_cmp(&cost_of[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        for &t in &order {
            // Warm start: keep the table on its previous GPU when it still
            // fits there at the current split; the gated local search below
            // moves it only if that strictly improves the bottleneck.
            if let Some(seed) = seed_assignment {
                let g = seed[t];
                let opt = &menus[menu_of[t]].options[step[t]];
                if hbm_free[g] >= opt.hbm_bytes && dram_free[g] >= opt.uvm_bytes {
                    hbm_free[g] -= opt.hbm_bytes;
                    dram_free[g] -= opt.uvm_bytes;
                    cost_of[t] = true_cost_on(t, opt.hbm_rows, g);
                    gpu_cost[g] += cost_of[t];
                    assignment[t] = Some(g);
                    continue;
                }
            }
            loop {
                let opt = &menus[menu_of[t]].options[step[t]];
                let candidate = (0..m)
                    .filter(|&g| hbm_free[g] >= opt.hbm_bytes && dram_free[g] >= opt.uvm_bytes)
                    .min_by(|&a, &b| {
                        gpu_cost[a]
                            .partial_cmp(&gpu_cost[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(&b))
                    });
                if let Some(g) = candidate {
                    hbm_free[g] -= opt.hbm_bytes;
                    dram_free[g] -= opt.uvm_bytes;
                    cost_of[t] = true_cost_on(t, opt.hbm_rows, g);
                    gpu_cost[g] += cost_of[t];
                    assignment[t] = Some(g);
                    break;
                }
                if step[t] == 0 {
                    return Err(RecShardError::CapacityExceeded {
                        required_bytes: opt.uvm_bytes,
                        available_bytes: dram_free.iter().copied().max().unwrap_or(0),
                    });
                }
                step[t] -= 1;
                cost_of[t] = true_cost_at(t, menus[menu_of[t]].options[step[t]].hbm_rows);
            }
        }

        // ---- Phase 3: alternate bottleneck local search and HBM backfill ----
        // Bucket-granular phase-1 downgrades land coarser than the structured
        // solver's per-table sweep, so a single search+backfill pass leaves a
        // percent-level gap; alternating the two (each strictly improving)
        // until a joint fixpoint recovers it.
        for _round in 0..self.config.refinement_passes.max(1) {
            let mut any_change = false;

            // -- 3a: move-with-resplit local search on the bottleneck GPU --
            // Unlike the structured solver's fixed-split moves, a table moved
            // off the bottleneck re-picks its split step to the largest one
            // the target GPU can hold (options are cost-monotone in HBM
            // rows), so moves are never blocked by a split chosen for the
            // wrong GPU.
            // Swaps strictly reduce the max per-GPU cost, so more passes can
            // only help; the cap bounds worst-case work.
            for _ in 0..self.config.refinement_passes.max(1) * 8 {
                let bottleneck = (0..m)
                    .max_by(|&a, &b| {
                        gpu_cost[a]
                            .partial_cmp(&gpu_cost[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("at least one GPU");
                let mut improved = false;
                let tables_on_bottleneck: Vec<usize> = (0..num_tables)
                    .filter(|&t| assignment[t] == Some(bottleneck))
                    .collect();
                for &t in &tables_on_bottleneck {
                    let menu = &menus[menu_of[t]];
                    let opt = &menu.options[step[t]];
                    let mut best: Option<(usize, usize, f64, f64)> = None; // (gpu, step, cost, new_max)
                    for g in 0..m {
                        if g == bottleneck {
                            continue;
                        }
                        // Largest split the target can hold. HBM bytes are
                        // non-decreasing and UVM bytes non-increasing over
                        // the options, so the feasible steps form a
                        // contiguous range found by two partition points.
                        let hi = menu.options.partition_point(|o| o.hbm_bytes <= hbm_free[g]);
                        let lo = menu.options.partition_point(|o| o.uvm_bytes > dram_free[g]);
                        if hi == 0 || lo >= hi {
                            continue;
                        }
                        let s = hi - 1;
                        let moved_cost = true_cost_on(t, menu.options[s].hbm_rows, g);
                        let new_src = gpu_cost[bottleneck] - cost_of[t];
                        let new_dst = gpu_cost[g] + moved_cost;
                        let new_max = (0..m)
                            .map(|x| {
                                if x == bottleneck {
                                    new_src
                                } else if x == g {
                                    new_dst
                                } else {
                                    gpu_cost[x]
                                }
                            })
                            .fold(0.0f64, f64::max);
                        if new_max + 1e-12 < gpu_cost[bottleneck]
                            && best.map(|(_, _, _, b)| new_max < b).unwrap_or(true)
                        {
                            best = Some((g, s, moved_cost, new_max));
                        }
                    }
                    if let Some((g, s, moved_cost, _)) = best {
                        let dst_opt = &menu.options[s];
                        hbm_free[bottleneck] += opt.hbm_bytes;
                        dram_free[bottleneck] += opt.uvm_bytes;
                        hbm_free[g] -= dst_opt.hbm_bytes;
                        dram_free[g] -= dst_opt.uvm_bytes;
                        gpu_cost[bottleneck] -= cost_of[t];
                        gpu_cost[g] += moved_cost;
                        assignment[t] = Some(g);
                        step[t] = s;
                        cost_of[t] = moved_cost;
                        improved = true;
                        any_change = true;
                    }
                }

                // Moves alone cannot fix LPT packing noise (every GPU near
                // the max); exchange a bottleneck table against a cheaper
                // table elsewhere when the trade lowers the maximum. The
                // O(T_bottleneck × T) scan only pays off while a real
                // imbalance exists — within 0.1% of the mean it would just
                // chase noise, so skip it.
                let mean_cost = gpu_cost.iter().sum::<f64>() / m as f64;
                if !improved && gpu_cost[bottleneck] > mean_cost * 1.001 {
                    'swap: for &t1 in &tables_on_bottleneck {
                        if assignment[t1] != Some(bottleneck) {
                            continue;
                        }
                        let o1 = &menus[menu_of[t1]].options[step[t1]];
                        for t2 in 0..num_tables {
                            let Some(g) = assignment[t2] else { continue };
                            if g == bottleneck || cost_of[t2] + 1e-15 >= cost_of[t1] {
                                continue;
                            }
                            let o2 = &menus[menu_of[t2]].options[step[t2]];
                            let hbm_ok = hbm_free[bottleneck] + o1.hbm_bytes >= o2.hbm_bytes
                                && hbm_free[g] + o2.hbm_bytes >= o1.hbm_bytes;
                            let dram_ok = dram_free[bottleneck] + o1.uvm_bytes >= o2.uvm_bytes
                                && dram_free[g] + o2.uvm_bytes >= o1.uvm_bytes;
                            if !hbm_ok || !dram_ok {
                                continue;
                            }
                            // Each side's delta is priced under its own
                            // class; on a uniform cluster both reduce to the
                            // historical `cost_of[t1] - cost_of[t2]`.
                            let t2_on_src = true_cost_on(t2, o2.hbm_rows, bottleneck);
                            let t1_on_dst = true_cost_on(t1, o1.hbm_rows, g);
                            let delta_src = cost_of[t1] - t2_on_src;
                            let delta_dst = t1_on_dst - cost_of[t2];
                            let new_src = gpu_cost[bottleneck] - delta_src;
                            let new_dst = gpu_cost[g] + delta_dst;
                            if new_src.max(new_dst) + 1e-12 >= gpu_cost[bottleneck] {
                                continue;
                            }
                            hbm_free[bottleneck] =
                                hbm_free[bottleneck] + o1.hbm_bytes - o2.hbm_bytes;
                            dram_free[bottleneck] =
                                dram_free[bottleneck] + o1.uvm_bytes - o2.uvm_bytes;
                            hbm_free[g] = hbm_free[g] + o2.hbm_bytes - o1.hbm_bytes;
                            dram_free[g] = dram_free[g] + o2.uvm_bytes - o1.uvm_bytes;
                            gpu_cost[bottleneck] = new_src;
                            gpu_cost[g] = new_dst;
                            cost_of[t1] = t1_on_dst;
                            cost_of[t2] = t2_on_src;
                            assignment[t1] = Some(g);
                            assignment[t2] = Some(bottleneck);
                            improved = true;
                            any_change = true;
                            break 'swap;
                        }
                    }
                }
                if !improved {
                    break;
                }
            }

            // -- 3b: backfill leftover per-GPU HBM by upgrading splits --
            // Candidate geometry comes from the shared menus; gains are
            // computed exactly per member (O(1) CDF lookups).
            for g in 0..m {
                loop {
                    let mut best: Option<(usize, usize, f64, u64)> = None; // (table, new_step, gain, extra)
                    for t in 0..num_tables {
                        if assignment[t] != Some(g) {
                            continue;
                        }
                        let menu = &menus[menu_of[t]];
                        let cur = &menu.options[step[t]];
                        for s in (step[t] + 1)..menu.options.len() {
                            let cand = &menu.options[s];
                            let extra = cand.hbm_bytes.saturating_sub(cur.hbm_bytes);
                            if extra > hbm_free[g] {
                                break;
                            }
                            let gain = cost_of[t] - true_cost_on(t, cand.hbm_rows, g);
                            if gain > 1e-15 && best.map(|(_, _, bg, _)| gain > bg).unwrap_or(true) {
                                best = Some((t, s, gain, extra));
                            }
                        }
                    }
                    let Some((t, s, gain, extra)) = best else {
                        break;
                    };
                    let menu = &menus[menu_of[t]];
                    hbm_free[g] -= extra;
                    dram_free[g] += menu.options[step[t]].uvm_bytes - menu.options[s].uvm_bytes;
                    gpu_cost[g] -= gain;
                    step[t] = s;
                    cost_of[t] -= gain;
                    any_change = true;
                }
            }

            if !any_change {
                break;
            }
        }

        // ---- Materialise the plan ----
        let placements = model
            .features()
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let opt = &menus[menu_of[t]].options[step[t]];
                TablePlacement {
                    table: spec.id,
                    gpu: assignment[t].expect("every table assigned"),
                    // The representative's split row count, clamped to this
                    // member's geometry (identical within a bucket by
                    // construction, the clamp is belt-and-braces).
                    hbm_rows: opt.hbm_rows.min(spec.hash_size),
                    total_rows: spec.hash_size,
                    row_bytes: spec.row_bytes(),
                }
            })
            .collect();
        let plan = ShardingPlan::new("recshard-scalable", m, placements);
        debug_assert!(plan.validate(model, system).is_ok());
        Ok(ScalableSolveReport {
            plan,
            tables: num_tables,
            buckets: buckets.num_buckets(),
            compression_ratio: buckets.compression_ratio(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::StructuredSolver;
    use recshard_data::ModelSpec;
    use recshard_stats::DatasetProfiler;

    fn setup(n: usize, seed: u64) -> (ModelSpec, DatasetProfile) {
        let model = ModelSpec::small(n, seed);
        let profile = DatasetProfiler::profile_model(&model, 2_000, seed + 1);
        (model, profile)
    }

    #[test]
    fn plan_is_valid_under_pressure() {
        let (model, profile) = setup(12, 7);
        let system = SystemSpec::uniform(
            2,
            model.total_bytes() / 8,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let report = ScalableSolver::new(RecShardConfig::default())
            .solve_report(&model, &profile, &system)
            .unwrap();
        report.plan.validate(&model, &system).unwrap();
        assert!(report.plan.total_uvm_rows() > 0);
        assert_eq!(report.tables, 12);
        assert!(report.buckets >= 1 && report.buckets <= 12);
        assert_eq!(report.plan.strategy(), "recshard-scalable");
    }

    #[test]
    fn matches_structured_solver_within_one_percent() {
        for seed in [3u64, 11, 21] {
            let (model, profile) = setup(10, seed);
            let system = SystemSpec::uniform(
                2,
                model.total_bytes() / 6,
                model.total_bytes(),
                1555.0,
                16.0,
            );
            let config = RecShardConfig::default();
            let structured = StructuredSolver::new(config);
            let reference = structured.solve(&model, &profile, &system).unwrap();
            let ref_cost = structured
                .gpu_costs_exact(&model, &profile, &system, &reference)
                .into_iter()
                .fold(0.0f64, f64::max);

            let scalable_plan = ScalableSolver::new(config)
                .solve(&model, &profile, &system)
                .unwrap();
            let scalable_cost = structured
                .gpu_costs_exact(&model, &profile, &system, &scalable_plan)
                .into_iter()
                .fold(0.0f64, f64::max);
            assert!(
                scalable_cost <= ref_cost * 1.01 + 1e-12,
                "seed {seed}: scalable {scalable_cost} vs structured {ref_cost}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let (model, profile) = setup(9, 13);
        let system = SystemSpec::uniform(
            3,
            model.total_bytes() / 5,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let solver = ScalableSolver::new(RecShardConfig::default());
        let a = solver.solve(&model, &profile, &system).unwrap();
        let b = solver.solve(&model, &profile, &system).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_impossible_models() {
        let (model, profile) = setup(4, 5);
        let system = SystemSpec::uniform(1, 16, 16, 1555.0, 16.0);
        assert!(matches!(
            ScalableSolver::new(RecShardConfig::default()).solve(&model, &profile, &system),
            Err(RecShardError::CapacityExceeded { .. })
        ));
    }

    /// Warm-started re-solves across seeded drift traces are never costlier
    /// than a cold re-solve (the gate guarantees it), stay valid, and keep
    /// at least as many tables on their previous GPUs as the cold path —
    /// the whole point of carrying the assignment across re-sharding events.
    #[test]
    fn warm_start_no_worse_than_cold_on_seeded_drift_traces() {
        use recshard_data::DriftModel;
        for seed in [3u64, 11, 29] {
            let (model, profile) = setup(12, seed);
            let system = SystemSpec::uniform(
                2,
                model.total_bytes() / 6,
                model.total_bytes(),
                1555.0,
                16.0,
            );
            let solver = ScalableSolver::new(RecShardConfig::default());
            let evaluator = StructuredSolver::new(RecShardConfig::default());
            let mut previous = solver.solve(&model, &profile, &system).unwrap();

            let drift = DriftModel::paper_like();
            for month in [2u32, drift.months()] {
                let drifted = drift.model_at_month(&model, month);
                let drifted_profile =
                    recshard_stats::DatasetProfiler::profile_model(&drifted, 2_000, seed ^ 0xD81F7);

                let warm = solver
                    .solve_seeded(&drifted, &drifted_profile, &system, &previous)
                    .unwrap();
                let cold = solver.solve(&drifted, &drifted_profile, &system).unwrap();
                warm.validate(&drifted, &system).unwrap();

                let max_cost = |plan: &ShardingPlan| {
                    evaluator
                        .gpu_costs_exact(&drifted, &drifted_profile, &system, plan)
                        .into_iter()
                        .fold(0.0f64, f64::max)
                };
                assert!(
                    max_cost(&warm) <= max_cost(&cold) * (1.0 + 1e-9),
                    "seed {seed} month {month}: warm re-solve must not lose to cold \
                     ({} vs {})",
                    max_cost(&warm),
                    max_cost(&cold)
                );

                let moved = |plan: &ShardingPlan| {
                    plan.placements()
                        .iter()
                        .zip(previous.placements())
                        .filter(|(a, b)| a.gpu != b.gpu)
                        .count()
                };
                assert!(
                    moved(&warm) <= moved(&cold),
                    "seed {seed} month {month}: warm start must not migrate more tables \
                     than cold ({} vs {})",
                    moved(&warm),
                    moved(&cold)
                );
                previous = warm;
            }
        }
    }

    /// A stale seed (wrong GPU count) is ignored rather than crashing.
    #[test]
    fn mismatched_seed_falls_back_to_cold() {
        let (model, profile) = setup(8, 17);
        let system = SystemSpec::uniform(
            2,
            model.total_bytes() / 4,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let four_gpu = SystemSpec::uniform(
            4,
            model.total_bytes() / 4,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let solver = ScalableSolver::new(RecShardConfig::default());
        let stale = solver.solve(&model, &profile, &four_gpu).unwrap();
        let warm = solver
            .solve_seeded(&model, &profile, &system, &stale)
            .unwrap();
        let cold = solver.solve(&model, &profile, &system).unwrap();
        assert_eq!(warm, cold);
    }
}
