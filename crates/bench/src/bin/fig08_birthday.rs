//! Figure 8: hash usage, collisions and sparsity as the hash size grows from
//! a fraction of the input cardinality to 10x (the birthday-paradox curve).

#![allow(clippy::print_stdout)]
use recshard::hash_size_sweep;

fn main() {
    let cardinality = 100_000u64;
    let sweep = hash_size_sweep(cardinality, 0.25, 10.0, 14, 42);

    println!("# Figure 8: hash-space utilisation vs hash size ({cardinality} distinct inputs)");
    println!("| hash size / cardinality | usage | collisions | sparsity | expected usage |");
    println!("|-------------------------|-------|------------|----------|----------------|");
    for p in &sweep {
        println!(
            "| {:.2}x | {:.3} | {:.3} | {:.3} | {:.3} |",
            p.size_multiple, p.usage, p.collision_fraction, p.sparsity, p.expected_usage
        );
    }
    let at_one = sweep
        .iter()
        .min_by(|a, b| {
            (a.size_multiple - 1.0)
                .abs()
                .partial_cmp(&(b.size_multiple - 1.0).abs())
                .unwrap()
        })
        .expect("non-empty sweep");
    println!();
    println!(
        "At hash size == cardinality (the blue dot of Figure 8) {:.1}% of the table is unused — \
         the birthday paradox's 1/e ≈ 36.8%. Increasing the hash size to preserve the tail pushes \
         sparsity towards {:.1}%, all of it reclaimable by RecShard.",
        at_one.sparsity * 100.0,
        sweep.last().expect("non-empty").sparsity * 100.0
    );
}
