//! DES throughput trajectory: seeded events/sec sweep emitting the tracked
//! `BENCH_des.json` artifact.
//!
//! Runs the RecShard plan for the canonical skewed workload through the
//! discrete-event cluster simulator at 4 and 16 GPUs, flat and with the
//! two-level node topology, under identical seeds. Everything in the JSON
//! is a pure function of the sweep configuration and seed **except** the
//! wall-clock fields (`wall_ms`, `events_per_sec`), which are only written
//! under `RECSHARD_BENCH_TIMING=1` — otherwise a `-1` sentinel keeps the
//! artifact byte-stable, the same contract as `BENCH_solver.json`.
//!
//! A `contention` sweep rides along (uniform + incast scenarios, FIFO and
//! shared-rate contention modes) and is serialised into the artifact's
//! `contention` section — purely virtual quantities, byte-stable.
//!
//! Perf-trajectory gates: when `RECSHARD_BENCH_BASELINE` points at a
//! previously committed `BENCH_des.json`, the run fails on events/sec
//! regressions beyond `RECSHARD_BENCH_TOLERANCE` (default 25% — generous,
//! because wall rates on shared runners are noisy; the gate catches
//! instrumentation-scale slowdowns, not jitter). Event-log fingerprint
//! drift on committed point keys (main and contention sweeps) also fails
//! the run — behavioural changes must be re-baselined deliberately — unless
//! `RECSHARD_BENCH_ALLOW_DRIFT=1` acknowledges the drift as intentional.
//!
//! Observability export: when `RECSHARD_OBS_DIR` is set, the sweep's
//! smallest flat point re-runs once with a collector attached and writes
//! `des_trace.jsonl`, `des_trace.chrome.json` (load it in
//! `chrome://tracing` or Perfetto) and `des_metrics.json` there.
//!
//! Environment overrides: `RECSHARD_DES_MAX_GPUS`, `RECSHARD_DES_ITERS`,
//! `RECSHARD_SEED`, `RECSHARD_BENCH_TIMING`, `RECSHARD_BENCH_BASELINE`,
//! `RECSHARD_BENCH_TOLERANCE`, `RECSHARD_BENCH_ALLOW_DRIFT`,
//! `RECSHARD_OBS_DIR`.

#![allow(clippy::print_stdout, clippy::print_stderr)]
use recshard_bench::des_bench::{
    fingerprint_drift, run_sweep, throughput_regressions, traced_smoke, DesBenchConfig,
};
use recshard_bench::report::RunReport;

fn main() {
    let cfg = DesBenchConfig::from_env();
    println!(
        "# des_bench: {} tables x gpus {:?} (flat + hierarchical), {} iterations, \
         batch {}, seed {:#x}, timing {}",
        cfg.tables,
        cfg.gpu_counts,
        cfg.iterations,
        cfg.batch_size,
        cfg.seed,
        if cfg.include_timing {
            "in JSON"
        } else {
            "stdout only"
        }
    );
    let report = run_sweep(&cfg);

    // Perf-trajectory gate against a previously committed BENCH_des.json.
    // Read the baseline *before* overwriting it below.
    if let Ok(baseline_path) = std::env::var("RECSHARD_BENCH_BASELINE") {
        let tolerance = std::env::var("RECSHARD_BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.25);
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let allow_drift = std::env::var("RECSHARD_BENCH_ALLOW_DRIFT").as_deref() == Ok("1");
        let drifts = fingerprint_drift(&report, &baseline);
        if drifts.is_empty() {
            println!("no event-log fingerprint drift vs {baseline_path}");
        } else if allow_drift {
            for drift in &drifts {
                println!("note (drift allowed): {drift}");
            }
        } else {
            for drift in &drifts {
                eprintln!("FINGERPRINT DRIFT: {drift}");
            }
            eprintln!(
                "event-log fingerprints drifted from {baseline_path}; if the behaviour \
                 change is intentional, re-run with RECSHARD_BENCH_ALLOW_DRIFT=1 and \
                 commit the regenerated BENCH_des.json"
            );
            std::process::exit(1);
        }
        let regressions = throughput_regressions(&report, &baseline, tolerance);
        if regressions.is_empty() {
            println!(
                "no events/sec regressions vs {baseline_path} (tolerance {:.0}%)",
                tolerance * 100.0
            );
        } else {
            for r in &regressions {
                eprintln!("THROUGHPUT REGRESSION: {r}");
            }
            std::process::exit(1);
        }
    }

    // Observability artifact export: one traced seeded smoke run.
    if let Ok(dir) = std::env::var("RECSHARD_OBS_DIR") {
        let (summary, bundle) = traced_smoke(&cfg);
        std::fs::create_dir_all(&dir).expect("create RECSHARD_OBS_DIR");
        let path = |name: &str| format!("{dir}/{name}");
        std::fs::write(path("des_trace.jsonl"), bundle.trace.to_jsonl())
            .expect("write des_trace.jsonl");
        std::fs::write(path("des_trace.chrome.json"), bundle.trace.to_chrome())
            .expect("write des_trace.chrome.json");
        std::fs::write(path("des_metrics.json"), bundle.metrics.to_json())
            .expect("write des_metrics.json");
        let mut obs = RunReport::new("observability export");
        obs.push("directory", &dir)
            .push("trace records", bundle.trace.len())
            .push_fingerprint("trace fingerprint", bundle.trace.fingerprint())
            .push_fingerprint("metrics fingerprint", bundle.metrics.fingerprint())
            .push_fingerprint("event-log fingerprint", summary.fingerprint);
        print!("{obs}");
    }

    let json = report.to_json();
    std::fs::write("BENCH_des.json", &json).expect("write BENCH_des.json");
    println!();
    let mut summary = RunReport::new("des_bench");
    summary
        .push("sweep points", report.points.len())
        .push("contention points", report.contention.len())
        .push_fingerprint("report fingerprint", report.fingerprint());
    for p in &report.points {
        let key = format!("{} GPUs x {} node(s)", p.gpus, p.nodes);
        if p.events_per_sec > 0.0 {
            summary.push(
                &key,
                format!(
                    "{} events, {:.0} events/s wall, fingerprint {:#018x}",
                    p.events, p.events_per_sec, p.fingerprint
                ),
            );
        } else {
            summary.push(
                &key,
                format!("{} events, fingerprint {:#018x}", p.events, p.fingerprint),
            );
        }
    }
    print!("{summary}");
    println!("wrote BENCH_des.json");
}
