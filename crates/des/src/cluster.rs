//! The sharded-training cluster simulation.
//!
//! [`ClusterSimulator`] composes the deterministic event engine with the
//! domain components: per-GPU [`GpuStation`]s, a batch [`ArrivalProcess`],
//! the trace-driven [`IterationWorkload`], an all-to-all exchange barrier,
//! and optionally a [drift schedule](crate::DriftSchedule) plus an
//! [online re-sharding controller](crate::ReshardController).
//!
//! One training iteration flows through three event types:
//!
//! 1. **`Arrival`** — a batch arrives (input pipeline), its lookups are drawn
//!    and each GPU's embedding work is enqueued at its station; the next
//!    arrival is scheduled.
//! 2. **`GpuDone`** — one GPU finished its gather for the iteration; when the
//!    last GPU finishes, the all-to-all exchange starts (synchronous
//!    training's barrier).
//! 3. **`ExchangeDone`** — the pooled embeddings finished crossing the
//!    interconnect; the iteration completes and its *sojourn time* (arrival →
//!    exchange done, queueing included) streams into the p50/p95/p99 CDF.
//!
//! Because arrivals are open-loop, a plan whose slowest GPU cannot keep up
//! with the arrival rate builds a queue and its tail latency diverges — the
//! sustained-throughput behaviour the closed-form model in
//! `recshard-memsim` cannot express.
//!
//! # Contention modes
//!
//! [`ContentionMode::Fifo`] (the default) is the historical model: each GPU
//! is a single-server FIFO queue and the all-to-all exchange is one
//! precomputed scalar delay. [`ContentionMode::SharedRate`] replaces both
//! with shared-rate (processor-sharing) links — per-GPU HBM and UVM
//! channels, per-GPU NVLink egress, and one inter-node fabric port per
//! *receiving* node — so overlapping iterations slow each other down and
//! incast (many senders converging on one node's NIC) shows up in the
//! sojourn tail. The exchange runs as a hierarchical reduce-scatter over
//! the plan's two-level topology: an intra-node phase on the NVLink links,
//! then an inter-node phase in which every ordered node pair's flow
//! contends on the receiver's fabric link. This also fixes the old
//! split-bandwidth bug where local and remote transfer times were *summed*
//! into one serial scalar — the phases now occupy separate contended
//! resources with their own queueing.

use crate::controller::{CheckOutcome, ReshardController};
use crate::engine::EventQueue;
use crate::error::{check_bandwidth, check_duration, DesError};
use crate::resource::{CompletedTransfer, SharedRateResource};
use crate::station::{GpuStation, ServiceDemand};
use crate::time::SimTime;
use crate::workload::{ArrivalProcess, IterationWorkload};
use crate::DriftSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use recshard_data::{ModelSpec, ScenarioSpec};
use recshard_memsim::AccessCounters;
use recshard_obs::{LinkKind, ObsHandle, ObsSink, TraceEvent};
use recshard_sharding::{FabricSpec, NodeTopology, ShardingPlan, SystemSpec};
use recshard_stats::{DatasetProfile, StreamingCdf, Summary, WelfordAccumulator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How contended resources are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ContentionMode {
    /// Historical model: per-GPU single-server FIFO stations, one scalar
    /// all-to-all delay. Bit-compatible with every committed fingerprint.
    #[default]
    Fifo,
    /// Shared-rate (processor-sharing) links for HBM, UVM, NVLink egress and
    /// per-node fabric ports; the exchange is a two-phase hierarchical
    /// reduce-scatter over first-class link stations.
    SharedRate,
}

/// Configuration of a cluster simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Samples per training batch actually traced. Counters (and therefore
    /// service times) can be scaled up via [`scale_to_batch`](Self::scale_to_batch).
    pub batch_size: usize,
    /// Number of training iterations (batches) to simulate.
    pub iterations: u64,
    /// Master seed; every internal stream derives from it.
    pub seed: u64,
    /// How batches arrive at the cluster.
    pub arrival: ArrivalProcess,
    /// Fixed kernel-launch + pooling overhead per table kernel, in µs (same
    /// constant as `recshard_memsim::SimConfig`).
    pub kernel_overhead_us_per_table: f64,
    /// When set, access counters are scaled from `batch_size` up to this
    /// batch before timing, like the trace simulator's `scale_to_batch`.
    pub scale_to_batch: Option<u32>,
    /// Base latency of the all-to-all exchange, in µs.
    pub alltoall_latency_us: f64,
    /// Per-GPU all-to-all bandwidth in GB/s (NVLink-class).
    pub alltoall_bandwidth_gbps: f64,
    /// Per-GPU bandwidth of the inter-node fabric in GB/s (RoCE/IB-class;
    /// only exercised when the plan carries a multi-node
    /// [`NodeTopology`] — flat plans see exactly the single-fabric
    /// exchange). In [`ContentionMode::SharedRate`] this is the rate of each
    /// *receiving node's* fabric port, which all inbound flows share.
    pub internode_bandwidth_gbps: f64,
    /// How contended resources are scheduled (FIFO stations vs shared-rate
    /// links).
    pub contention: ContentionMode,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            batch_size: 128,
            iterations: 1_000,
            seed: 0xDE5,
            arrival: ArrivalProcess::FixedRate { interval_ms: 1.0 },
            kernel_overhead_us_per_table: 8.0,
            scale_to_batch: None,
            alltoall_latency_us: 20.0,
            alltoall_bandwidth_gbps: 150.0,
            internode_bandwidth_gbps: 25.0,
            contention: ContentionMode::Fifo,
        }
    }
}

impl ClusterConfig {
    /// Validates the configuration: run dimensions non-empty, arrival
    /// intervals sane, overheads/latencies non-negative and finite,
    /// bandwidths positive and finite (a zero or negative bandwidth used to
    /// silently produce inf/NaN transfer seconds at `exchange_ns_for`'s
    /// divisions).
    pub fn validate(&self) -> Result<(), DesError> {
        if self.iterations == 0 {
            return Err(DesError::EmptyRun {
                what: "must simulate at least one iteration",
            });
        }
        if self.batch_size == 0 {
            return Err(DesError::EmptyRun {
                what: "batch must contain at least one sample",
            });
        }
        self.arrival.validate()?;
        check_duration(
            "kernel_overhead_us_per_table",
            self.kernel_overhead_us_per_table,
        )?;
        check_duration("alltoall_latency_us", self.alltoall_latency_us)?;
        check_bandwidth("alltoall_bandwidth_gbps", self.alltoall_bandwidth_gbps)?;
        check_bandwidth("internode_bandwidth_gbps", self.internode_bandwidth_gbps)?;
        Ok(())
    }

    /// Adopts the link rates of a shared [`FabricSpec`], so the DES, the
    /// analytical estimator and the serving simulator price the same fabric
    /// identically.
    pub fn with_fabric(mut self, fabric: FabricSpec) -> Self {
        self.alltoall_bandwidth_gbps = fabric.nvlink_gbps;
        self.internode_bandwidth_gbps = fabric.fabric_gbps;
        self.alltoall_latency_us = fabric.base_latency_us;
        self
    }
}

/// The events of the cluster model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A training batch arrived from the input pipeline.
    Arrival { iter: u64 },
    /// One GPU finished its embedding gather for an iteration.
    GpuDone { iter: u64, gpu: usize },
    /// The all-to-all exchange of an iteration finished.
    ExchangeDone { iter: u64 },
    /// A GPU's memory gathers begin after launch overhead (shared-rate mode
    /// only).
    GatherStart { iter: u64, gpu: usize },
    /// Wake-up at a shared-rate link's earliest projected completion. The
    /// generation stamps the tenancy state the projection was made under; a
    /// stale wake-up (the link changed tenancy since) is ignored when popped.
    LinkUpdate { link: usize, generation: u64 },
}

/// Live state of an attached workload scenario: the spec plus how far the
/// run has advanced through its phase boundaries and shift schedule.
#[derive(Debug)]
struct ScenarioRuntime {
    spec: ScenarioSpec,
    /// Sorted regime boundaries, cached once (phase advancement is on the
    /// per-arrival path).
    boundaries_ns: Vec<u64>,
    /// Shift events applied so far.
    applied: usize,
    /// Current phase index (count of boundaries crossed).
    phase: u32,
}

/// In-flight bookkeeping of one iteration.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    arrival: SimTime,
    remaining_gpus: u32,
    /// When the first GPU finished its gather — the barrier wait of the
    /// iteration spans from here to the last GPU's finish.
    first_done: SimTime,
}

/// Which pipeline stage a shared-rate transfer implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransferStage {
    /// The HBM share of one GPU's gather.
    Hbm { gpu: usize },
    /// The UVM share of one GPU's gather (runs after the HBM share).
    Uvm { gpu: usize },
    /// One GPU's intra-node exchange share on its NVLink egress.
    Local { gpu: usize },
    /// One ordered node pair's inter-node flow, served by the *receiver's*
    /// fabric port.
    Remote { dst: usize },
}

/// Payload of one shared-rate transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Transfer {
    iter: u64,
    stage: TransferStage,
}

/// One GPU's gather job in flight on the shared-rate memory links.
#[derive(Debug, Clone, Copy)]
struct GatherJob {
    arrival: SimTime,
    /// When the job actually started (arrival delayed past any migration
    /// stall); launch overhead runs from here.
    start: SimTime,
    demand: ServiceDemand,
}

/// Progress of one iteration's two-phase exchange.
#[derive(Debug, Clone, Copy)]
struct ExchangeState {
    /// When the barrier opened and the intra-node phase started.
    start: SimTime,
    /// Transfers outstanding in the current phase.
    pending: u32,
}

/// The shared-rate link fabric: all contended links, per-plan transfer
/// volumes, and in-flight gather/exchange bookkeeping.
///
/// Link index layout (`g` GPUs, `n` nodes): HBM channels `0..g`, UVM
/// channels `g..2g`, NVLink egress `2g..3g`, per-node fabric ports
/// `3g..3g+n`.
#[derive(Debug)]
struct Contention {
    links: Vec<SharedRateResource<Transfer>>,
    topology: NodeTopology,
    num_gpus: usize,
    latency_ns: u64,
    /// Per-GPU solo NVLink nanoseconds of the intra-node exchange phase.
    local_work_ns: Vec<u64>,
    /// `remote_work_ns[src][dst]` (src ≠ dst): solo fabric nanoseconds of
    /// the src→dst node flow on dst's fabric port.
    remote_work_ns: Vec<Vec<u64>>,
    gathers: HashMap<(u64, usize), GatherJob>,
    exchanges: HashMap<u64, ExchangeState>,
    /// Per-GPU earliest virtual time new gathers may start (pushed out by
    /// migration stalls).
    stalled_until: Vec<SimTime>,
}

impl Contention {
    fn new(topology: NodeTopology, latency_ns: u64) -> Self {
        let num_gpus = topology.num_gpus();
        let num_links = 3 * num_gpus + topology.num_nodes;
        Self {
            links: (0..num_links).map(|_| SharedRateResource::new()).collect(),
            topology,
            num_gpus,
            latency_ns,
            local_work_ns: vec![0; num_gpus],
            remote_work_ns: vec![vec![0; topology.num_nodes]; topology.num_nodes],
            gathers: HashMap::new(),
            exchanges: HashMap::new(),
            stalled_until: vec![SimTime::ZERO; num_gpus],
        }
    }

    fn hbm_link(&self, gpu: usize) -> usize {
        gpu
    }

    fn uvm_link(&self, gpu: usize) -> usize {
        self.num_gpus + gpu
    }

    fn nvlink_link(&self, gpu: usize) -> usize {
        2 * self.num_gpus + gpu
    }

    fn fabric_link(&self, node: usize) -> usize {
        3 * self.num_gpus + node
    }

    /// The kind and device index of a link, for trace events.
    fn link_kind(&self, link: usize) -> (LinkKind, u32) {
        let g = self.num_gpus;
        if link < g {
            (LinkKind::Hbm, link as u32)
        } else if link < 2 * g {
            (LinkKind::Uvm, (link - g) as u32)
        } else if link < 3 * g {
            (LinkKind::Nvlink, (link - 2 * g) as u32)
        } else {
            (LinkKind::Fabric, (link - 3 * g) as u32)
        }
    }

    /// Recomputes per-plan exchange volumes. Every GPU's pooled outputs are
    /// owed to all peers in proportion to the batch share each peer
    /// processes:
    ///
    /// * intra-node phase — GPU `g` ships `owned_bytes[g] · (p−1)/G` over
    ///   its NVLink egress (`p` GPUs per node, `G` total GPUs);
    /// * inter-node phase — node `a` ships `node_bytes[a] / N` to each
    ///   other node, and that flow is served by the *receiver's* fabric
    ///   port, so `N−1` inbound flows contend there (incast).
    ///
    /// On a uniform flat plan this reduces exactly to the historical
    /// `batch · pooled_bytes · (G−1)/G²` per-GPU exchange volume.
    ///
    /// In-flight transfers keep the volumes they were admitted with; only
    /// gathers and exchanges starting after a re-shard see the new plan.
    fn rebuild_volumes(&mut self, plan: &ShardingPlan, config: &ClusterConfig) {
        let g_total = self.num_gpus as f64;
        let p = self.topology.gpus_per_node as f64;
        let n = self.topology.num_nodes;
        let effective_batch = config
            .scale_to_batch
            .map(|b| b as f64)
            .unwrap_or(config.batch_size as f64);
        let mut owned_bytes = vec![0.0f64; self.num_gpus];
        for placement in plan.placements() {
            owned_bytes[placement.gpu] += effective_batch * placement.row_bytes as f64;
        }
        for (gpu, &bytes) in owned_bytes.iter().enumerate() {
            let local_bytes = bytes * (p - 1.0) / g_total;
            self.local_work_ns[gpu] = SimTime::saturating_ns_from_secs(
                local_bytes / (config.alltoall_bandwidth_gbps * 1e9),
            );
        }
        let mut node_bytes = vec![0.0f64; n];
        for (gpu, &bytes) in owned_bytes.iter().enumerate() {
            node_bytes[self.topology.node_of_gpu(gpu)] += bytes;
        }
        for src in 0..n {
            for dst in 0..n {
                self.remote_work_ns[src][dst] = if src == dst {
                    0
                } else {
                    SimTime::saturating_ns_from_secs(
                        node_bytes[src] / n as f64 / (config.internode_bandwidth_gbps * 1e9),
                    )
                };
            }
        }
    }
}

/// Aggregated results of one simulated run. Two runs with identical inputs
/// and seed produce identical summaries (including the event-log
/// fingerprint) — the determinism contract of the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Strategy name of the initially installed plan.
    pub strategy: String,
    /// GPUs simulated.
    pub num_gpus: usize,
    /// Iterations requested.
    pub iterations: u64,
    /// Iterations completed (== requested; open-loop arrivals always drain).
    pub completed: u64,
    /// Traced samples per batch.
    pub batch_size: usize,
    /// Virtual time of the last event, in ms.
    pub makespan_ms: f64,
    /// Sustained throughput: completed iterations per virtual second.
    pub throughput_iters_per_s: f64,
    /// Median iteration sojourn time (arrival → exchange done), ms.
    pub p50_ms: f64,
    /// 95th-percentile iteration sojourn time, ms.
    pub p95_ms: f64,
    /// 99th-percentile iteration sojourn time, ms.
    pub p99_ms: f64,
    /// Exact moments of the sojourn-time distribution, ms.
    pub iteration_time: Summary,
    /// Queue-wait moments across all stations, ms.
    pub queue_wait: Summary,
    /// Per-GPU fraction of the makespan spent serving embedding work.
    pub busy_fraction: Vec<f64>,
    /// Per-GPU busy milliseconds (service only, stalls excluded).
    pub per_gpu_busy_ms: Vec<f64>,
    /// Per-GPU share of busy time spent in UVM gathers.
    pub uvm_busy_share: Vec<f64>,
    /// Plan swaps performed by the online re-sharding controller.
    pub reshards: u32,
    /// Total events processed.
    pub events: u64,
    /// Order-sensitive FNV-1a hash over the entire event log.
    pub fingerprint: u64,
}

impl std::fmt::Display for RunSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} iters on {} GPUs in {:.1} ms — {:.1} iters/s, sojourn p50/p95/p99 = \
             {:.3}/{:.3}/{:.3} ms, {} reshards",
            self.strategy,
            self.completed,
            self.num_gpus,
            self.makespan_ms,
            self.throughput_iters_per_s,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.reshards
        )
    }
}

/// The discrete-event cluster simulator.
///
/// ```
/// use recshard_data::ModelSpec;
/// use recshard_stats::DatasetProfiler;
/// use recshard_sharding::{GreedySharder, SizeCost, SystemSpec};
/// use recshard_des::{ClusterConfig, ClusterSimulator};
///
/// let model = ModelSpec::small(6, 3);
/// let profile = DatasetProfiler::profile_model(&model, 500, 1);
/// let system = SystemSpec::uniform(2, u64::MAX / 4, u64::MAX / 4, 1555.0, 16.0);
/// let plan = GreedySharder::new(SizeCost).shard(&model, &profile, &system).unwrap();
/// let config = ClusterConfig { iterations: 50, ..ClusterConfig::default() };
/// let summary = ClusterSimulator::new(&model, &plan, &profile, &system, config).run();
/// assert_eq!(summary.completed, 50);
/// assert!(summary.p99_ms >= summary.p50_ms);
/// ```
#[derive(Debug)]
pub struct ClusterSimulator<'obs> {
    config: ClusterConfig,
    system: SystemSpec,
    base_model: ModelSpec,
    plan: ShardingPlan,
    strategy: String,
    workload: IterationWorkload,
    tables_per_gpu: Vec<usize>,
    queue: EventQueue<Event>,
    stations: Vec<GpuStation>,
    arrival_rng: StdRng,
    workload_rng: StdRng,
    in_flight: HashMap<u64, InFlight>,
    sojourn_cdf: StreamingCdf,
    completed: u64,
    exchange_ns: u64,
    drift: Option<DriftSchedule>,
    current_month: u32,
    scenario: Option<ScenarioRuntime>,
    controller: Option<ReshardController>,
    fingerprint: u64,
    contention: Option<Contention>,
    obs: ObsHandle<'obs>,
}

impl<'obs> ClusterSimulator<'obs> {
    /// Builds a simulator for `model` sharded by `plan` on `system`.
    ///
    /// # Panics
    ///
    /// Panics if the inputs disagree on feature or GPU counts, or if the
    /// configuration is invalid (zero iterations, empty batch, degenerate
    /// arrival interval, non-positive bandwidths). Use
    /// [`try_new`](Self::try_new) to receive the failure as a typed
    /// [`DesError`] instead.
    pub fn new(
        model: &ModelSpec,
        plan: &ShardingPlan,
        profile: &DatasetProfile,
        system: &SystemSpec,
        config: ClusterConfig,
    ) -> Self {
        Self::try_new(model, plan, profile, system, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a simulator, returning a typed error on an invalid
    /// configuration instead of panicking.
    ///
    /// # Errors
    ///
    /// [`DesError::EmptyRun`] for zero iterations or an empty batch,
    /// [`DesError::InvalidArrival`] for degenerate arrival intervals,
    /// [`DesError::NonPositiveBandwidth`] /
    /// [`DesError::InvalidDuration`] for poisoned link parameters (config
    /// *and* per-GPU system bandwidths — both feed divisions that used to
    /// yield silent inf/NaN), and [`DesError::GpuCountMismatch`] when plan
    /// and system disagree.
    ///
    /// # Panics
    ///
    /// Still panics if model, plan and profile disagree on the feature
    /// count (that is a caller bug, not a configuration value).
    pub fn try_new(
        model: &ModelSpec,
        plan: &ShardingPlan,
        profile: &DatasetProfile,
        system: &SystemSpec,
        config: ClusterConfig,
    ) -> Result<Self, DesError> {
        config.validate()?;
        if plan.num_gpus() != system.num_gpus() {
            return Err(DesError::GpuCountMismatch {
                plan: plan.num_gpus(),
                system: system.num_gpus(),
            });
        }
        for gpu in 0..system.num_gpus() {
            check_bandwidth("hbm_bandwidth_gbps", system.hbm_bandwidth_gbps(gpu))?;
            check_bandwidth("uvm_bandwidth_gbps", system.uvm_bandwidth_gbps(gpu))?;
        }
        let workload = IterationWorkload::new(model, plan, profile);
        let num_gpus = plan.num_gpus();
        let contention = match config.contention {
            ContentionMode::Fifo => None,
            ContentionMode::SharedRate => {
                let latency_ns = SimTime::from_us(config.alltoall_latency_us).as_ns();
                let mut c = Contention::new(plan.effective_topology(), latency_ns);
                c.rebuild_volumes(plan, &config);
                Some(c)
            }
        };
        Ok(Self {
            config,
            system: system.clone(),
            base_model: model.clone(),
            strategy: plan.strategy().to_string(),
            tables_per_gpu: workload.tables_per_gpu(),
            plan: plan.clone(),
            workload,
            queue: EventQueue::new(),
            stations: (0..num_gpus).map(GpuStation::new).collect(),
            arrival_rng: StdRng::seed_from_u64(config.seed ^ 0xA221_7A1C_0FFE_E000),
            workload_rng: StdRng::seed_from_u64(config.seed ^ 0x3A3B_0B5C_AFE5_0000),
            in_flight: HashMap::new(),
            sojourn_cdf: StreamingCdf::latency_defaults(),
            completed: 0,
            exchange_ns: Self::exchange_ns_for(model, plan, system, &config),
            drift: None,
            current_month: 0,
            scenario: None,
            controller: None,
            fingerprint: 0xCBF2_9CE4_8422_2325,
            contention,
            obs: ObsHandle::noop(),
        })
    }

    /// Attaches a feature-drift schedule: the workload's pooling statistics
    /// advance one month every `iterations_per_month` arrivals.
    pub fn with_drift(mut self, drift: DriftSchedule) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Attaches a workload scenario: the spec's rate curves scale the
    /// inter-arrival gaps over virtual time (the same seeded gap draws are
    /// consumed, only their lengths change, so a stationary scenario
    /// replays bit-identically) and its shift events mutate the live
    /// feature universe — hot-key re-hashing, per-class pooling drift,
    /// table growth — at their scheduled virtual instants. Phase changes
    /// are recorded as [`TraceEvent::ScenarioPhase`] instants when an
    /// observation sink is attached. Composes with
    /// [`with_drift`](Self::with_drift): drift adjusts the base model
    /// first, then the scenario's shifts apply on top.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ScenarioSpec::validate`].
    pub fn with_scenario(mut self, spec: ScenarioSpec) -> Self {
        spec.validate().unwrap_or_else(|e| panic!("{e}"));
        self.scenario = Some(ScenarioRuntime {
            boundaries_ns: spec.boundaries_ns(),
            spec,
            applied: 0,
            phase: 0,
        });
        self
    }

    /// Attaches an online re-sharding controller.
    pub fn with_controller(mut self, controller: ReshardController) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Attaches an observation sink: station enqueues/services, barrier
    /// waits, exchanges, iteration completions, re-shard checks and the
    /// final simulation summary are recorded at their virtual timestamps.
    /// Observation never perturbs the simulation — the [`RunSummary`]
    /// (fingerprint included) is identical with and without a sink.
    pub fn with_obs(mut self, sink: &'obs mut (dyn ObsSink + 'obs)) -> Self {
        self.obs = ObsHandle::attached(sink);
        self
    }

    /// All-to-all time of the legacy FIFO model: every GPU exchanges its
    /// share of the batch's pooled embedding vectors with every other GPU.
    /// Two-level plans split the exchange across fabrics: the share of a
    /// GPU's peers living on other nodes
    /// ([`NodeTopology::remote_peer_fraction`]) crosses the slower
    /// inter-node link.
    ///
    /// Known modeling artifact, kept bit-for-bit for fingerprint
    /// compatibility: the local and remote phase times are *summed* into one
    /// serial scalar, so NVLink/fabric overlap and per-link queueing are
    /// invisible. [`ContentionMode::SharedRate`] replaces this with separate
    /// contended link stations per phase.
    fn exchange_ns_for(
        model: &ModelSpec,
        plan: &ShardingPlan,
        system: &SystemSpec,
        config: &ClusterConfig,
    ) -> u64 {
        let g = system.num_gpus() as f64;
        let effective_batch = config
            .scale_to_batch
            .map(|b| b as f64)
            .unwrap_or(config.batch_size as f64);
        let pooled_bytes_per_sample: u64 = model.features().iter().map(|f| f.row_bytes()).sum();
        // Each GPU sends (G-1)/G of its pooled outputs and the exchange is
        // bandwidth-bound on the per-GPU link.
        let per_gpu_bytes = effective_batch * pooled_bytes_per_sample as f64 * (g - 1.0) / (g * g);
        let remote_fraction = plan.effective_topology().remote_peer_fraction();
        let local_bytes = per_gpu_bytes * (1.0 - remote_fraction);
        let remote_bytes = per_gpu_bytes * remote_fraction;
        let transfer_s = local_bytes / (config.alltoall_bandwidth_gbps * 1e9)
            + remote_bytes / (config.internode_bandwidth_gbps * 1e9);
        (config.alltoall_latency_us * 1e3 + transfer_s * 1e9).round() as u64
    }

    /// Converts one GPU's iteration counters into a station service demand,
    /// applying the batch scale factor (as `recshard-memsim` does).
    fn demand_for(&self, gpu: usize, counters: &AccessCounters) -> ServiceDemand {
        let scale = self
            .config
            .scale_to_batch
            .map(|b| b as f64 / self.config.batch_size as f64)
            .unwrap_or(1.0)
            .max(1.0);
        let scaled = counters.scaled(scale);
        let hbm_s = scaled.hbm_bytes as f64 / (self.system.hbm_bandwidth_gbps(gpu) * 1e9);
        let uvm_s = scaled.uvm_bytes as f64 / (self.system.uvm_bandwidth_gbps(gpu) * 1e9);
        let overhead_s =
            self.tables_per_gpu[gpu] as f64 * self.config.kernel_overhead_us_per_table * 1e-6;
        ServiceDemand {
            hbm_ns: (hbm_s * 1e9).round() as u64,
            uvm_ns: (uvm_s * 1e9).round() as u64,
            overhead_ns: (overhead_s * 1e9).round() as u64,
        }
    }

    /// Folds one event into the order-sensitive run fingerprint.
    fn log_event(&mut self, time: SimTime, seq: u64, event: &Event) {
        let (tag, a, b) = match *event {
            Event::Arrival { iter } => (1u64, iter, 0),
            Event::GpuDone { iter, gpu } => (2, iter, gpu as u64),
            Event::ExchangeDone { iter } => (3, iter, 0),
            Event::GatherStart { iter, gpu } => (4, iter, gpu as u64),
            Event::LinkUpdate { link, generation } => (5, link as u64, generation),
        };
        for word in [time.as_ns(), seq, tag, a, b] {
            self.fingerprint ^= word;
            self.fingerprint = self.fingerprint.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// The shared-rate contention state. The gather/exchange/link handlers
    /// below are only reachable from events that shared-rate mode itself
    /// schedules, so inside them the state is always present; funnelling
    /// every access through these two accessors keeps that invariant in one
    /// audited place.
    fn contention(&self) -> &Contention {
        // recshard-lint: allow(unwrap) -- only called from shared-rate event
        // handlers, which exist only when contention was constructed.
        self.contention.as_ref().expect("shared-rate mode")
    }

    /// Mutable form of [`contention`](Self::contention); same invariant.
    fn contention_mut(&mut self) -> &mut Contention {
        // recshard-lint: allow(unwrap) -- same invariant as `contention`.
        self.contention.as_mut().expect("shared-rate mode")
    }

    /// The workload's current effective model: the base model adjusted for
    /// the drift schedule's month, with the scenario's applied shifts
    /// layered on top.
    fn effective_model(&self) -> ModelSpec {
        let mut model = if self.current_month > 0 {
            // recshard-lint: allow(unwrap) -- current_month only advances in
            // handle_arrival when a drift schedule is present.
            let drift = self.drift.as_ref().expect("month advanced without drift");
            drift
                .drift
                .model_at_month(&self.base_model, self.current_month)
        } else {
            self.base_model.clone()
        };
        if let Some(sc) = &self.scenario {
            if sc.applied > 0 {
                model = sc.spec.model_after(&model, sc.applied);
            }
        }
        model
    }

    fn handle_arrival(&mut self, iter: u64) {
        let now = self.queue.now();
        // Feature drift advances with the data the pipeline feeds in.
        let mut refresh = false;
        if let Some(drift) = &self.drift {
            let month = drift.month_of_iteration(iter);
            if month > self.current_month {
                self.current_month = month;
                refresh = true;
            }
        }
        // Scenario shifts and phase boundaries apply at the first arrival
        // at or past their virtual instant.
        let mut phase_event = None;
        if let Some(sc) = &mut self.scenario {
            let t = now.as_ns();
            let due = sc.spec.shifts_due(t);
            if due > sc.applied {
                sc.applied = due;
                refresh = true;
            }
            let phase = sc.boundaries_ns.iter().filter(|&&b| b <= t).count() as u32;
            if phase > sc.phase {
                sc.phase = phase;
                phase_event = Some(TraceEvent::ScenarioPhase {
                    phase,
                    rate_multiplier: sc.spec.rate_multiplier(t),
                    shifts_applied: sc.applied as u64,
                });
            }
        }
        if refresh {
            let model = self.effective_model();
            self.workload.install_model(&model);
        }
        if let Some(event) = phase_event {
            self.obs.record(now.as_ns(), event);
        }
        let counters = self
            .workload
            .sample_iteration(self.config.batch_size, &mut self.workload_rng);
        let obs_on = self.obs.enabled();
        if let Some(mut contention) = self.contention.take() {
            // Shared-rate mode: busy accounting happens up front; the
            // gathers start after any migration stall plus launch overhead
            // and then contend on the HBM/UVM links. (The contention state
            // is moved out for the loop so `demand_for` can borrow `self`.)
            for (gpu, c) in counters.iter().enumerate() {
                let demand = self.demand_for(gpu, c);
                self.stations[gpu].account(demand);
                let start = contention.stalled_until[gpu].max(now);
                contention.gathers.insert(
                    (iter, gpu),
                    GatherJob {
                        arrival: now,
                        start,
                        demand,
                    },
                );
                self.queue.schedule_at(
                    start.after_ns(demand.overhead_ns),
                    Event::GatherStart { iter, gpu },
                );
            }
            self.contention = Some(contention);
        } else {
            for (gpu, c) in counters.iter().enumerate() {
                let demand = self.demand_for(gpu, c);
                let completion = self.stations[gpu].submit(now, demand);
                if obs_on {
                    let service_ns = demand.total_ns();
                    let start_ns = completion.as_ns() - service_ns;
                    let wait_ns = start_ns - now.as_ns();
                    self.obs.record(
                        now.as_ns(),
                        TraceEvent::StationEnqueue {
                            gpu: gpu as u32,
                            iter,
                            queue_ns: wait_ns,
                        },
                    );
                    self.obs.record(
                        now.as_ns(),
                        TraceEvent::StationService {
                            gpu: gpu as u32,
                            iter,
                            start_ns,
                            service_ns,
                            wait_ns,
                        },
                    );
                }
                self.queue
                    .schedule_at(completion, Event::GpuDone { iter, gpu });
            }
        }
        self.in_flight.insert(
            iter,
            InFlight {
                arrival: now,
                remaining_gpus: self.stations.len() as u32,
                first_done: now,
            },
        );

        if iter + 1 < self.config.iterations {
            // The seeded gap draw is always consumed; the scenario only
            // rescales its length, so attaching a stationary scenario (or
            // none) replays bit-identically.
            let mut gap = self.config.arrival.next_gap_ns(&mut self.arrival_rng);
            if let Some(sc) = &self.scenario {
                gap = sc.spec.scaled_gap_ns(gap, now.as_ns());
            }
            self.queue
                .schedule_after_ns(gap, Event::Arrival { iter: iter + 1 });
        }
    }

    /// Launch overhead elapsed (shared-rate mode): the GPU's HBM gather
    /// share enters contention; its UVM share follows serially.
    fn handle_gather_start(&mut self, iter: u64, gpu: usize) {
        let contention = self.contention();
        let hbm_ns = contention.gathers[&(iter, gpu)].demand.hbm_ns;
        let link = contention.hbm_link(gpu);
        self.admit_transfer(
            link,
            hbm_ns,
            Transfer {
                iter,
                stage: TransferStage::Hbm { gpu },
            },
        );
    }

    fn handle_gpu_done(&mut self, iter: u64) {
        let now = self.queue.now();
        let total = self.stations.len() as u32;
        let entry = self
            .in_flight
            .get_mut(&iter)
            // recshard-lint: allow(unwrap) -- every GpuDone is scheduled from
            // an arrival that inserted the iteration into in_flight.
            .expect("GpuDone for unknown iteration");
        if entry.remaining_gpus == total {
            entry.first_done = now;
        }
        entry.remaining_gpus -= 1;
        let barrier_open = (entry.remaining_gpus == 0).then_some(entry.first_done);
        if let Some(first_done) = barrier_open {
            // Barrier passed: the all-to-all exchange starts now.
            if self.obs.enabled() {
                self.obs.record(
                    first_done.as_ns(),
                    TraceEvent::BarrierWait {
                        iter,
                        wait_ns: now.since(first_done),
                    },
                );
            }
            if self.contention.is_some() {
                self.start_exchange(iter);
            } else {
                if self.obs.enabled() {
                    self.obs.record(
                        now.as_ns(),
                        TraceEvent::Exchange {
                            iter,
                            duration_ns: self.exchange_ns,
                        },
                    );
                }
                self.queue
                    .schedule_after_ns(self.exchange_ns, Event::ExchangeDone { iter });
            }
        }
    }

    /// Opens the two-phase exchange of `iter` (shared-rate mode): every GPU
    /// admits its intra-node share onto its NVLink egress; the inter-node
    /// phase follows once all local shares have drained.
    fn start_exchange(&mut self, iter: u64) {
        let now = self.queue.now();
        let contention = self.contention_mut();
        let num_gpus = contention.num_gpus;
        contention.exchanges.insert(
            iter,
            ExchangeState {
                start: now,
                pending: num_gpus as u32,
            },
        );
        for gpu in 0..num_gpus {
            let contention = self.contention();
            let link = contention.nvlink_link(gpu);
            let work_ns = contention.local_work_ns[gpu];
            self.admit_transfer(
                link,
                work_ns,
                Transfer {
                    iter,
                    stage: TransferStage::Local { gpu },
                },
            );
        }
    }

    /// Starts the inter-node phase of `iter`: each ordered node pair's flow
    /// is admitted on the *receiver's* fabric port, so all inbound flows to
    /// one node contend there (incast).
    fn start_remote_phase(&mut self, iter: u64) {
        let contention = self.contention_mut();
        let n = contention.topology.num_nodes;
        let state = contention
            .exchanges
            .get_mut(&iter)
            // recshard-lint: allow(unwrap) -- the local phase that triggers
            // the remote phase only runs for a registered exchange.
            .expect("remote phase for unknown exchange");
        state.pending = (n * (n - 1)) as u32;
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let contention = self.contention();
                let link = contention.fabric_link(dst);
                let work_ns = contention.remote_work_ns[src][dst];
                self.admit_transfer(
                    link,
                    work_ns,
                    Transfer {
                        iter,
                        stage: TransferStage::Remote { dst },
                    },
                );
            }
        }
    }

    /// Closes the exchange of `iter`: the base all-to-all latency is charged
    /// on top of the contended transfer phases.
    fn finish_exchange(&mut self, iter: u64) {
        let now = self.queue.now();
        let contention = self.contention_mut();
        let latency_ns = contention.latency_ns;
        let state = contention
            .exchanges
            .remove(&iter)
            // recshard-lint: allow(unwrap) -- reached only when the exchange's
            // last pending transfer completed, so the entry still exists.
            .expect("finished an unknown exchange");
        if self.obs.enabled() {
            self.obs.record(
                state.start.as_ns(),
                TraceEvent::Exchange {
                    iter,
                    duration_ns: now.since(state.start) + latency_ns,
                },
            );
        }
        self.queue
            .schedule_after_ns(latency_ns, Event::ExchangeDone { iter });
    }

    /// Admits a transfer on `link` at the current virtual time, re-estimating
    /// every resident tenant's remaining service, and schedules the link's
    /// next wake-up. Transfers that complete during the same advance (their
    /// projected completion coincides with this instant) are processed
    /// immediately; the wake-up they had scheduled becomes stale via the
    /// generation bump and is skipped when popped.
    fn admit_transfer(&mut self, link: usize, work_ns: u64, transfer: Transfer) {
        let now = self.queue.now();
        let contention = self.contention_mut();
        let completed = contention.links[link].advance(now.as_ns());
        contention.links[link].admit(now.as_ns(), work_ns, transfer);
        if self.obs.enabled() {
            let contention = self.contention();
            let (kind, device) = contention.link_kind(link);
            let tenants = contention.links[link].tenants() as u32;
            self.obs.record(
                now.as_ns(),
                TraceEvent::LinkTenancy {
                    kind,
                    link: device,
                    tenants,
                },
            );
        }
        for done in completed {
            self.transfer_done(link, done);
        }
        self.schedule_link_wakeup(link);
    }

    /// Schedules a wake-up at the link's earliest projected completion,
    /// stamped with the current generation.
    fn schedule_link_wakeup(&mut self, link: usize) {
        let contention = self.contention();
        if let Some(delay) = contention.links[link].next_completion_delay() {
            let generation = contention.links[link].generation();
            self.queue
                .schedule_after_ns(delay, Event::LinkUpdate { link, generation });
        }
    }

    /// A link wake-up fired: if the stamped generation is current, the
    /// earliest tenant(s) complete exactly now; otherwise tenancy changed
    /// since the projection and the event is stale.
    fn handle_link_update(&mut self, link: usize, generation: u64) {
        let now = self.queue.now();
        let contention = self.contention_mut();
        if contention.links[link].generation() != generation {
            return;
        }
        let completed = contention.links[link].advance(now.as_ns());
        debug_assert!(
            !completed.is_empty(),
            "a current-generation wake-up must complete at least one transfer"
        );
        for done in completed {
            self.transfer_done(link, done);
        }
        self.schedule_link_wakeup(link);
    }

    /// One shared-rate transfer finished: record it, then advance its
    /// pipeline stage (HBM → UVM → gather done; local phase → remote phase →
    /// exchange done).
    fn transfer_done(&mut self, link: usize, done: CompletedTransfer<Transfer>) {
        let now = self.queue.now();
        if self.obs.enabled() {
            let contention = self.contention();
            let (kind, device) = contention.link_kind(link);
            self.obs.record(
                done.completed_ns,
                TraceEvent::LinkTransfer {
                    kind,
                    link: device,
                    seq: done.seq,
                    start_ns: done.admitted_ns,
                    work_ns: done.work_ns,
                    elapsed_ns: done.elapsed_ns(),
                    tenants: done.tenants_at_admit as u32,
                },
            );
        }
        let Transfer { iter, stage } = done.payload;
        match stage {
            TransferStage::Hbm { gpu } => {
                let contention = self.contention();
                let uvm_ns = contention.gathers[&(iter, gpu)].demand.uvm_ns;
                let uvm_link = contention.uvm_link(gpu);
                self.admit_transfer(
                    uvm_link,
                    uvm_ns,
                    Transfer {
                        iter,
                        stage: TransferStage::Uvm { gpu },
                    },
                );
            }
            TransferStage::Uvm { gpu } => {
                let contention = self.contention_mut();
                let job = contention
                    .gathers
                    .remove(&(iter, gpu))
                    // recshard-lint: allow(unwrap) -- the UVM stage is only
                    // admitted from the HBM stage of the same gather job.
                    .expect("gather completion without a job");
                let wait_ns = job.start.since(job.arrival);
                self.stations[gpu].record_wait_ns(wait_ns);
                if self.obs.enabled() {
                    self.obs.record(
                        job.arrival.as_ns(),
                        TraceEvent::StationEnqueue {
                            gpu: gpu as u32,
                            iter,
                            queue_ns: wait_ns,
                        },
                    );
                    self.obs.record(
                        job.start.as_ns(),
                        TraceEvent::StationService {
                            gpu: gpu as u32,
                            iter,
                            start_ns: job.start.as_ns(),
                            service_ns: now.since(job.start),
                            wait_ns,
                        },
                    );
                }
                self.queue.schedule_at(now, Event::GpuDone { iter, gpu });
            }
            TransferStage::Local { .. } => {
                let contention = self.contention_mut();
                let state = contention
                    .exchanges
                    .get_mut(&iter)
                    // recshard-lint: allow(unwrap) -- local transfers are only
                    // admitted by start_exchange, which registers the entry.
                    .expect("local completion for unknown exchange");
                state.pending -= 1;
                if state.pending == 0 {
                    if contention.topology.num_nodes > 1 {
                        self.start_remote_phase(iter);
                    } else {
                        self.finish_exchange(iter);
                    }
                }
            }
            TransferStage::Remote { .. } => {
                let contention = self.contention_mut();
                let state = contention
                    .exchanges
                    .get_mut(&iter)
                    // recshard-lint: allow(unwrap) -- remote transfers are only
                    // admitted by start_remote_phase for a live exchange.
                    .expect("remote completion for unknown exchange");
                state.pending -= 1;
                if state.pending == 0 {
                    self.finish_exchange(iter);
                }
            }
        }
    }

    fn handle_exchange_done(&mut self, iter: u64) {
        let entry = self
            .in_flight
            .remove(&iter)
            // recshard-lint: allow(unwrap) -- ExchangeDone is scheduled exactly
            // once per in-flight iteration, after its barrier opened.
            .expect("ExchangeDone for unknown iteration");
        let now = self.queue.now();
        let sojourn_ns = now.since(entry.arrival);
        self.sojourn_cdf.push(sojourn_ns as f64 / 1e6);
        self.completed += 1;
        self.obs
            .record(now.as_ns(), TraceEvent::IterationDone { iter, sojourn_ns });

        // Online re-sharding: periodic imbalance check on completed work.
        let Some(controller) = &mut self.controller else {
            return;
        };
        if !controller.check_due(self.completed) {
            return;
        }
        let busy: Vec<u64> = self.stations.iter().map(|s| s.busy_ns()).collect();
        let outcome = controller.check(&busy, self.workload.model(), &self.plan, &self.system);
        match outcome {
            CheckOutcome::Balanced { imbalance } => {
                self.obs.record(
                    now.as_ns(),
                    TraceEvent::ReshardCheck {
                        completed: self.completed,
                        imbalance,
                        resharded: false,
                        moved_tables: 0,
                        migration_ns: 0,
                    },
                );
            }
            CheckOutcome::Reshard {
                imbalance,
                plan,
                profile,
                migration_ns,
            } => {
                if self.obs.enabled() {
                    let moved_tables = plan
                        .placements()
                        .iter()
                        .zip(self.plan.placements())
                        .filter(|(new, old)| new.gpu != old.gpu)
                        .count() as u64;
                    self.obs.record(
                        now.as_ns(),
                        TraceEvent::ReshardCheck {
                            completed: self.completed,
                            imbalance,
                            resharded: true,
                            moved_tables,
                            migration_ns,
                        },
                    );
                }
                for station in &mut self.stations {
                    station.stall(now, migration_ns);
                }
                self.workload.install_plan(&plan, &profile);
                self.tables_per_gpu = self.workload.tables_per_gpu();
                self.plan = plan;
                if let Some(contention) = &mut self.contention {
                    // Shared-rate gathers are not gated by station free
                    // times, so the migration downtime is charged as a
                    // per-GPU start gate instead; exchange volumes follow
                    // the new plan (in-flight transfers keep their old
                    // volumes).
                    let gate = now.after_ns(migration_ns);
                    for stalled in &mut contention.stalled_until {
                        *stalled = (*stalled).max(gate);
                    }
                    contention.rebuild_volumes(&self.plan, &self.config);
                }
            }
        }
    }

    /// Runs the simulation to completion and returns the summary.
    pub fn run(mut self) -> RunSummary {
        self.queue
            .schedule_at(SimTime::ZERO, Event::Arrival { iter: 0 });
        while let Some(scheduled) = self.queue.pop() {
            self.log_event(scheduled.time, scheduled.seq, &scheduled.event);
            match scheduled.event {
                Event::Arrival { iter } => self.handle_arrival(iter),
                Event::GpuDone { iter, .. } => self.handle_gpu_done(iter),
                Event::ExchangeDone { iter } => self.handle_exchange_done(iter),
                Event::GatherStart { iter, gpu } => self.handle_gather_start(iter, gpu),
                Event::LinkUpdate { link, generation } => self.handle_link_update(link, generation),
            }
        }
        assert!(
            self.in_flight.is_empty(),
            "simulation drained with in-flight iterations"
        );
        assert_eq!(
            self.completed, self.config.iterations,
            "not every iteration completed"
        );
        if let Some(contention) = &self.contention {
            assert!(
                contention.gathers.is_empty() && contention.exchanges.is_empty(),
                "simulation drained with in-flight transfers"
            );
            for link in &contention.links {
                assert!(link.is_idle(), "a shared-rate link drained non-idle");
                assert_eq!(
                    link.served_units(),
                    link.admitted_units(),
                    "served work must equal admitted work once a link drains"
                );
            }
        }

        let makespan = self.queue.now();
        self.obs.record(
            makespan.as_ns(),
            TraceEvent::SimulationDone {
                events: self.queue.processed(),
                iterations: self.completed,
            },
        );
        let makespan_ms = makespan.as_ms();
        let mut queue_wait = WelfordAccumulator::new();
        for s in &self.stations {
            queue_wait.merge(s.queue_wait_ms());
        }
        RunSummary {
            strategy: self.strategy.clone(),
            num_gpus: self.stations.len(),
            iterations: self.config.iterations,
            completed: self.completed,
            batch_size: self.config.batch_size,
            makespan_ms,
            throughput_iters_per_s: if makespan.as_secs() > 0.0 {
                self.completed as f64 / makespan.as_secs()
            } else {
                0.0
            },
            p50_ms: self.sojourn_cdf.p50(),
            p95_ms: self.sojourn_cdf.p95(),
            p99_ms: self.sojourn_cdf.p99(),
            iteration_time: self.sojourn_cdf.summary(),
            queue_wait: queue_wait.summary(),
            busy_fraction: self
                .stations
                .iter()
                .map(|s| s.busy_ns() as f64 / makespan.as_ns().max(1) as f64)
                .collect(),
            per_gpu_busy_ms: self
                .stations
                .iter()
                .map(|s| s.busy_ns() as f64 / 1e6)
                .collect(),
            uvm_busy_share: self
                .stations
                .iter()
                .map(|s| {
                    let busy = s.busy_ns();
                    if busy == 0 {
                        0.0
                    } else {
                        s.busy_uvm_ns() as f64 / busy as f64
                    }
                })
                .collect(),
            reshards: self.controller.as_ref().map_or(0, |c| c.reshard_count()),
            events: self.queue.processed(),
            fingerprint: self.fingerprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_sharding::{GreedySharder, SizeCost, TablePlacement};
    use recshard_stats::DatasetProfiler;

    fn setup(gpus: usize) -> (ModelSpec, DatasetProfile, SystemSpec, ShardingPlan) {
        let model = ModelSpec::small(8, 5);
        let profile = DatasetProfiler::profile_model(&model, 1_000, 2);
        let system = SystemSpec::uniform(gpus, u64::MAX / 8, u64::MAX / 8, 1555.0, 16.0);
        let plan = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        (model, profile, system, plan)
    }

    fn config(iterations: u64) -> ClusterConfig {
        ClusterConfig {
            iterations,
            batch_size: 32,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn same_seed_same_summary_and_fingerprint() {
        let (model, profile, system, plan) = setup(4);
        let run = || ClusterSimulator::new(&model, &plan, &profile, &system, config(200)).run();
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical seeds must reproduce the identical summary");
        // A different seed produces a different event log.
        let c = ClusterSimulator::new(
            &model,
            &plan,
            &profile,
            &system,
            ClusterConfig {
                seed: 1,
                ..config(200)
            },
        )
        .run();
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn observed_run_matches_unobserved_and_traces_every_event() {
        let (model, profile, system, plan) = setup(2);
        let plain = ClusterSimulator::new(&model, &plan, &profile, &system, config(50)).run();
        let mut collector = recshard_obs::Collector::new();
        let traced = ClusterSimulator::new(&model, &plan, &profile, &system, config(50))
            .with_obs(&mut collector)
            .run();
        assert_eq!(plain, traced, "observation must not perturb the run");
        let bundle = collector.finish();
        // Per iteration on 2 GPUs: 2×(enqueue + service) + barrier + exchange
        // + iteration-done = 7 records, plus the final simulation summary.
        assert_eq!(bundle.trace.len() as u64, 50 * 7 + 1);
        let iters = bundle
            .metrics
            .entries
            .iter()
            .find(|(n, _)| n == "des.iterations")
            .map(|(_, v)| v.clone());
        assert_eq!(
            iters,
            Some(recshard_obs::MetricValue::Counter(50)),
            "iteration counter must match the run"
        );
    }

    #[test]
    fn all_iterations_complete_and_ordered_percentiles() {
        let (model, profile, system, plan) = setup(2);
        let s = ClusterSimulator::new(&model, &plan, &profile, &system, config(300)).run();
        assert_eq!(s.completed, 300);
        assert!(s.p50_ms > 0.0);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
        assert!(s.iteration_time.min <= s.p50_ms && s.p99_ms <= s.iteration_time.max);
        assert!(s.throughput_iters_per_s > 0.0);
        assert_eq!(s.events, 300 + 300 * 2 + 300);
    }

    #[test]
    fn busy_time_never_exceeds_makespan() {
        let (model, profile, system, plan) = setup(4);
        let s = ClusterSimulator::new(&model, &plan, &profile, &system, config(150)).run();
        for (&busy_ms, &frac) in s.per_gpu_busy_ms.iter().zip(&s.busy_fraction) {
            assert!(busy_ms <= s.makespan_ms + 1e-9);
            assert!((0.0..=1.0).contains(&frac));
        }
    }

    #[test]
    fn saturating_arrivals_build_queues() {
        let (model, profile, system, plan) = setup(2);
        // Arrivals far faster than service: sojourn times must stretch far
        // beyond the unloaded service time and grow monotonically in rank.
        let fast = ClusterConfig {
            arrival: ArrivalProcess::FixedRate {
                interval_ms: 0.0001,
            },
            ..config(300)
        };
        let slow = ClusterConfig {
            arrival: ArrivalProcess::FixedRate { interval_ms: 50.0 },
            ..config(300)
        };
        let loaded = ClusterSimulator::new(&model, &plan, &profile, &system, fast).run();
        let unloaded = ClusterSimulator::new(&model, &plan, &profile, &system, slow).run();
        assert!(
            loaded.p99_ms > unloaded.p99_ms * 5.0,
            "saturation must inflate tail latency ({} vs {})",
            loaded.p99_ms,
            unloaded.p99_ms
        );
        assert!(loaded.queue_wait.max > 0.0);
        assert_eq!(
            unloaded.queue_wait.max, 0.0,
            "unloaded stations never queue"
        );
    }

    #[test]
    fn uvm_heavy_plan_is_slower_and_attributed_to_uvm() {
        let (model, profile, system, _) = setup(2);
        let hbm_plan = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let uvm_placements: Vec<TablePlacement> = model
            .features()
            .iter()
            .map(|f| TablePlacement {
                table: f.id,
                gpu: f.id.index() % 2,
                hbm_rows: 0,
                total_rows: f.hash_size,
                row_bytes: f.row_bytes(),
            })
            .collect();
        let uvm_plan = ShardingPlan::new("all-uvm", 2, uvm_placements);
        let cfg = ClusterConfig {
            arrival: ArrivalProcess::FixedRate { interval_ms: 10.0 },
            // No launch overhead, so busy time is pure tier gather time and
            // the UVM attribution is visible even at a small batch size.
            kernel_overhead_us_per_table: 0.0,
            ..config(100)
        };
        let fast = ClusterSimulator::new(&model, &hbm_plan, &profile, &system, cfg).run();
        let slow = ClusterSimulator::new(&model, &uvm_plan, &profile, &system, cfg).run();
        assert!(
            slow.p50_ms > fast.p50_ms,
            "all-UVM embeddings must be slower ({} vs {})",
            slow.p50_ms,
            fast.p50_ms
        );
        assert!(slow.uvm_busy_share.iter().any(|&x| x > 0.9));
        assert!(fast.uvm_busy_share.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn multi_node_topology_slows_the_exchange() {
        use recshard_sharding::NodeTopology;
        let (model, profile, system, plan) = setup(4);
        let cfg = ClusterConfig {
            arrival: ArrivalProcess::FixedRate { interval_ms: 20.0 },
            ..config(100)
        };
        let flat = ClusterSimulator::new(&model, &plan, &profile, &system, cfg).run();
        let two_level = plan.clone().with_topology(NodeTopology::new(2, 2));
        let hier = ClusterSimulator::new(&model, &two_level, &profile, &system, cfg).run();
        // Half the exchange traffic now crosses the 6x slower inter-node
        // fabric, so unloaded sojourn times must strictly grow.
        assert!(
            hier.p50_ms > flat.p50_ms,
            "inter-node exchange must cost time ({} vs {})",
            hier.p50_ms,
            flat.p50_ms
        );
        // A single-node topology annotation is exactly the flat exchange.
        let single = plan.clone().with_topology(NodeTopology::single(4));
        let same = ClusterSimulator::new(&model, &single, &profile, &system, cfg).run();
        assert_eq!(same.fingerprint, flat.fingerprint);
    }

    #[test]
    fn stationary_scenario_replays_bit_identically() {
        let (model, profile, system, plan) = setup(2);
        let plain = ClusterSimulator::new(&model, &plan, &profile, &system, config(200)).run();
        let scenario = ClusterSimulator::new(&model, &plan, &profile, &system, config(200))
            .with_scenario(ScenarioSpec::stationary())
            .run();
        assert_eq!(
            plain, scenario,
            "a stationary scenario must not perturb the run"
        );
    }

    #[test]
    fn flash_crowd_inflates_tail_latency_and_is_deterministic() {
        let (model, profile, system, plan) = setup(2);
        // Default 1 ms arrivals over 400 iterations ≈ 0.4 s of virtual
        // time; the crowd lands at 50 ms and multiplies QPS by 1000 for
        // 200 ms, far past the stations' service rate.
        let cfg = config(400);
        let stationary = ClusterSimulator::new(&model, &plan, &profile, &system, cfg)
            .with_scenario(ScenarioSpec::stationary())
            .run();
        let flash = || {
            ClusterSimulator::new(&model, &plan, &profile, &system, cfg)
                .with_scenario(ScenarioSpec::flash_crowd(0.05, 0.2, 1000.0))
                .run()
        };
        let a = flash();
        let b = flash();
        assert_eq!(a, b, "scenario runs must be deterministic per seed");
        assert!(
            a.p99_ms > stationary.p99_ms,
            "a flash crowd must inflate tail latency ({} vs {})",
            a.p99_ms,
            stationary.p99_ms
        );
        assert_ne!(a.fingerprint, stationary.fingerprint);
    }

    #[test]
    fn observed_scenario_run_matches_unobserved_and_emits_phase_events() {
        let (model, profile, system, plan) = setup(2);
        // 2x QPS between 50 ms and 100 ms: both boundaries (onset + end)
        // fall well inside the run's ~0.3 s of virtual time.
        let spec = ScenarioSpec::flash_crowd(0.05, 0.05, 2.0);
        let cfg = config(300);
        let plain = ClusterSimulator::new(&model, &plan, &profile, &system, cfg)
            .with_scenario(spec.clone())
            .run();
        let mut collector = recshard_obs::Collector::new();
        let traced = ClusterSimulator::new(&model, &plan, &profile, &system, cfg)
            .with_scenario(spec)
            .with_obs(&mut collector)
            .run();
        assert_eq!(plain, traced, "observation must not perturb a scenario run");
        let bundle = collector.finish();
        let phase_events: Vec<_> = bundle
            .trace
            .records()
            .iter()
            .filter(|r| r.event.name() == "scenario_phase")
            .collect();
        assert_eq!(
            phase_events.len(),
            2,
            "crowd onset and end must each record a phase change"
        );
        let phases = bundle
            .metrics
            .entries
            .iter()
            .find(|(n, _)| n == "scenario.phases")
            .map(|(_, v)| v.clone());
        assert_eq!(phases, Some(recshard_obs::MetricValue::Counter(2)));
    }

    #[test]
    fn drift_storm_scenario_triggers_a_reshard() {
        use crate::controller::{ReshardController, ReshardPolicy};
        use recshard_sharding::LookupCost;
        let (model, profile, system, _) = setup(2);
        // A class-split plan (user tables on GPU 0, content on GPU 1, all
        // HBM-resident): balanced enough under the original statistics, but
        // three compounding drift waves (user pooling ×1.4 each, content
        // ×0.7) pile all the extra gather work onto GPU 0.
        let placements: Vec<TablePlacement> = model
            .features()
            .iter()
            .map(|f| TablePlacement {
                table: f.id,
                gpu: f.id.index() % 2,
                hbm_rows: f.hash_size,
                total_rows: f.hash_size,
                row_bytes: f.row_bytes(),
            })
            .collect();
        let plan = ShardingPlan::new("class-split", 2, placements);
        let spec = ScenarioSpec::drift_storm(0.05, 0.05, 3);
        let run = |scenario: Option<ScenarioSpec>| {
            let policy = ReshardPolicy {
                check_every_iterations: 100,
                ..ReshardPolicy::default()
            };
            let solver: Box<crate::controller::PlanSolver> =
                Box::new(|m, p, s, _prev| GreedySharder::new(LookupCost).shard(m, p, s).ok());
            // No launch overhead: busy time is pure gather time, so the
            // imbalance signal reflects the (drifting) lookup volumes and
            // not the constant per-table kernel cost.
            let cfg = ClusterConfig {
                kernel_overhead_us_per_table: 0.0,
                ..config(600)
            };
            let mut sim = ClusterSimulator::new(&model, &plan, &profile, &system, cfg)
                .with_controller(ReshardController::new(policy, solver));
            if let Some(spec) = scenario {
                sim = sim.with_scenario(spec);
            }
            sim.run()
        };
        let stormed = run(Some(spec));
        assert!(
            stormed.reshards >= 1,
            "a sustained drift storm must trip the re-sharding controller \
             (got {} reshards)",
            stormed.reshards
        );
        // Causality: the same plan under the unshifted workload stays put.
        let calm = run(None);
        assert_eq!(
            calm.reshards, 0,
            "without the storm the controller must not fire"
        );
    }

    #[test]
    fn poisson_arrivals_are_deterministic_per_seed() {
        let (model, profile, system, plan) = setup(2);
        let cfg = ClusterConfig {
            arrival: ArrivalProcess::Poisson {
                mean_interval_ms: 2.0,
            },
            ..config(200)
        };
        let a = ClusterSimulator::new(&model, &plan, &profile, &system, cfg).run();
        let b = ClusterSimulator::new(&model, &plan, &profile, &system, cfg).run();
        assert_eq!(a, b);
    }
}
