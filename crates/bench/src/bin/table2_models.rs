//! Table 2: specifications of the three reference DLRMs.

#![allow(clippy::print_stdout)]
use recshard_bench::fmt_count;
use recshard_data::{ModelSpec, RmKind};

fn main() {
    println!("# Table 2: DLRM specifications");
    println!("| model | # sparse features | total hash size | emb. dim | size (GB) |");
    println!("|-------|-------------------|-----------------|----------|-----------|");
    for kind in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
        let m = ModelSpec::reference(kind);
        println!(
            "| {} | {} | {} | {} | {:.0} |",
            kind,
            m.num_features(),
            fmt_count(m.total_hash_size() as f64),
            m.features()[0].embedding_dim,
            m.total_bytes() as f64 / 1e9
        );
    }
    println!();
    println!(
        "Paper values: RM1 = 1,331,656,544 rows / 318 GB, RM2 = 2,661,369,917 / 635 GB, \
         RM3 = 5,320,796,628 / 1270 GB, all with 397 features and dimension 64."
    );
}
