//! Property-based tests for the statistics stack: frequency maps, access
//! CDFs and their piece-wise linear inverses.

use proptest::prelude::*;
use recshard_stats::{AccessCdf, FrequencyMap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Total accesses and distinct-row counts are conserved by construction.
    #[test]
    fn frequency_map_conserves_counts(rows in prop::collection::vec(0u64..500, 1..400)) {
        let map: FrequencyMap = rows.iter().copied().collect();
        prop_assert_eq!(map.total_accesses(), rows.len() as u64);
        let distinct: std::collections::HashSet<_> = rows.iter().collect();
        prop_assert_eq!(map.distinct_rows(), distinct.len() as u64);
        let summed: u64 = map.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(summed, rows.len() as u64);
    }

    /// The ranked-row ordering is a permutation of the accessed rows with
    /// non-increasing counts.
    #[test]
    fn ranked_rows_are_sorted_by_count(rows in prop::collection::vec(0u64..100, 1..300)) {
        let map: FrequencyMap = rows.iter().copied().collect();
        let ranked = map.ranked_rows();
        prop_assert_eq!(ranked.len() as u64, map.distinct_rows());
        for w in ranked.windows(2) {
            prop_assert!(map.count(w[0]) >= map.count(w[1]));
        }
    }

    /// The CDF is monotone, bounded by [0, 1], and reaches exactly 1 at the
    /// number of ranked rows.
    #[test]
    fn cdf_is_monotone_and_normalised(rows in prop::collection::vec(0u64..200, 1..500)) {
        let map: FrequencyMap = rows.iter().copied().collect();
        let cdf = AccessCdf::from_frequency(&map);
        let mut prev = 0.0;
        for k in 0..=cdf.rows_ranked() {
            let f = cdf.access_fraction(k);
            prop_assert!(f >= prev - 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
            prev = f;
        }
        prop_assert!((cdf.access_fraction(cdf.rows_ranked()) - 1.0).abs() < 1e-12);
    }

    /// The ICDF inverts the CDF: the rows it reports for a fraction always
    /// cover at least that fraction, and one fewer row never does.
    #[test]
    fn icdf_inverts_cdf(
        rows in prop::collection::vec(0u64..200, 1..500),
        pct in 0.0f64..1.0,
    ) {
        let map: FrequencyMap = rows.iter().copied().collect();
        let cdf = AccessCdf::from_frequency(&map);
        let needed = cdf.rows_for_access_fraction(pct);
        prop_assert!(cdf.access_fraction(needed) + 1e-12 >= pct);
        if needed > 0 {
            prop_assert!(cdf.access_fraction(needed - 1) < pct + 1e-12);
        }
    }

    /// The 100-step ICDF is monotone in the step index and tops out at the
    /// number of accessed rows.
    #[test]
    fn icdf_steps_monotone(rows in prop::collection::vec(0u64..300, 1..400)) {
        let map: FrequencyMap = rows.iter().copied().collect();
        let cdf = AccessCdf::from_frequency(&map);
        let icdf = cdf.icdf(100);
        let mut prev = 0;
        for i in 0..=100 {
            let r = icdf.rows_at_step(i);
            prop_assert!(r >= prev);
            prev = r;
        }
        prop_assert_eq!(icdf.max_rows(), cdf.rows_ranked());
    }
}

/// Edge cases of the CDF knee used by the serving cache's stat-guided
/// pinning: single-row tables, uniform CDFs with no knee, and degenerate
/// all-zero / never-accessed profiles.
mod knee_rank_edge_cases {
    use recshard_stats::{AccessCdf, FrequencyMap};

    #[test]
    fn single_row_table_knees_at_its_only_row() {
        let mut f = FrequencyMap::new();
        f.record_n(0, 1);
        let knee = AccessCdf::from_frequency(&f).knee_rank();
        assert_eq!(knee, 1, "the only accessed row is the whole head");

        // Heavier traffic on the same single row changes nothing.
        let mut f = FrequencyMap::new();
        f.record_n(0, 1_000_000);
        assert_eq!(AccessCdf::from_frequency(&f).knee_rank(), 1);
    }

    #[test]
    fn uniform_cdf_has_no_knee_and_pins_almost_nothing() {
        for rows in [2u64, 10, 1_000] {
            let mut f = FrequencyMap::new();
            for r in 0..rows {
                f.record_n(r, 7);
            }
            let cdf = AccessCdf::from_frequency(&f);
            let knee = cdf.knee_rank();
            // A perfectly uniform curve sits on the diagonal: the degenerate
            // maximum lands on the first rank, so a stat-guided cache pins
            // (at most) one row.
            assert!(
                knee <= 1,
                "uniform CDF over {rows} rows produced knee {knee}"
            );
        }
    }

    #[test]
    fn all_zero_and_empty_profiles_knee_at_zero() {
        assert_eq!(AccessCdf::empty().knee_rank(), 0);
        // A frequency map that recorded nothing behaves like empty.
        let f = FrequencyMap::new();
        assert_eq!(AccessCdf::from_frequency(&f).knee_rank(), 0);
        // Ranked counts that are all zero carry zero total accesses.
        let cdf = AccessCdf::from_ranked_counts(&[0, 0, 0]);
        assert_eq!(cdf.total_accesses(), 0);
        assert_eq!(cdf.knee_rank(), 0);
    }

    #[test]
    fn knee_is_within_ranked_rows_and_covers_the_head() {
        // A two-tier distribution: the knee must sit at the head/tail
        // boundary and cover the head's share of accesses.
        let mut f = FrequencyMap::new();
        for r in 0..10u64 {
            f.record_n(r, 100);
        }
        for r in 10..1_000u64 {
            f.record_n(r, 1);
        }
        let cdf = AccessCdf::from_frequency(&f);
        let knee = cdf.knee_rank();
        assert!(knee >= 1 && knee <= cdf.rows_ranked());
        assert_eq!(knee, 10, "knee must sit exactly at the head/tail boundary");
        assert!(cdf.access_fraction(knee) > 0.5);
    }
}
