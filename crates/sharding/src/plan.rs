//! Sharding plans: per-table GPU assignment and HBM/UVM row split.

use crate::error::ShardingError;
use crate::system::SystemSpec;
use crate::topology::NodeTopology;
use recshard_data::{FeatureId, ModelSpec};
use serde::{Deserialize, Serialize};

/// The memory tier a row lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryTier {
    /// GPU high-bandwidth memory.
    Hbm,
    /// Host DRAM reached through unified virtual memory.
    Uvm,
}

impl std::fmt::Display for MemoryTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryTier::Hbm => write!(f, "HBM"),
            MemoryTier::Uvm => write!(f, "UVM"),
        }
    }
}

/// Placement decision for one embedding table: the GPU that owns it and how
/// many of its hottest rows are resident in that GPU's HBM (the remaining
/// `total_rows - hbm_rows` rows live in UVM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TablePlacement {
    /// The table being placed.
    pub table: FeatureId,
    /// Owning GPU (all accesses to the table are issued by this GPU).
    pub gpu: usize,
    /// Number of the table's hottest rows resident in HBM.
    pub hbm_rows: u64,
    /// Total rows of the table (its hash size).
    pub total_rows: u64,
    /// Bytes per row.
    pub row_bytes: u64,
}

impl TablePlacement {
    /// Rows resident in UVM.
    pub fn uvm_rows(&self) -> u64 {
        self.total_rows - self.hbm_rows
    }

    /// Fraction of the table's rows placed in UVM (Figure 12's y-axis).
    pub fn uvm_fraction(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.uvm_rows() as f64 / self.total_rows as f64
        }
    }

    /// Bytes of the table resident in HBM.
    pub fn hbm_bytes(&self) -> u64 {
        self.hbm_rows * self.row_bytes
    }

    /// Bytes of the table resident in UVM.
    pub fn uvm_bytes(&self) -> u64 {
        self.uvm_rows() * self.row_bytes
    }
}

/// A complete sharding plan: one [`TablePlacement`] per embedding table,
/// optionally annotated with the node grid it was solved against
/// (two-level plans; see [`ShardingPlan::with_topology`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardingPlan {
    strategy: String,
    num_gpus: usize,
    placements: Vec<TablePlacement>,
    topology: Option<NodeTopology>,
}

impl ShardingPlan {
    /// Builds a plan from per-table placements (ordered by dense feature id).
    ///
    /// # Panics
    ///
    /// Panics if the placements are not ordered by dense feature id.
    pub fn new(
        strategy: impl Into<String>,
        num_gpus: usize,
        placements: Vec<TablePlacement>,
    ) -> Self {
        for (i, p) in placements.iter().enumerate() {
            assert_eq!(
                p.table.index(),
                i,
                "placements must be ordered by dense feature id"
            );
        }
        Self {
            strategy: strategy.into(),
            num_gpus,
            placements,
            topology: None,
        }
    }

    /// Annotates the plan with the node grid it targets, turning it into a
    /// two-level (hierarchical) plan. Global GPU ids are node-major: GPU `g`
    /// lives on node `g / gpus_per_node`.
    ///
    /// # Panics
    ///
    /// Panics if the topology's GPU count differs from the plan's.
    pub fn with_topology(mut self, topology: NodeTopology) -> Self {
        assert_eq!(
            topology.num_gpus(),
            self.num_gpus,
            "topology covers {} GPUs but the plan has {}",
            topology.num_gpus(),
            self.num_gpus
        );
        self.topology = Some(topology);
        self
    }

    /// The node grid of a two-level plan, `None` for flat single-host plans.
    pub fn topology(&self) -> Option<NodeTopology> {
        self.topology
    }

    /// The node grid, defaulting to a single node spanning every GPU.
    pub fn effective_topology(&self) -> NodeTopology {
        self.topology
            .unwrap_or_else(|| NodeTopology::single(self.num_gpus))
    }

    /// Per-table owning node, indexed by dense feature id (all zeros for a
    /// flat plan).
    pub fn node_assignments(&self) -> Vec<usize> {
        let topology = self.effective_topology();
        self.placements
            .iter()
            .map(|p| topology.node_of_gpu(p.gpu))
            .collect()
    }

    /// Tables owned by GPUs of the given node.
    pub fn tables_on_node(&self, node: usize) -> Vec<FeatureId> {
        let topology = self.effective_topology();
        self.placements
            .iter()
            .filter(|p| topology.node_of_gpu(p.gpu) == node)
            .map(|p| p.table)
            .collect()
    }

    /// HBM bytes used on each node (summed over its GPUs).
    pub fn hbm_bytes_per_node(&self) -> Vec<u64> {
        let topology = self.effective_topology();
        let mut usage = vec![0u64; topology.num_nodes];
        for p in &self.placements {
            usage[topology.node_of_gpu(p.gpu)] += p.hbm_bytes();
        }
        usage
    }

    /// UVM bytes used on behalf of each node.
    pub fn uvm_bytes_per_node(&self) -> Vec<u64> {
        let topology = self.effective_topology();
        let mut usage = vec![0u64; topology.num_nodes];
        for p in &self.placements {
            usage[topology.node_of_gpu(p.gpu)] += p.uvm_bytes();
        }
        usage
    }

    /// Strips the node annotation, yielding the equivalent flat single-level
    /// plan (placements are untouched — global GPU ids already encode the
    /// node-major layout).
    pub fn flatten(&self) -> ShardingPlan {
        ShardingPlan {
            strategy: self.strategy.clone(),
            num_gpus: self.num_gpus,
            placements: self.placements.clone(),
            topology: None,
        }
    }

    /// Name of the strategy that produced the plan (e.g. `"size"`,
    /// `"recshard"`).
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// Number of GPUs the plan shards across.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Per-table placements, ordered by feature id.
    pub fn placements(&self) -> &[TablePlacement] {
        &self.placements
    }

    /// The placement of a specific table.
    pub fn placement(&self, table: FeatureId) -> &TablePlacement {
        &self.placements[table.index()]
    }

    /// Per-table owning GPU, indexed by dense feature id — the routing table
    /// shared by the trace samplers, the cluster simulator and the online
    /// serving layer.
    pub fn gpu_assignments(&self) -> Vec<usize> {
        self.placements.iter().map(|p| p.gpu).collect()
    }

    /// Tables assigned to the given GPU.
    pub fn tables_on_gpu(&self, gpu: usize) -> Vec<FeatureId> {
        self.placements
            .iter()
            .filter(|p| p.gpu == gpu)
            .map(|p| p.table)
            .collect()
    }

    /// HBM bytes used on each GPU.
    pub fn hbm_bytes_per_gpu(&self) -> Vec<u64> {
        let mut usage = vec![0u64; self.num_gpus];
        for p in &self.placements {
            usage[p.gpu] += p.hbm_bytes();
        }
        usage
    }

    /// UVM (host DRAM) bytes used on behalf of each GPU.
    pub fn uvm_bytes_per_gpu(&self) -> Vec<u64> {
        let mut usage = vec![0u64; self.num_gpus];
        for p in &self.placements {
            usage[p.gpu] += p.uvm_bytes();
        }
        usage
    }

    /// Total rows placed in HBM across all tables.
    pub fn total_hbm_rows(&self) -> u64 {
        self.placements.iter().map(|p| p.hbm_rows).sum()
    }

    /// Total rows placed in UVM across all tables.
    pub fn total_uvm_rows(&self) -> u64 {
        self.placements.iter().map(|p| p.uvm_rows()).sum()
    }

    /// Fraction of all rows placed in UVM.
    pub fn uvm_row_fraction(&self) -> f64 {
        let total: u64 = self.placements.iter().map(|p| p.total_rows).sum();
        if total == 0 {
            0.0
        } else {
            self.total_uvm_rows() as f64 / total as f64
        }
    }

    /// Mean over tables of the per-table UVM row fraction (the paper reports
    /// "average % of rows per EMB placed on UVM").
    pub fn mean_table_uvm_fraction(&self) -> f64 {
        if self.placements.is_empty() {
            return 0.0;
        }
        self.placements
            .iter()
            .map(|p| p.uvm_fraction())
            .sum::<f64>()
            / self.placements.len() as f64
    }

    /// Validates the plan against a model and system: every table placed
    /// exactly once on a valid GPU with consistent row counts, and no GPU
    /// exceeding *its own* HBM or DRAM capacity — on a heterogeneous
    /// cluster each GPU is checked against its device class's limits, so a
    /// plan that overflows only the small-GPU class is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`ShardingError::InvalidPlan`] describing the first violation.
    pub fn validate(&self, model: &ModelSpec, system: &SystemSpec) -> Result<(), ShardingError> {
        if self.num_gpus != system.num_gpus() {
            return Err(ShardingError::InvalidPlan(format!(
                "plan is for {} GPUs but the system has {}",
                self.num_gpus,
                system.num_gpus()
            )));
        }
        if self.placements.len() != model.num_features() {
            return Err(ShardingError::InvalidPlan(format!(
                "plan places {} tables but the model has {}",
                self.placements.len(),
                model.num_features()
            )));
        }
        if let Some(topology) = self.topology {
            if topology.num_gpus() != self.num_gpus {
                return Err(ShardingError::InvalidPlan(format!(
                    "topology covers {} GPUs but the plan has {}",
                    topology.num_gpus(),
                    self.num_gpus
                )));
            }
        }
        for p in &self.placements {
            let spec = model.feature(p.table);
            if p.gpu >= self.num_gpus {
                return Err(ShardingError::InvalidPlan(format!(
                    "table {} assigned to out-of-range GPU {}",
                    p.table, p.gpu
                )));
            }
            if p.total_rows != spec.hash_size {
                return Err(ShardingError::InvalidPlan(format!(
                    "table {} has {} rows in the plan but {} in the model",
                    p.table, p.total_rows, spec.hash_size
                )));
            }
            if p.hbm_rows > p.total_rows {
                return Err(ShardingError::InvalidPlan(format!(
                    "table {} places {} rows in HBM but only has {}",
                    p.table, p.hbm_rows, p.total_rows
                )));
            }
            if p.row_bytes != spec.row_bytes() {
                return Err(ShardingError::InvalidPlan(format!(
                    "table {} row width mismatch ({} vs {})",
                    p.table,
                    p.row_bytes,
                    spec.row_bytes()
                )));
            }
        }
        for (gpu, &bytes) in self.hbm_bytes_per_gpu().iter().enumerate() {
            if bytes > system.hbm_capacity(gpu) {
                return Err(ShardingError::InvalidPlan(format!(
                    "GPU {gpu} HBM usage {bytes} exceeds its capacity {}",
                    system.hbm_capacity(gpu)
                )));
            }
        }
        for (gpu, &bytes) in self.uvm_bytes_per_gpu().iter().enumerate() {
            if bytes > system.dram_capacity(gpu) {
                return Err(ShardingError::InvalidPlan(format!(
                    "GPU {gpu} UVM usage {bytes} exceeds its capacity {}",
                    system.dram_capacity(gpu)
                )));
            }
        }
        Ok(())
    }

    /// Compares two plans table-by-table and reports placement disparity as
    /// in Table 4 of the paper: the fraction of rows `other` put in UVM that
    /// `self` puts in HBM, and vice versa.
    ///
    /// Returns `(uvm_to_hbm, hbm_to_uvm)` fractions in `[0, 1]`.
    pub fn placement_disparity(&self, other: &ShardingPlan) -> (f64, f64) {
        let mut other_uvm_rows = 0u64;
        let mut other_uvm_now_hbm = 0u64;
        let mut other_hbm_rows = 0u64;
        let mut other_hbm_now_uvm = 0u64;
        for (a, b) in self.placements.iter().zip(other.placements()) {
            debug_assert_eq!(a.table, b.table);
            // Rows are ranked hottest-first in both plans, so the comparison
            // reduces to comparing split points.
            other_uvm_rows += b.uvm_rows();
            other_hbm_rows += b.hbm_rows;
            if a.hbm_rows > b.hbm_rows {
                other_uvm_now_hbm += a.hbm_rows - b.hbm_rows;
            } else {
                other_hbm_now_uvm += b.hbm_rows - a.hbm_rows;
            }
        }
        let uvm_to_hbm = if other_uvm_rows == 0 {
            0.0
        } else {
            other_uvm_now_hbm as f64 / other_uvm_rows as f64
        };
        let hbm_to_uvm = if other_hbm_rows == 0 {
            0.0
        } else {
            other_hbm_now_uvm as f64 / other_hbm_rows as f64
        };
        (uvm_to_hbm, hbm_to_uvm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::ModelSpec;

    fn full_hbm_plan(model: &ModelSpec, num_gpus: usize) -> ShardingPlan {
        let placements = model
            .features()
            .iter()
            .enumerate()
            .map(|(i, f)| TablePlacement {
                table: f.id,
                gpu: i % num_gpus,
                hbm_rows: f.hash_size,
                total_rows: f.hash_size,
                row_bytes: f.row_bytes(),
            })
            .collect();
        ShardingPlan::new("test", num_gpus, placements)
    }

    #[test]
    fn accessors_and_usage() {
        let model = ModelSpec::small(6, 1);
        let plan = full_hbm_plan(&model, 2);
        assert_eq!(plan.num_gpus(), 2);
        assert_eq!(plan.placements().len(), 6);
        assert_eq!(plan.total_uvm_rows(), 0);
        assert_eq!(plan.uvm_row_fraction(), 0.0);
        let hbm = plan.hbm_bytes_per_gpu();
        assert_eq!(hbm.len(), 2);
        assert_eq!(hbm.iter().sum::<u64>(), model.total_bytes());
        assert_eq!(plan.tables_on_gpu(0).len() + plan.tables_on_gpu(1).len(), 6);
        let gpu_of = plan.gpu_assignments();
        assert_eq!(gpu_of.len(), 6);
        for (i, p) in plan.placements().iter().enumerate() {
            assert_eq!(gpu_of[i], p.gpu);
        }
    }

    #[test]
    fn validation_accepts_good_plan() {
        let model = ModelSpec::small(5, 2);
        let plan = full_hbm_plan(&model, 2);
        let system = SystemSpec::uniform(2, model.total_bytes(), model.total_bytes(), 100.0, 1.0);
        assert!(plan.validate(&model, &system).is_ok());
    }

    #[test]
    fn validation_rejects_capacity_violation() {
        let model = ModelSpec::small(5, 2);
        let plan = full_hbm_plan(&model, 2);
        let tiny = SystemSpec::uniform(2, 16, 16, 100.0, 1.0);
        assert!(matches!(
            plan.validate(&model, &tiny),
            Err(ShardingError::InvalidPlan(_))
        ));
    }

    #[test]
    fn validation_checks_against_owning_gpu_capacity() {
        use crate::system::DeviceClass;
        let model = ModelSpec::small(4, 2);
        // GPU 0 is big enough for everything; GPU 1 holds almost nothing.
        let big = DeviceClass::new("big", model.total_bytes(), model.total_bytes(), 100.0, 1.0);
        let small = DeviceClass::new("small", 16, model.total_bytes(), 100.0, 1.0);
        let system = SystemSpec::with_classes(vec![big, small], vec![0, 1]);

        // A plan keeping every table on GPU 0 is fine...
        let on_big = ShardingPlan::new(
            "big-only",
            2,
            model
                .features()
                .iter()
                .map(|f| TablePlacement {
                    table: f.id,
                    gpu: 0,
                    hbm_rows: f.hash_size,
                    total_rows: f.hash_size,
                    row_bytes: f.row_bytes(),
                })
                .collect(),
        );
        on_big.validate(&model, &system).unwrap();

        // ...but the identical byte load overflows only the small class.
        let on_small = ShardingPlan::new(
            "small-only",
            2,
            model
                .features()
                .iter()
                .map(|f| TablePlacement {
                    table: f.id,
                    gpu: 1,
                    hbm_rows: f.hash_size,
                    total_rows: f.hash_size,
                    row_bytes: f.row_bytes(),
                })
                .collect(),
        );
        match on_small.validate(&model, &system) {
            Err(ShardingError::InvalidPlan(msg)) => {
                assert!(
                    msg.contains("GPU 1"),
                    "violation must name the small GPU: {msg}"
                );
            }
            other => panic!("small-class overflow must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn validation_rejects_row_mismatch() {
        let model = ModelSpec::small(3, 2);
        let mut plan = full_hbm_plan(&model, 2);
        plan.placements[1].total_rows += 5;
        let system = SystemSpec::uniform(2, u64::MAX / 4, u64::MAX / 4, 100.0, 1.0);
        assert!(plan.validate(&model, &system).is_err());
    }

    #[test]
    fn validation_rejects_wrong_gpu_count() {
        let model = ModelSpec::small(3, 2);
        let plan = full_hbm_plan(&model, 2);
        let system = SystemSpec::uniform(4, u64::MAX / 8, u64::MAX / 8, 100.0, 1.0);
        assert!(plan.validate(&model, &system).is_err());
    }

    #[test]
    fn uvm_fraction_math() {
        let p = TablePlacement {
            table: FeatureId(0),
            gpu: 0,
            hbm_rows: 25,
            total_rows: 100,
            row_bytes: 8,
        };
        assert_eq!(p.uvm_rows(), 75);
        assert!((p.uvm_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(p.hbm_bytes(), 200);
        assert_eq!(p.uvm_bytes(), 600);
    }

    #[test]
    fn disparity_between_plans() {
        let model = ModelSpec::small(2, 3);
        let f0 = &model.features()[0];
        let f1 = &model.features()[1];
        let mk = |h0: u64, h1: u64| {
            ShardingPlan::new(
                "x",
                1,
                vec![
                    TablePlacement {
                        table: f0.id,
                        gpu: 0,
                        hbm_rows: h0,
                        total_rows: f0.hash_size,
                        row_bytes: f0.row_bytes(),
                    },
                    TablePlacement {
                        table: f1.id,
                        gpu: 0,
                        hbm_rows: h1,
                        total_rows: f1.hash_size,
                        row_bytes: f1.row_bytes(),
                    },
                ],
            )
        };
        let a = mk(f0.hash_size, 0);
        let b = mk(0, f1.hash_size);
        let (uvm_to_hbm, hbm_to_uvm) = a.placement_disparity(&b);
        // Everything b put in UVM (table 0), a puts in HBM; everything b put
        // in HBM (table 1), a puts in UVM.
        assert!((uvm_to_hbm - 1.0).abs() < 1e-12);
        assert!((hbm_to_uvm - 1.0).abs() < 1e-12);
        let (same_a, same_b) = a.placement_disparity(&a);
        assert_eq!(same_a, 0.0);
        assert_eq!(same_b, 0.0);
    }

    #[test]
    #[should_panic(expected = "placements must be ordered by dense feature id")]
    fn unordered_placements_rejected() {
        let model = ModelSpec::small(2, 3);
        let f0 = &model.features()[0];
        let f1 = &model.features()[1];
        let _ = ShardingPlan::new(
            "bad",
            1,
            vec![
                TablePlacement {
                    table: f1.id,
                    gpu: 0,
                    hbm_rows: 0,
                    total_rows: f1.hash_size,
                    row_bytes: f1.row_bytes(),
                },
                TablePlacement {
                    table: f0.id,
                    gpu: 0,
                    hbm_rows: 0,
                    total_rows: f0.hash_size,
                    row_bytes: f0.row_bytes(),
                },
            ],
        );
    }
}
