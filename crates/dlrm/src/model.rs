//! The full DLRM: bottom MLP, embedding bags, feature interaction, top MLP.

use crate::embedding::EmbeddingBag;
use crate::interaction::{dot_interaction, interaction_output_dim};
use crate::mlp::Mlp;
use rand::SeedableRng;
use recshard_data::{ModelSpec, SparseSample};
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters of a DLRM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DlrmConfig {
    /// Number of dense (continuous) input features.
    pub dense_dim: usize,
    /// Bottom-MLP hidden layer sizes; the last entry must equal the embedding
    /// dimension so the interaction layer can combine them.
    pub bottom_layers: Vec<usize>,
    /// Top-MLP hidden layer sizes; the last entry must be 1 (the CTR logit).
    pub top_layers: Vec<usize>,
}

impl DlrmConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if either MLP stack is empty or the top stack does not end in a
    /// single output unit.
    pub fn new(dense_dim: usize, bottom_layers: Vec<usize>, top_layers: Vec<usize>) -> Self {
        assert!(dense_dim > 0, "dense input dimension must be non-zero");
        assert!(
            !bottom_layers.is_empty(),
            "bottom MLP needs at least one layer"
        );
        assert!(
            top_layers.last() == Some(&1),
            "top MLP must end in a single CTR output unit"
        );
        Self {
            dense_dim,
            bottom_layers,
            top_layers,
        }
    }
}

/// A trainable DLRM instance over a (scaled-down) [`ModelSpec`].
#[derive(Debug, Clone)]
pub struct DlrmModel {
    config: DlrmConfig,
    bottom: Mlp,
    top: Mlp,
    embeddings: Vec<EmbeddingBag>,
}

impl DlrmModel {
    /// Builds a DLRM whose embedding tables follow `spec` (one bag per sparse
    /// feature).
    ///
    /// # Panics
    ///
    /// Panics if the bottom MLP's output dimension differs from the model's
    /// embedding dimension, or if the spec's tables are too large to
    /// materialise (scale the spec down first).
    pub fn new(spec: &ModelSpec, config: &DlrmConfig, seed: u64) -> Self {
        let emb_dim = spec
            .features()
            .first()
            .map(|f| f.embedding_dim as usize)
            .unwrap_or(0);
        assert!(
            spec.features()
                .iter()
                .all(|f| f.embedding_dim as usize == emb_dim),
            "all tables must share one embedding dimension"
        );
        assert_eq!(
            *config.bottom_layers.last().expect("non-empty"),
            emb_dim,
            "bottom MLP output must match the embedding dimension"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut bottom_sizes = vec![config.dense_dim];
        bottom_sizes.extend(&config.bottom_layers);
        let bottom = Mlp::new(&bottom_sizes, &mut rng);

        let interaction_dim = interaction_output_dim(emb_dim, spec.num_features());
        let mut top_sizes = vec![interaction_dim];
        top_sizes.extend(&config.top_layers);
        let top = Mlp::new(&top_sizes, &mut rng);

        let embeddings = spec
            .features()
            .iter()
            .map(|f| EmbeddingBag::new(f, &mut rng))
            .collect();
        Self {
            config: config.clone(),
            bottom,
            top,
            embeddings,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &DlrmConfig {
        &self.config
    }

    /// Number of embedding tables.
    pub fn num_tables(&self) -> usize {
        self.embeddings.len()
    }

    /// Predicted click-through-rate for one sample (forward pass only).
    pub fn predict(&self, dense: &[f32], sparse: &SparseSample) -> f32 {
        let (bottom_out, _) = self.bottom.forward(dense);
        let pooled: Vec<Vec<f32>> = self
            .embeddings
            .iter()
            .enumerate()
            .map(|(t, bag)| bag.lookup(&sparse.values[t]))
            .collect();
        let interacted = dot_interaction(&bottom_out, &pooled);
        let (logit, _) = self.top.forward(&interacted);
        sigmoid(logit[0])
    }

    /// One SGD training step over a batch; returns the mean binary
    /// cross-entropy loss.
    ///
    /// # Panics
    ///
    /// Panics if the batch slices have different lengths.
    pub fn train_step(
        &mut self,
        dense_batch: &[Vec<f32>],
        sparse_batch: &[SparseSample],
        labels: &[f32],
        learning_rate: f32,
    ) -> f32 {
        assert_eq!(
            dense_batch.len(),
            sparse_batch.len(),
            "batch length mismatch"
        );
        assert_eq!(dense_batch.len(), labels.len(), "batch length mismatch");
        assert!(!dense_batch.is_empty(), "batch must not be empty");
        let mut total_loss = 0.0f32;
        let emb_dim = self
            .config
            .bottom_layers
            .last()
            .copied()
            .expect("non-empty");

        for ((dense, sparse), &label) in dense_batch.iter().zip(sparse_batch).zip(labels) {
            // ---- forward ----
            let (bottom_out, bottom_acts) = self.bottom.forward(dense);
            let pooled: Vec<Vec<f32>> = self
                .embeddings
                .iter()
                .enumerate()
                .map(|(t, bag)| bag.lookup(&sparse.values[t]))
                .collect();
            let interacted = dot_interaction(&bottom_out, &pooled);
            let (logit, top_acts) = self.top.forward(&interacted);
            let pred = sigmoid(logit[0]);
            total_loss += bce_loss(pred, label);

            // ---- backward ----
            // dL/dlogit for sigmoid + BCE.
            let dlogit = pred - label;
            let interaction_grad = self.top.backward(&top_acts, &[dlogit], learning_rate);

            // Back-prop through the dot interaction.
            let n = pooled.len() + 1;
            let mut all: Vec<&[f32]> = Vec::with_capacity(n);
            all.push(&bottom_out);
            for e in &pooled {
                all.push(e);
            }
            let mut grads: Vec<Vec<f32>> = vec![vec![0.0; emb_dim]; n];
            // The first emb_dim entries of the interaction output are the
            // bottom-MLP output passed through unchanged.
            grads[0].copy_from_slice(&interaction_grad[..emb_dim]);
            let mut k = emb_dim;
            for i in 0..n {
                for j in (i + 1)..n {
                    let g = interaction_grad[k];
                    for t in 0..emb_dim {
                        grads[i][t] += g * all[j][t];
                        grads[j][t] += g * all[i][t];
                    }
                    k += 1;
                }
            }

            self.bottom.backward(&bottom_acts, &grads[0], learning_rate);
            for (t, bag) in self.embeddings.iter_mut().enumerate() {
                if !sparse.values[t].is_empty() {
                    bag.sgd_update(&sparse.values[t], &grads[t + 1], learning_rate);
                }
            }
        }
        total_loss / dense_batch.len() as f32
    }
}

/// Numerically stable sigmoid.
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy loss with clamping for numerical safety.
fn bce_loss(pred: f32, label: f32) -> f32 {
    let p = pred.clamp(1e-7, 1.0 - 1e-7);
    -(label * p.ln() + (1.0 - label) * (1.0 - p).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::SampleGenerator;

    fn setup() -> (ModelSpec, DlrmModel) {
        let spec = ModelSpec::small(4, 6).scaled(32);
        let emb_dim = spec.features()[0].embedding_dim as usize;
        let config = DlrmConfig::new(4, vec![8, emb_dim], vec![8, 1]);
        let model = DlrmModel::new(&spec, &config, 3);
        (spec, model)
    }

    #[test]
    fn predictions_are_probabilities() {
        let (spec, model) = setup();
        let mut gen = SampleGenerator::new(&spec, 1);
        for s in gen.batch(20) {
            let p = model.predict(&[0.1, 0.2, 0.3, 0.4], &s);
            assert!((0.0..=1.0).contains(&p), "prediction {p} outside [0,1]");
        }
    }

    #[test]
    fn training_reduces_loss_on_learnable_rule() {
        // Label depends on a dense feature only — easily learnable.
        let (spec, mut model) = setup();
        let mut gen = SampleGenerator::new(&spec, 2);
        let mut first = None;
        let mut last = 0.0;
        for epoch in 0..30 {
            let sparse = gen.batch(32);
            let dense: Vec<Vec<f32>> = (0..32)
                .map(|i| vec![(i % 2) as f32, 0.5, 0.1, 0.9])
                .collect();
            let labels: Vec<f32> = (0..32).map(|i| (i % 2) as f32).collect();
            last = model.train_step(&dense, &sparse, &labels, 0.1);
            if epoch == 0 {
                first = Some(last);
            }
        }
        assert!(
            last < first.unwrap(),
            "loss should decrease during training: first {first:?}, last {last}"
        );
    }

    #[test]
    fn sigmoid_and_bce_edge_cases() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!(bce_loss(1.0, 1.0) < 1e-5);
        assert!(bce_loss(0.0, 1.0) > 5.0);
    }

    #[test]
    #[should_panic(expected = "bottom MLP output must match the embedding dimension")]
    fn mismatched_bottom_dimension_rejected() {
        let spec = ModelSpec::small(3, 6).scaled(32);
        let config = DlrmConfig::new(4, vec![8, 3], vec![8, 1]);
        let _ = DlrmModel::new(&spec, &config, 3);
    }

    #[test]
    #[should_panic(expected = "batch length mismatch")]
    fn mismatched_batch_rejected() {
        let (spec, mut model) = setup();
        let mut gen = SampleGenerator::new(&spec, 2);
        let sparse = gen.batch(4);
        let dense = vec![vec![0.0; 4]; 3];
        let labels = vec![0.0; 4];
        let _ = model.train_step(&dense, &sparse, &labels, 0.1);
    }
}
