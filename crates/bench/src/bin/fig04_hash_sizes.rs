//! Figure 4: sparse feature cardinality versus chosen hash size for the
//! reference model's feature universe.

#![allow(clippy::print_stdout)]
use recshard_data::ModelSpec;

fn main() {
    let model = ModelSpec::rm1();
    println!(
        "# Figure 4: cardinality vs hash size ({} features)",
        model.num_features()
    );
    println!("| feature | cardinality | hash size | hash/cardinality |");
    println!("|---------|-------------|-----------|------------------|");
    let mut below = 0usize;
    for f in model.features() {
        let ratio = f.hash_size as f64 / f.cardinality as f64;
        if ratio < 1.0 {
            below += 1;
        }
        println!(
            "| {} | {} | {} | {:.3} |",
            f.id, f.cardinality, f.hash_size, ratio
        );
    }
    println!();
    println!(
        "{below} of {} features use a hash size below their cardinality (points under the \
         red dotted x=y line of Figure 4); the rest over-provision to reduce collisions.",
        model.num_features()
    );
}
