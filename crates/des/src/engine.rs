//! The discrete-event core: a binary-heap event queue with a virtual clock
//! and stable tie-breaking.
//!
//! This is the engine the cluster simulation is built on, in the style of
//! queueing/cluster simulators (dslab, kubernetriks): events are scheduled at
//! absolute virtual times, the queue pops them in `(time, sequence)` order,
//! and the clock jumps from event to event. Same-time events fire in the
//! order they were scheduled (the monotonically increasing sequence number),
//! so a run is a pure function of the initial seed — no hash-map iteration
//! order or floating-point comparison ambiguity can reorder it.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: when it fires, its tie-breaking sequence number and
/// the payload.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Scheduling sequence number: earlier-scheduled events fire first among
    /// events with the same timestamp.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest
        // (time, seq) first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic discrete-event queue with a virtual clock.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at virtual time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute virtual time `at` and returns its
    /// sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time (scheduling
    /// into the past is always a model bug).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> u64 {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
        seq
    }

    /// Schedules `event` `delay_ns` nanoseconds from now.
    pub fn schedule_after_ns(&mut self, delay_ns: u64, event: E) -> u64 {
        self.schedule_at(self.now.after_ns(delay_ns), event)
    }

    /// Pops the next event, advancing the virtual clock to its timestamp.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let next = self.heap.pop()?;
        debug_assert!(next.time >= self.now, "heap returned an event out of order");
        self.now = next.time;
        self.processed += 1;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime(30));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn same_time_events_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_only_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_after_ns(100, ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop().unwrap();
        assert_eq!(q.now(), SimTime(100));
        // schedule_after_ns is relative to the advanced clock.
        q.schedule_after_ns(50, ());
        assert_eq!(q.pop().unwrap().time, SimTime(150));
    }

    #[test]
    fn interleaved_scheduling_keeps_global_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), 1u32);
        q.schedule_at(SimTime(40), 4);
        assert_eq!(q.pop().unwrap().event, 1);
        // Scheduled mid-run, before the pending event.
        q.schedule_at(SimTime(20), 2);
        q.schedule_at(SimTime(30), 3);
        let rest: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(rest, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop().unwrap();
        q.schedule_at(SimTime(5), ());
    }
}
