//! Per-GPU service stations.
//!
//! Each GPU is modelled as a FIFO service station executing its share of the
//! embedding operator one iteration at a time. A station serves each job
//! through two serial channels — the HBM gather and the UVM gather — because
//! mixed-tier reads within one kernel take approximately the *sum* of the two
//! tiers' times (Section 4.2 of the paper, "Key Properties"); the channels
//! are tracked separately so reports can attribute busy time to tiers.

use crate::time::SimTime;
use recshard_stats::WelfordAccumulator;
use serde::{Deserialize, Serialize};

/// Service demand of one job (one iteration's embedding work on one GPU),
/// split by memory tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServiceDemand {
    /// Time to gather the job's HBM-resident rows, in nanoseconds.
    pub hbm_ns: u64,
    /// Time to gather the job's UVM-resident rows (including fault/stall
    /// overhead folded into the UVM bandwidth), in nanoseconds.
    pub uvm_ns: u64,
    /// Fixed kernel-launch and pooling overhead, in nanoseconds.
    pub overhead_ns: u64,
}

impl ServiceDemand {
    /// Total serial service time of the job.
    pub fn total_ns(&self) -> u64 {
        self.hbm_ns + self.uvm_ns + self.overhead_ns
    }
}

/// A single-server FIFO station modelling one GPU's embedding engine.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuStation {
    gpu: usize,
    /// Virtual time at which the station next becomes idle.
    free_at: SimTime,
    /// Cumulative time spent serving jobs, by component.
    busy_hbm_ns: u64,
    busy_uvm_ns: u64,
    busy_overhead_ns: u64,
    /// Cumulative stall time injected by migrations/re-sharding.
    stall_ns: u64,
    jobs_served: u64,
    /// Distribution of how long jobs waited in queue before service.
    queue_wait_ms: WelfordAccumulator,
}

impl GpuStation {
    /// An idle station for the given GPU id.
    pub fn new(gpu: usize) -> Self {
        Self {
            gpu,
            free_at: SimTime::ZERO,
            busy_hbm_ns: 0,
            busy_uvm_ns: 0,
            busy_overhead_ns: 0,
            stall_ns: 0,
            jobs_served: 0,
            queue_wait_ms: WelfordAccumulator::new(),
        }
    }

    /// The GPU this station models.
    pub fn gpu(&self) -> usize {
        self.gpu
    }

    /// Submits a job arriving at `now`; it starts when the station frees up
    /// (FIFO) and runs for its serial HBM + UVM + overhead service time.
    /// Returns the completion time.
    ///
    /// Callers must submit in nondecreasing arrival order (the discrete-event
    /// loop does, since it submits at pop time); an out-of-order submit is
    /// accepted but records a queue wait measured from *its* `now`.
    pub fn submit(&mut self, now: SimTime, demand: ServiceDemand) -> SimTime {
        let start = self.free_at.max(now);
        self.queue_wait_ms.push(start.since(now) as f64 / 1e6);
        let completion = start.after_ns(demand.total_ns());
        self.free_at = completion;
        self.busy_hbm_ns += demand.hbm_ns;
        self.busy_uvm_ns += demand.uvm_ns;
        self.busy_overhead_ns += demand.overhead_ns;
        self.jobs_served += 1;
        completion
    }

    /// Blocks the station for `stall_ns` starting no earlier than `now` —
    /// used to charge plan-migration downtime during online re-sharding.
    pub fn stall(&mut self, now: SimTime, stall_ns: u64) {
        self.free_at = self.free_at.max(now).after_ns(stall_ns);
        self.stall_ns += stall_ns;
    }

    /// Records a job's busy time without FIFO scheduling — the shared-rate
    /// contention mode times jobs on contended memory links instead of the
    /// station's single-server queue, but tier-attributed busy accounting
    /// still lives here. Under processor sharing, concurrent jobs overlap,
    /// so summed busy time may legitimately exceed the makespan.
    pub fn account(&mut self, demand: ServiceDemand) {
        self.busy_hbm_ns += demand.hbm_ns;
        self.busy_uvm_ns += demand.uvm_ns;
        self.busy_overhead_ns += demand.overhead_ns;
        self.jobs_served += 1;
    }

    /// Records how long a shared-rate job was delayed before its gather
    /// started (the contention-mode analogue of FIFO queue wait).
    pub fn record_wait_ns(&mut self, wait_ns: u64) {
        self.queue_wait_ms.push(wait_ns as f64 / 1e6);
    }

    /// Virtual time at which the station next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy (serving) nanoseconds, excluding migration stalls.
    pub fn busy_ns(&self) -> u64 {
        self.busy_hbm_ns + self.busy_uvm_ns + self.busy_overhead_ns
    }

    /// Busy nanoseconds attributable to UVM gathers.
    pub fn busy_uvm_ns(&self) -> u64 {
        self.busy_uvm_ns
    }

    /// Busy nanoseconds attributable to HBM gathers.
    pub fn busy_hbm_ns(&self) -> u64 {
        self.busy_hbm_ns
    }

    /// Nanoseconds of injected migration stall.
    pub fn stall_ns(&self) -> u64 {
        self.stall_ns
    }

    /// Jobs served so far.
    pub fn jobs_served(&self) -> u64 {
        self.jobs_served
    }

    /// Queue-wait distribution (milliseconds) of submitted jobs.
    pub fn queue_wait_ms(&self) -> &WelfordAccumulator {
        &self.queue_wait_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(hbm: u64, uvm: u64, overhead: u64) -> ServiceDemand {
        ServiceDemand {
            hbm_ns: hbm,
            uvm_ns: uvm,
            overhead_ns: overhead,
        }
    }

    #[test]
    fn idle_station_serves_immediately() {
        let mut s = GpuStation::new(0);
        let done = s.submit(SimTime(100), demand(50, 20, 5));
        assert_eq!(done, SimTime(175));
        assert_eq!(s.busy_ns(), 75);
        assert_eq!(s.jobs_served(), 1);
        assert_eq!(s.queue_wait_ms().max(), Some(0.0));
    }

    #[test]
    fn busy_station_queues_fifo() {
        let mut s = GpuStation::new(0);
        let first = s.submit(SimTime(0), demand(100, 0, 0));
        assert_eq!(first, SimTime(100));
        // Arrives while busy: waits until 100, finishes at 150.
        let second = s.submit(SimTime(30), demand(50, 0, 0));
        assert_eq!(second, SimTime(150));
        // Queue wait of the second job was 70 ns.
        assert!((s.queue_wait_ms().max().unwrap() - 70.0 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn busy_time_is_sum_of_components() {
        let mut s = GpuStation::new(1);
        s.submit(SimTime(0), demand(10, 20, 3));
        s.submit(SimTime(0), demand(5, 0, 3));
        assert_eq!(s.busy_hbm_ns(), 15);
        assert_eq!(s.busy_uvm_ns(), 20);
        assert_eq!(s.busy_ns(), 41);
    }

    #[test]
    fn stall_pushes_out_free_time_without_counting_busy() {
        let mut s = GpuStation::new(0);
        s.submit(SimTime(0), demand(100, 0, 0));
        s.stall(SimTime(0), 1_000);
        assert_eq!(s.free_at(), SimTime(1_100));
        assert_eq!(s.busy_ns(), 100);
        assert_eq!(s.stall_ns(), 1_000);
        // Next job starts after the stall.
        assert_eq!(s.submit(SimTime(0), demand(10, 0, 0)), SimTime(1_110));
    }
}
