//! Table 3 + Figure 11: per-GPU EMB iteration-time statistics
//! (min/max/mean/std) for every sharding strategy on RM1/RM2/RM3, and the
//! speedup of each strategy normalised to the slowest in its group.

#![allow(clippy::print_stdout)]
use recshard::analysis::SpeedupReport;
use recshard_bench::{compare_strategies, ExperimentConfig, Strategy};
use recshard_data::RmKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!(
        "# Table 3 / Figure 11: EMB iteration time (ms) across {} GPUs (scale 1/{}, batch {})",
        cfg.gpus,
        cfg.scale,
        recshard_data::model::PAPER_BATCH_SIZE
    );
    println!("| model | strategy | min | max | mean | std | speedup vs slowest |");
    println!("|-------|----------|-----|-----|------|-----|--------------------|");

    for kind in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
        let cmp = compare_strategies(kind, &cfg);
        let report = SpeedupReport::new(
            cmp.results
                .iter()
                .map(|(s, _, r)| (s.label().to_string(), r.time_summary()))
                .collect(),
        );
        let speedups: std::collections::HashMap<String, f64> =
            report.speedups_vs_slowest().into_iter().collect();
        for (strategy, _, run) in &cmp.results {
            let t = run.time_summary();
            println!(
                "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2}x |",
                kind,
                strategy.label(),
                t.min,
                t.max,
                t.mean,
                t.std_dev,
                speedups[strategy.label()]
            );
        }
        let vs_next = report
            .speedup_vs_next_fastest(Strategy::RecShard.label())
            .unwrap_or(f64::NAN);
        let balance = report
            .load_balance_improvement(Strategy::RecShard.label())
            .unwrap_or(f64::NAN);
        println!(
            "| {} | summary | | | | | RecShard {:.2}x vs next fastest, {:.1}x better load balance |",
            kind, vs_next, balance
        );
    }
    println!();
    println!(
        "Paper reference: RecShard improves EMB iteration time by 2.58x (RM1), 5.26x (RM2) and \
         7.41x (RM3) over the next-fastest strategy, with ~9x lower standard deviation on RM1."
    );
}
