//! Remapping tables (Section 4.3 of the paper).
//!
//! A placement that keeps only a table's *hottest* rows in HBM selects rows
//! scattered throughout the table, but embedding tables are stored
//! contiguously and indexed by hashed id. The remapping layer translates each
//! original row index into `(tier, slot)` — a compact index into either the
//! HBM partition or the UVM partition of the table. The paper stores this as
//! 4 bytes per row, using the sign to encode the tier; [`RemapTable`] uses the
//! same trick.

use crate::plan::{MemoryTier, TablePlacement};
use serde::{Deserialize, Serialize};

/// The remapped location of one embedding row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RemappedRow {
    /// Which tier the row lives in.
    pub tier: MemoryTier,
    /// Index within that tier's partition of the table.
    pub slot: u64,
}

/// Per-table remapping from original row index to `(tier, slot)`.
///
/// Encoded exactly as the paper describes: one 32-bit signed entry per row
/// whose sign selects the partition (non-negative = HBM, negative = UVM) and
/// whose magnitude is the slot within that partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemapTable {
    entries: Vec<i32>,
    hbm_rows: u64,
}

impl RemapTable {
    /// Builds the remapping table for one placement.
    ///
    /// `ranked_rows` lists row indices hottest-first (from the profile); the
    /// first `placement.hbm_rows` of them are mapped to HBM slots `0..`. If
    /// the HBM budget exceeds the number of ranked (observed) rows, the
    /// remaining budget is filled with unobserved rows in ascending index
    /// order — so a whole-table HBM placement keeps every row in HBM even if
    /// profiling never touched some of them. All remaining rows are mapped to
    /// UVM slots in ascending row order.
    ///
    /// # Panics
    ///
    /// Panics if the placement's total rows exceed `i32::MAX` (the paper's
    /// 4-byte encoding has the same limit) or if a ranked row is out of range.
    pub fn build(placement: &TablePlacement, ranked_rows: &[u64]) -> Self {
        let total = placement.total_rows;
        assert!(
            total <= i32::MAX as u64,
            "table too large for 32-bit remap encoding"
        );
        let budget = placement.hbm_rows.min(total);
        let mut entries = vec![i32::MIN; total as usize];

        // Hot rows → HBM slots, in rank order.
        let mut hbm_rows: u64 = 0;
        for &row in ranked_rows.iter().take(budget as usize) {
            assert!(
                row < total,
                "ranked row {row} out of range for table of {total} rows"
            );
            entries[row as usize] = hbm_rows as i32;
            hbm_rows += 1;
        }
        // Remaining HBM budget → coldest (unobserved) rows in ascending order.
        if hbm_rows < budget {
            for row in 0..total as usize {
                if hbm_rows >= budget {
                    break;
                }
                if entries[row] == i32::MIN {
                    entries[row] = hbm_rows as i32;
                    hbm_rows += 1;
                }
            }
        }
        // Everything else → UVM slots, in ascending row order.
        let mut uvm_slot: i64 = 0;
        for e in entries.iter_mut() {
            if *e == i32::MIN {
                // Negative encoding: slot s stored as -(s + 1) so slot 0 is representable.
                *e = -(uvm_slot as i32 + 1);
                uvm_slot += 1;
            }
        }
        Self { entries, hbm_rows }
    }

    /// Builds an identity-style remap table that keeps the first `hbm_rows`
    /// rows (by index) in HBM — what a plan without profiling information
    /// (or a whole-table placement) degenerates to.
    pub fn without_profile(placement: &TablePlacement) -> Self {
        let ranked: Vec<u64> = (0..placement.hbm_rows.min(placement.total_rows)).collect();
        Self::build(placement, &ranked)
    }

    /// Number of rows mapped to HBM.
    pub fn hbm_rows(&self) -> u64 {
        self.hbm_rows
    }

    /// Number of rows mapped to UVM.
    pub fn uvm_rows(&self) -> u64 {
        self.entries.len() as u64 - self.hbm_rows
    }

    /// Total rows covered by the table.
    pub fn total_rows(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Storage overhead of the remap table itself, in bytes (4 bytes per row,
    /// as in Section 6.6).
    pub fn storage_bytes(&self) -> u64 {
        self.entries.len() as u64 * 4
    }

    /// Looks up the remapped location of a row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn lookup(&self, row: u64) -> RemappedRow {
        let e = self.entries[row as usize];
        if e >= 0 {
            RemappedRow {
                tier: MemoryTier::Hbm,
                slot: e as u64,
            }
        } else {
            RemappedRow {
                tier: MemoryTier::Uvm,
                slot: (-(e as i64) - 1) as u64,
            }
        }
    }

    /// The tier a row is mapped to.
    #[inline]
    pub fn tier_of(&self, row: u64) -> MemoryTier {
        if self.entries[row as usize] >= 0 {
            MemoryTier::Hbm
        } else {
            MemoryTier::Uvm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::FeatureId;

    fn placement(hbm_rows: u64, total_rows: u64) -> TablePlacement {
        TablePlacement {
            table: FeatureId(0),
            gpu: 0,
            hbm_rows,
            total_rows,
            row_bytes: 64,
        }
    }

    #[test]
    fn hot_rows_go_to_hbm() {
        let ranked = vec![7, 3, 9, 1, 0];
        let remap = RemapTable::build(&placement(3, 10), &ranked);
        assert_eq!(remap.hbm_rows(), 3);
        assert_eq!(remap.uvm_rows(), 7);
        assert_eq!(
            remap.lookup(7),
            RemappedRow {
                tier: MemoryTier::Hbm,
                slot: 0
            }
        );
        assert_eq!(
            remap.lookup(3),
            RemappedRow {
                tier: MemoryTier::Hbm,
                slot: 1
            }
        );
        assert_eq!(
            remap.lookup(9),
            RemappedRow {
                tier: MemoryTier::Hbm,
                slot: 2
            }
        );
        assert_eq!(remap.tier_of(1), MemoryTier::Uvm);
        assert_eq!(remap.tier_of(0), MemoryTier::Uvm);
    }

    #[test]
    fn slots_are_dense_and_unique_per_tier() {
        let ranked = vec![5, 2, 8, 0, 6];
        let remap = RemapTable::build(&placement(2, 9), &ranked);
        let mut hbm_slots = Vec::new();
        let mut uvm_slots = Vec::new();
        for row in 0..9 {
            let r = remap.lookup(row);
            match r.tier {
                MemoryTier::Hbm => hbm_slots.push(r.slot),
                MemoryTier::Uvm => uvm_slots.push(r.slot),
            }
        }
        hbm_slots.sort_unstable();
        uvm_slots.sort_unstable();
        assert_eq!(hbm_slots, vec![0, 1]);
        assert_eq!(uvm_slots, (0..7).collect::<Vec<u64>>());
    }

    #[test]
    fn fewer_ranked_rows_than_hbm_budget() {
        // Only 2 rows were ever observed, but the plan budgets 5 HBM rows:
        // the observed rows get the first HBM slots and the budget is topped
        // up with the lowest-index unobserved rows.
        let remap = RemapTable::build(&placement(5, 10), &[4, 1]);
        assert_eq!(remap.hbm_rows(), 5);
        assert_eq!(remap.uvm_rows(), 5);
        assert_eq!(remap.tier_of(4), MemoryTier::Hbm);
        assert_eq!(remap.tier_of(1), MemoryTier::Hbm);
        assert_eq!(remap.tier_of(0), MemoryTier::Hbm);
        assert_eq!(remap.tier_of(9), MemoryTier::Uvm);
    }

    #[test]
    fn without_profile_uses_leading_rows() {
        let remap = RemapTable::without_profile(&placement(4, 10));
        for row in 0..4 {
            assert_eq!(remap.tier_of(row), MemoryTier::Hbm);
        }
        for row in 4..10 {
            assert_eq!(remap.tier_of(row), MemoryTier::Uvm);
        }
    }

    #[test]
    fn storage_matches_paper_four_bytes_per_row() {
        let remap = RemapTable::without_profile(&placement(0, 1000));
        assert_eq!(remap.storage_bytes(), 4000);
        assert_eq!(remap.total_rows(), 1000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ranked_row_out_of_range_panics() {
        let _ = RemapTable::build(&placement(1, 5), &[9]);
    }
}
