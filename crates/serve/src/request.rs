//! The batched inference request front-end.
//!
//! Online queries look like training samples without labels: a batch of
//! users/items, each contributing multi-hot sparse features. The stream is
//! produced by the *same* coverage/pooling/Zipf machinery the rest of the
//! reproduction uses ([`SampleGenerator`]), hashed by the same per-table
//! hashers, and routed to GPU shards by the active sharding plan — so the
//! serving layer sees exactly the access skew the profile measured.
//!
//! Generation is fully seeded: a `(model, seed, arrival, batch, count)`
//! tuple always produces the identical stream, which is what makes serving
//! runs fingerprint-stable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recshard_data::{ModelSpec, SampleGenerator};
use serde::{Deserialize, Serialize};

/// How inference requests arrive at the server (open loop).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// One request every `interval_us` microseconds, exactly.
    FixedRate {
        /// Gap between consecutive requests, in microseconds.
        interval_us: f64,
    },
    /// Poisson arrivals with exponentially distributed gaps.
    Poisson {
        /// Mean gap between consecutive requests, in microseconds.
        mean_interval_us: f64,
    },
}

impl ArrivalModel {
    /// Draws the gap to the next arrival, in nanoseconds.
    pub fn next_gap_ns(&self, rng: &mut StdRng) -> u64 {
        match *self {
            ArrivalModel::FixedRate { interval_us } => (interval_us.max(0.0) * 1e3).round() as u64,
            ArrivalModel::Poisson { mean_interval_us } => {
                let u: f64 = rng.gen();
                let gap_us = -mean_interval_us.max(0.0) * (1.0 - u).ln();
                (gap_us * 1e3).round() as u64
            }
        }
    }

    /// The mean arrival interval in microseconds.
    pub fn mean_interval_us(&self) -> f64 {
        match *self {
            ArrivalModel::FixedRate { interval_us } => interval_us,
            ArrivalModel::Poisson { mean_interval_us } => mean_interval_us,
        }
    }
}

/// One shard's slice of one query: the hashed rows this GPU must gather.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTask {
    /// Index of the query this task belongs to.
    pub query: u32,
    /// `(table, hashed row)` lookups, in draw order.
    pub lookups: Vec<(u32, u64)>,
}

/// A fully materialised, seeded request stream, pre-partitioned per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestStream {
    /// Arrival time of each query, in nanoseconds (non-decreasing).
    pub arrivals_ns: Vec<u64>,
    /// Per shard, the tasks in query order.
    pub shard_tasks: Vec<Vec<ShardTask>>,
    /// Total row lookups across all queries and shards.
    pub total_lookups: u64,
}

impl RequestStream {
    /// Generates `queries` batched requests of `batch` samples each, routing
    /// every table's lookups to its owning shard (`gpu_of`).
    ///
    /// # Panics
    ///
    /// Panics if `gpu_of` disagrees with the model's feature count, routes to
    /// an out-of-range shard, or `batch == 0`.
    pub fn generate(
        model: &ModelSpec,
        gpu_of: &[usize],
        num_shards: usize,
        queries: u32,
        batch: usize,
        arrival: ArrivalModel,
        seed: u64,
    ) -> Self {
        assert_eq!(gpu_of.len(), model.num_features(), "routing/model mismatch");
        assert!(batch > 0, "a query must contain at least one sample");
        assert!(
            gpu_of.iter().all(|&g| g < num_shards),
            "routing targets an out-of-range shard"
        );
        let hashers: Vec<_> = model.features().iter().map(|f| f.hasher()).collect();
        let mut gen = SampleGenerator::new(model, seed);
        let mut arrival_rng = StdRng::seed_from_u64(seed ^ 0x5E2E_A221_7A1C_0FFE);

        let mut arrivals_ns = Vec::with_capacity(queries as usize);
        let mut shard_tasks: Vec<Vec<ShardTask>> = vec![Vec::new(); num_shards];
        let mut total_lookups = 0u64;
        let mut now = 0u64;
        let mut per_shard: Vec<Vec<(u32, u64)>> = vec![Vec::new(); num_shards];
        for q in 0..queries {
            arrivals_ns.push(now);
            now += arrival.next_gap_ns(&mut arrival_rng);
            for slot in &mut per_shard {
                slot.clear();
            }
            for _ in 0..batch {
                let sample = gen.sample();
                for (t, values) in sample.values.iter().enumerate() {
                    let shard = gpu_of[t];
                    for &v in values {
                        per_shard[shard].push((t as u32, hashers[t].hash(v)));
                    }
                }
            }
            for (shard, lookups) in per_shard.iter().enumerate() {
                if !lookups.is_empty() {
                    total_lookups += lookups.len() as u64;
                    shard_tasks[shard].push(ShardTask {
                        query: q,
                        lookups: lookups.clone(),
                    });
                }
            }
        }
        Self {
            arrivals_ns,
            shard_tasks,
            total_lookups,
        }
    }

    /// Number of queries in the stream.
    pub fn queries(&self) -> u32 {
        self.arrivals_ns.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> (ModelSpec, RequestStream) {
        let model = ModelSpec::small(6, 4);
        let gpu_of: Vec<usize> = (0..model.num_features()).map(|t| t % 2).collect();
        let s = RequestStream::generate(
            &model,
            &gpu_of,
            2,
            50,
            4,
            ArrivalModel::FixedRate { interval_us: 10.0 },
            seed,
        );
        (model, s)
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = stream(7);
        let (_, b) = stream(7);
        assert_eq!(a, b);
        let (_, c) = stream(8);
        assert_ne!(a, c);
    }

    #[test]
    fn lookups_are_hashed_and_routed_to_owners() {
        let (model, s) = stream(3);
        assert_eq!(s.shard_tasks.len(), 2);
        let mut seen = 0u64;
        for (shard, tasks) in s.shard_tasks.iter().enumerate() {
            for task in tasks {
                assert!(!task.lookups.is_empty());
                for &(t, row) in &task.lookups {
                    assert_eq!(t as usize % 2, shard, "lookup on the wrong shard");
                    assert!(row < model.features()[t as usize].hash_size);
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, s.total_lookups);
        assert!(seen > 0);
    }

    #[test]
    fn fixed_rate_arrivals_are_evenly_spaced() {
        let (_, s) = stream(1);
        assert_eq!(s.queries(), 50);
        for w in s.arrivals_ns.windows(2) {
            assert_eq!(w[1] - w[0], 10_000);
        }
    }

    #[test]
    fn poisson_gaps_average_the_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = ArrivalModel::Poisson {
            mean_interval_us: 40.0,
        };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| a.next_gap_ns(&mut rng)).sum();
        let mean_us = total as f64 / n as f64 / 1e3;
        assert!(
            (mean_us - 40.0).abs() < 2.0,
            "Poisson mean gap {mean_us} far from 40"
        );
        assert_eq!(a.mean_interval_us(), 40.0);
    }

    #[test]
    fn tasks_are_in_query_order() {
        let (_, s) = stream(11);
        for tasks in &s.shard_tasks {
            for w in tasks.windows(2) {
                assert!(w[0].query < w[1].query);
            }
        }
    }
}
