//! # recshard-sharding
//!
//! Sharding-plan types, the training-system description, per-table cost
//! functions and the greedy baseline sharders the paper compares RecShard
//! against (Section 5).
//!
//! The state-of-the-art production sharders the paper uses as baselines work
//! in two steps: (I) assign each embedding table a scalar cost — by *size*,
//! by *lookup* volume, or by a combination — and (II) greedily assign tables
//! to GPUs in descending cost order, spilling whole tables to UVM once the
//! GPUs' HBM is full. RecShard instead places *row ranges* of each table, and
//! both kinds of plans are described by the same [`ShardingPlan`] type: each
//! table is assigned one GPU plus the number of its (hottest) rows resident
//! in HBM.
//!
//! ```
//! use recshard_data::ModelSpec;
//! use recshard_stats::DatasetProfiler;
//! use recshard_sharding::{GreedySharder, SizeCost, SystemSpec};
//!
//! let model = ModelSpec::small(8, 3);
//! let profile = DatasetProfiler::profile_model(&model, 1_000, 1);
//! let system = SystemSpec::uniform(2, 1 << 22, 1 << 30, 1555.0, 16.0);
//! let plan = GreedySharder::new(SizeCost).shard(&model, &profile, &system).unwrap();
//! assert!(plan.validate(&model, &system).is_ok());
//! ```
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cost;
pub mod error;
pub mod greedy;
pub mod plan;
pub mod remap;
pub mod system;
pub mod topology;

pub use cost::{CostFunction, LookupCost, SizeCost, SizeLookupCost};
pub use error::ShardingError;
pub use greedy::GreedySharder;
pub use plan::{MemoryTier, ShardingPlan, TablePlacement};
pub use remap::{RemapTable, RemappedRow};
pub use system::{ClusterSpec, DeviceClass, SystemSpec, GIB};
pub use topology::{FabricSpec, NodeAssigner, NodeAssignment, NodeTopology};
