//! The lint rules: repo-specific determinism and robustness invariants that
//! `clippy` cannot express.
//!
//! Every rule is a pattern match over the token stream of one
//! [`SourceFile`]. Rules are deliberately *syntactic* — there is no type
//! inference — so each one documents the approximation it makes and errs
//! toward flagging; the `// recshard-lint: allow(rule) -- reason` annotation
//! is the pressure valve, and an annotation is itself an auditable artifact
//! (it must carry a reason, and must suppress something).

use crate::file::{FileKind, SourceFile};
use crate::lexer::TokenKind;

/// A single finding, before path/baseline bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Static description of one rule, for `--list-rules`, allow-annotation
/// validation and the README table.
pub struct RuleMeta {
    /// Identifier used in diagnostics, annotations and the baseline.
    pub name: &'static str,
    /// One-line description of what the rule flags.
    pub summary: &'static str,
    /// The repo invariant the rule protects.
    pub invariant: &'static str,
    /// File kinds the rule scans.
    pub applies_to: &'static [FileKind],
    /// Whether the rule also applies inside `#[cfg(test)]` / `mod tests`.
    pub include_tests: bool,
}

use FileKind::{Bin, Example, Lib, Test};

/// All rules, in diagnostic order.
pub const RULES: &[RuleMeta] = &[
    RuleMeta {
        name: "hash-iter",
        summary: "iteration over a std HashMap/HashSet binding",
        invariant: "iteration order of the std hash containers is randomized per process; \
                    anything that feeds a fingerprint, snapshot, JSON export or float \
                    accumulation must iterate in a defined order (BTreeMap/BTreeSet, or \
                    collect-and-sort)",
        applies_to: &[Lib, Bin, Example],
        include_tests: false,
    },
    RuleMeta {
        name: "float-acc",
        summary: "float accumulation over an unordered hash-container iteration",
        invariant: "float addition is not associative, so summing f32/f64 values in hash \
                    order produces run-dependent low bits that golden fingerprints and \
                    BENCH_*.json gates then trip on",
        applies_to: &[Lib, Bin, Example],
        include_tests: false,
    },
    RuleMeta {
        name: "wall-clock",
        summary: "Instant/SystemTime read outside RECSHARD_BENCH_TIMING-gated code",
        invariant: "simulation and solver results are pure functions of (spec, seed); wall \
                    clocks may only feed the env-gated timing fields of bench reports, \
                    which the fingerprints deliberately blank",
        applies_to: &[Lib, Bin, Example],
        include_tests: false,
    },
    RuleMeta {
        name: "thread-fanin",
        summary: "thread spawn without an audited deterministic fan-in",
        invariant: "worker results must be merged in a schedule-independent order (join in \
                    index order, or sort by (worker, seq)); each spawn site carries an \
                    annotation saying which idiom it uses",
        applies_to: &[Lib, Bin],
        include_tests: false,
    },
    RuleMeta {
        name: "unwrap",
        summary: "unwrap()/expect() in non-test library code",
        invariant: "library code must not panic on config- or data-driven paths; convert to \
                    typed errors, or annotate internal invariants with the reason they \
                    cannot fire",
        applies_to: &[Lib],
        include_tests: false,
    },
    RuleMeta {
        name: "narrowing-cast",
        summary: "narrowing `as` cast on a time/byte quantity",
        invariant: "times and byte counts are u64/u128 domain values; narrowing them with \
                    `as` silently truncates at scale — use the audited SimTime helpers \
                    (crates/des/src/time.rs) or a checked conversion",
        applies_to: &[Lib],
        include_tests: false,
    },
    RuleMeta {
        name: "seqcst",
        summary: "SeqCst atomic ordering",
        invariant: "nothing in this workspace needs a global total order over atomics; \
                    SeqCst hides the actual required ordering and costs a fence on weak \
                    hardware — state the real ordering instead",
        applies_to: &[Lib, Bin, Test, Example],
        include_tests: true,
    },
    RuleMeta {
        name: "obs-ordering",
        summary: "non-Relaxed atomic ordering in recshard-obs without a justification",
        invariant: "the metrics hot path is intentionally Relaxed (per-counter monotonic \
                    increments, read quiesced); any Acquire/Release there must carry an \
                    `// ordering:` comment explaining the happens-before edge it builds",
        applies_to: &[Lib],
        include_tests: false,
    },
    RuleMeta {
        name: "bad-allow",
        summary: "malformed recshard-lint annotation",
        invariant: "annotations are part of the audit trail: they must parse, name known \
                    rules, and carry a `-- reason`",
        applies_to: &[Lib, Bin, Test, Example],
        include_tests: true,
    },
    RuleMeta {
        name: "unused-allow",
        summary: "allow annotation that suppresses nothing",
        invariant: "a stale allow annotation reads as if a hazard were present and audited; \
                    delete annotations the code has outgrown",
        applies_to: &[Lib, Bin, Test, Example],
        include_tests: true,
    },
];

/// Looks up a rule by name.
pub fn rule(name: &str) -> Option<&'static RuleMeta> {
    RULES.iter().find(|r| r.name == name)
}

/// Runs every applicable rule over `file`, returning unsuppressed
/// violations (allow annotations and test regions already applied), plus
/// the annotation-hygiene findings.
pub fn run_all(file: &SourceFile) -> Vec<Violation> {
    let mut raw: Vec<Violation> = Vec::new();
    hash_iter_and_float_acc(file, &mut raw);
    wall_clock(file, &mut raw);
    thread_fanin(file, &mut raw);
    unwrap_expect(file, &mut raw);
    narrowing_cast(file, &mut raw);
    seqcst(file, &mut raw);
    obs_ordering(file, &mut raw);

    let mut out = Vec::new();
    for v in raw {
        let Some(meta) = rule(v.rule) else {
            // Unreachable by construction (every emitter names a registered
            // rule); dropping beats panicking in the tool that bans panics.
            continue;
        };
        if !meta.applies_to.contains(&file.kind) {
            continue;
        }
        if !meta.include_tests && file.in_test_code(v.line) {
            continue;
        }
        if file.allowed(v.rule, v.line) {
            continue;
        }
        out.push(v);
    }
    annotation_hygiene(file, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// `bad-allow` + `unused-allow`: annotations must parse, name known rules,
/// carry a reason, and suppress at least one diagnostic.
fn annotation_hygiene(file: &SourceFile, out: &mut Vec<Violation>) {
    for (line, msg) in &file.bad_allows {
        out.push(Violation {
            rule: "bad-allow",
            line: *line,
            message: format!("{msg}; expected `recshard-lint: allow(rule, ...) -- reason`"),
        });
    }
    for a in &file.allows {
        for r in &a.rules {
            if rule(r).is_none() {
                out.push(Violation {
                    rule: "bad-allow",
                    line: a.comment_line,
                    message: format!("annotation names unknown rule `{r}`"),
                });
            }
        }
        if !a.has_reason {
            out.push(Violation {
                rule: "bad-allow",
                line: a.comment_line,
                message: "annotation is missing its `-- reason` trailer".to_string(),
            });
        }
        if !a.used.get() && !file.in_test_code(a.applies_to) {
            out.push(Violation {
                rule: "unused-allow",
                line: a.comment_line,
                message: format!(
                    "allow({}) suppresses no diagnostic on line {}",
                    a.rules.join(", "),
                    a.applies_to
                ),
            });
        }
    }
}

/// Methods whose call on a hash container observes its iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Accumulators that collapse an iterator into one value, order-sensitively
/// for floats.
const ACCUMULATORS: &[&str] = &["sum", "product", "fold"];

/// One binding (local, field or param) whose declared or constructed type
/// is a std hash container.
#[derive(Debug)]
struct HashBinding {
    name: String,
    /// Whether the container's generic arguments mention f32/f64.
    float_valued: bool,
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file: type
/// ascriptions (`name: HashMap<..>`, covering fields, params and typed
/// lets) and untyped constructions (`let name = HashMap::new()`).
/// Per-file and name-based — shadowing across functions is conflated, which
/// over-approximates; allow annotations resolve false positives.
fn hash_bindings(file: &SourceFile) -> Vec<HashBinding> {
    let toks = &file.tokens;
    let mut out: Vec<HashBinding> = Vec::new();
    let mut record = |name: &str, float_valued: bool| match out.iter_mut().find(|b| b.name == name)
    {
        Some(b) => b.float_valued |= float_valued,
        None => out.push(HashBinding {
            name: name.to_string(),
            float_valued,
        }),
    };
    for idx in 0..toks.len() {
        let t = &toks[idx];
        if t.kind != TokenKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        let float_valued = generic_args_mention_float(file, idx);
        // Walk back over a `std :: collections ::`-style path prefix.
        let mut k = idx;
        while k >= 3
            && file.is_punct(k - 1, ':')
            && file.is_punct(k - 2, ':')
            && toks[k - 3].kind == TokenKind::Ident
        {
            k -= 3;
        }
        // Type-ascription position: `name : [&mut] [path::]Hash{Map,Set}`.
        {
            let mut b = k;
            while b > 0 && (file.is_punct(b - 1, '&') || file.is_ident(b - 1, "mut")) {
                b -= 1;
            }
            if b >= 2
                && file.is_punct(b - 1, ':')
                && !file.is_punct(b - 2, ':')
                && toks[b - 2].kind == TokenKind::Ident
            {
                record(&toks[b - 2].text, float_valued);
                continue;
            }
        }
        // Construction position: `let [mut] name = [path::]HashMap::new()`.
        let constructed = file.is_punct(idx + 1, ':')
            && file.is_punct(idx + 2, ':')
            && toks.get(idx + 3).is_some_and(|m| {
                matches!(
                    m.text.as_str(),
                    "new" | "with_capacity" | "default" | "from"
                )
            });
        if constructed
            && k >= 2
            && file.is_punct(k - 1, '=')
            && toks[k - 2].kind == TokenKind::Ident
        {
            record(&toks[k - 2].text, float_valued);
        }
    }
    out
}

/// Whether the generic argument list following token `idx` mentions a float
/// type (closes over nested angle brackets).
fn generic_args_mention_float(file: &SourceFile, idx: usize) -> bool {
    if !file.is_punct(idx + 1, '<') {
        return false;
    }
    let mut depth = 0i32;
    for j in (idx + 1)..file.tokens.len() {
        let t = &file.tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        return false;
                    }
                }
                _ => {}
            }
        } else if t.kind == TokenKind::Ident && (t.text == "f64" || t.text == "f32") {
            return true;
        }
    }
    false
}

/// `hash-iter`: flags `binding.iter()` / `for .. in &binding` where
/// `binding` is a hash container, and `float-acc` when the same statement
/// then accumulates floats out of that iteration.
fn hash_iter_and_float_acc(file: &SourceFile, out: &mut Vec<Violation>) {
    let bindings = hash_bindings(file);
    if bindings.is_empty() {
        return;
    }
    let toks = &file.tokens;
    let find = |name: &str| bindings.iter().find(|b| b.name == name);
    for idx in 0..toks.len() {
        // Method-call form: `name . iter (`.
        if toks[idx].kind == TokenKind::Ident
            && file.is_punct(idx + 1, '.')
            && toks
                .get(idx + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
            && file.is_punct(idx + 3, '(')
        {
            let Some(b) = find(&toks[idx].text) else {
                continue;
            };
            let method = &toks[idx + 2];
            out.push(Violation {
                rule: "hash-iter",
                line: method.line,
                message: format!(
                    "`{}.{}()` iterates a std hash container in randomized order; use \
                     BTreeMap/BTreeSet or collect-and-sort before the order can escape",
                    b.name, method.text
                ),
            });
            float_acc_after(file, idx + 3, b, out);
        }
        // For-loop form: `for pat in [&] [self.] name {`.
        if file.is_ident(idx, "for") {
            if let Some((name, line)) = for_loop_hash_source(file, idx, &bindings) {
                out.push(Violation {
                    rule: "hash-iter",
                    line,
                    message: format!(
                        "`for .. in {name}` iterates a std hash container in randomized \
                         order; use BTreeMap/BTreeSet or collect-and-sort first"
                    ),
                });
            }
        }
    }
}

/// For a `for` keyword at `idx`, returns the hash binding iterated over, if
/// the loop source is a bare (possibly borrowed / field-accessed) tracked
/// binding. A call in the source expression disqualifies it — the loop then
/// iterates whatever the call returned.
fn for_loop_hash_source<'a>(
    file: &SourceFile,
    idx: usize,
    bindings: &'a [HashBinding],
) -> Option<(&'a str, u32)> {
    let toks = &file.tokens;
    // Find `in` at bracket depth 0, then the loop-body `{`.
    let mut depth = 0i32;
    let mut j = idx + 1;
    let mut in_at = None;
    while j < toks.len() && j < idx + 64 {
        let t = &toks[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                _ => {}
            }
        }
        if depth == 0 && file.is_ident(j, "in") {
            in_at = Some(j);
            break;
        }
        j += 1;
    }
    let in_at = in_at?;
    let mut last_ident: Option<&'a HashBinding> = None;
    let mut k = in_at + 1;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            TokenKind::Punct if t.text == "{" => break,
            // Borrows and field paths are transparent.
            TokenKind::Punct if matches!(t.text.as_str(), "&" | ".") => {}
            TokenKind::Ident if t.text == "mut" || t.text == "self" => {}
            // The *final* path segment must be a tracked binding; unknown
            // intermediate segments (e.g. `other.counts`) are fine.
            TokenKind::Ident => last_ident = bindings.iter().find(|b| b.name == t.text),
            // A call, index or literal: the loop iterates whatever that
            // expression produced, not the container itself.
            _ => return None,
        }
        k += 1;
    }
    let b = last_ident?;
    Some((&b.name, toks.get(in_at)?.line))
}

/// `float-acc`: from the token just past an iteration call, scans the rest
/// of the statement for `.sum(` / `.product(` / `.fold(` and flags when the
/// element type is (or plausibly is) floating point.
fn float_acc_after(file: &SourceFile, from: usize, b: &HashBinding, out: &mut Vec<Violation>) {
    let toks = &file.tokens;
    let mut saw_float_hint = b.float_valued;
    let mut j = from;
    while j < toks.len() && j < from + 96 {
        let t = &toks[j];
        if t.kind == TokenKind::Punct && t.text == ";" {
            break;
        }
        if t.kind == TokenKind::Ident && (t.text == "f64" || t.text == "f32") {
            saw_float_hint = true;
        }
        if file.is_punct(j, '.')
            && toks
                .get(j + 1)
                .is_some_and(|m| ACCUMULATORS.contains(&m.text.as_str()))
            && saw_float_hint
        {
            out.push(Violation {
                rule: "float-acc",
                line: toks[j + 1].line,
                message: format!(
                    "float `{}()` over the unordered iteration of `{}`: float addition is \
                     order-sensitive, so the low bits depend on hash order",
                    toks[j + 1].text,
                    b.name
                ),
            });
            return;
        }
        j += 1;
    }
}

/// `wall-clock`: `Instant::..` / `SystemTime::..` outside functions that
/// visibly gate on bench timing (their body mentions `RECSHARD_BENCH_TIMING`
/// or the `include_timing` config flag).
fn wall_clock(file: &SourceFile, out: &mut Vec<Violation>) {
    let toks = &file.tokens;
    for idx in 0..toks.len() {
        let t = &toks[idx];
        if t.kind != TokenKind::Ident || (t.text != "Instant" && t.text != "SystemTime") {
            continue;
        }
        // Require a path use (`Instant::now`), so type ascriptions and
        // `use std::time::Instant;` imports stay silent.
        if !(file.is_punct(idx + 1, ':') && file.is_punct(idx + 2, ':')) {
            continue;
        }
        let gated = file.enclosing_fn_body(idx).is_some_and(|body| {
            body.iter().any(|b| {
                (b.kind == TokenKind::Str && b.text.contains("RECSHARD_BENCH_TIMING"))
                    || (b.kind == TokenKind::Ident && b.text == "include_timing")
            })
        });
        if !gated {
            out.push(Violation {
                rule: "wall-clock",
                line: t.line,
                message: format!(
                    "`{}::{}` outside RECSHARD_BENCH_TIMING-gated code: results must be \
                     pure functions of (spec, seed)",
                    t.text,
                    toks.get(idx + 3).map(|n| n.text.as_str()).unwrap_or("..")
                ),
            });
        }
    }
}

/// `thread-fanin`: every `thread::spawn` / `scope.spawn` call site must be
/// annotated with the deterministic merge idiom it relies on.
fn thread_fanin(file: &SourceFile, out: &mut Vec<Violation>) {
    let toks = &file.tokens;
    for idx in 0..toks.len() {
        if !file.is_ident(idx, "spawn") || !file.is_punct(idx + 1, '(') {
            continue;
        }
        let method_call = idx >= 1 && file.is_punct(idx - 1, '.');
        let path_call = idx >= 3
            && file.is_punct(idx - 1, ':')
            && file.is_punct(idx - 2, ':')
            && file.is_ident(idx - 3, "thread");
        if method_call || path_call {
            out.push(Violation {
                rule: "thread-fanin",
                line: toks[idx].line,
                message: "thread spawn without an audited fan-in: state (via an allow \
                          annotation) how results are merged deterministically — join in \
                          index order or sort by (worker, seq)"
                    .to_string(),
            });
        }
    }
}

/// Panicking extractors flagged by `unwrap`.
const PANICKING: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// `unwrap`: `.unwrap()` / `.expect(..)` in non-test library code.
fn unwrap_expect(file: &SourceFile, out: &mut Vec<Violation>) {
    let toks = &file.tokens;
    for idx in 0..toks.len() {
        let t = &toks[idx];
        if t.kind == TokenKind::Ident
            && PANICKING.contains(&t.text.as_str())
            && idx >= 1
            && file.is_punct(idx - 1, '.')
            && file.is_punct(idx + 1, '(')
        {
            out.push(Violation {
                rule: "unwrap",
                line: t.line,
                message: format!(
                    "`.{}()` in library code: return a typed error, or annotate the \
                     internal invariant that makes this unreachable",
                    t.text
                ),
            });
        }
    }
}

/// Integer types an `as` cast can silently truncate a u64 quantity into.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier shapes treated as time/byte quantities.
fn is_quantity_name(name: &str) -> bool {
    const SUFFIXES: &[&str] = &[
        "_ns", "_ms", "_us", "_sec", "_secs", "_bytes", "_nanos", "_millis", "_time",
    ];
    const EXACT: &[&str] = &[
        "ns", "ms", "us", "secs", "bytes", "time", "duration", "elapsed", "nanos", "millis",
    ];
    EXACT.contains(&name) || SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// Paths exempt from `narrowing-cast`: the audited SimTime conversion
/// helpers, whose whole job is checked/saturating narrowing.
const NARROWING_EXEMPT: &[&str] = &["crates/des/src/time.rs"];

/// `narrowing-cast`: `<quantity> as u32`-style truncations outside the
/// audited SimTime helpers.
fn narrowing_cast(file: &SourceFile, out: &mut Vec<Violation>) {
    if NARROWING_EXEMPT.contains(&file.path.as_str()) {
        return;
    }
    let toks = &file.tokens;
    for idx in 0..toks.len() {
        if !file.is_ident(idx, "as")
            || !toks
                .get(idx + 1)
                .is_some_and(|t| NARROW_TARGETS.contains(&t.text.as_str()))
        {
            continue;
        }
        // A quantity-named identifier in the preceding expression window —
        // unless a cardinality method (`.len()`, `.count()`) sits closer to
        // the cast, in which case the value being narrowed is a count of
        // elements, not the quantity itself.
        let lo = idx.saturating_sub(8);
        let quantity = toks[lo..idx].iter().rev().find_map(|t| {
            if t.kind != TokenKind::Ident {
                return None;
            }
            if t.text == "len" || t.text == "count" {
                return Some(None);
            }
            if is_quantity_name(&t.text) {
                return Some(Some(t));
            }
            None
        });
        if let Some(Some(q)) = quantity {
            out.push(Violation {
                rule: "narrowing-cast",
                line: toks[idx].line,
                message: format!(
                    "`{} as {}` narrows a time/byte quantity; use the audited SimTime \
                     helpers or a checked conversion",
                    q.text,
                    toks[idx + 1].text
                ),
            });
        }
    }
}

/// `seqcst`: flat ban on `SeqCst`, everywhere including tests.
fn seqcst(file: &SourceFile, out: &mut Vec<Violation>) {
    for t in &file.tokens {
        if t.kind == TokenKind::Ident && t.text == "SeqCst" {
            out.push(Violation {
                rule: "seqcst",
                line: t.line,
                message: "SeqCst ordering: state the actual required ordering (Relaxed for \
                          the obs counters; Acquire/Release for handoffs) instead of a \
                          global fence"
                    .to_string(),
            });
        }
    }
}

/// `obs-ordering`: in `crates/obs`, Acquire/Release/AcqRel must carry an
/// `// ordering:` justification comment on the same or previous line.
fn obs_ordering(file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.path.starts_with("crates/obs/") {
        return;
    }
    let toks = &file.tokens;
    for idx in 0..toks.len() {
        let t = &toks[idx];
        let is_ordering = t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "Acquire" | "Release" | "AcqRel")
            && idx >= 3
            && file.is_punct(idx - 1, ':')
            && file.is_punct(idx - 2, ':')
            && file.is_ident(idx - 3, "Ordering");
        if is_ordering && !file.comment_near(t.line, "ordering:") {
            out.push(Violation {
                rule: "obs-ordering",
                line: t.line,
                message: format!(
                    "`Ordering::{}` in the relaxed-atomics obs hot path without an \
                     `// ordering:` comment naming the happens-before edge it builds",
                    t.text
                ),
            });
        }
    }
}
