//! The exact MILP formulation of Section 4.2.
//!
//! The paper states the placement problem as a MILP over binary variables
//! `p_{m,j}` (table `j` is owned by GPU `m`) and `x_{i,j}` (table `j` selects
//! ICDF step `i`), with per-GPU HBM/DRAM capacity constraints and a min-max
//! objective over per-GPU coverage-weighted costs. Constraints 9–12 as
//! written multiply `p_{m,j}` with quantities derived from `x_{i,j}`, which is
//! a product of binaries; commercial solvers linearise this automatically.
//! [`MilpFormulation`] performs the standard linearisation explicitly by
//! introducing `y_{m,i,j} = p_{m,j} * x_{i,j}` with the usual three
//! inequalities, then hands the model to `recshard-milp`'s branch-and-bound.
//!
//! The formulation grows as `O(M * J * steps)` binaries, so it is only
//! practical for small instances; its role in this reproduction is to provide
//! *ground truth* against which the scalable [`StructuredSolver`]
//! (`crate::solver`) is validated.

use crate::config::RecShardConfig;
use crate::cost::TableCostModel;
use crate::error::RecShardError;
use recshard_data::ModelSpec;
use recshard_milp::{ConstraintSense, Model as MilpModel, Sense, VarId};
use recshard_sharding::{ShardingPlan, SystemSpec, TablePlacement};
use recshard_stats::DatasetProfile;

/// Builder/decoder for the exact RecShard MILP.
#[derive(Debug)]
pub struct MilpFormulation {
    config: RecShardConfig,
}

/// Handles to the decision variables of a built MILP.
#[derive(Debug, Clone)]
pub struct MilpVariables {
    /// `p[m][j]`: table `j` owned by GPU `m`.
    pub p: Vec<Vec<VarId>>,
    /// `x[j][i]`: table `j` selects ICDF step `i`.
    pub x: Vec<Vec<VarId>>,
    /// The max-cost variable `C`.
    pub c_max: VarId,
    /// Factor the cost coefficients were multiplied by for conditioning; the
    /// solved objective must be divided by it to recover milliseconds.
    pub cost_scale: f64,
}

impl MilpFormulation {
    /// Creates a formulation with the given configuration. Small ICDF step
    /// counts (e.g. 5–20) keep the model tractable for the exact solver.
    pub fn new(config: RecShardConfig) -> Self {
        Self { config }
    }

    /// Builds the MILP for a model/profile/system triple.
    ///
    /// # Errors
    ///
    /// Returns [`RecShardError::ProfileMismatch`] when the profile does not
    /// cover the model or [`RecShardError::InvalidConfig`] for a bad config.
    pub fn build(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> Result<(MilpModel, MilpVariables, Vec<TableCostModel>), RecShardError> {
        self.config
            .validate()
            .map_err(RecShardError::InvalidConfig)?;
        if profile.num_features() != model.num_features() {
            return Err(RecShardError::ProfileMismatch(format!(
                "profile covers {} features, model has {}",
                profile.num_features(),
                model.num_features()
            )));
        }
        let num_tables = model.num_features();
        let num_gpus = system.num_gpus();
        let steps = self.config.icdf_steps;
        let batch = model.batch_size();

        // One cost menu per (device class, table): GPU `m`'s cost rows are
        // priced under its own class's bandwidths. Menu geometry (bytes per
        // step) is class-invariant, so the reference class's menus describe
        // the split shapes for everyone.
        let costs_by_class: Vec<Vec<TableCostModel>> = system
            .classes()
            .iter()
            .map(|device| {
                profile
                    .profiles()
                    .iter()
                    .enumerate()
                    .map(|(t, p)| TableCostModel::build(t, p, device, batch, &self.config))
                    .collect()
            })
            .collect();
        let costs: &Vec<TableCostModel> = &costs_by_class[0];

        // Normalise coefficient magnitudes so the Big-M simplex stays well
        // conditioned: memory constraints are expressed relative to the
        // largest per-option HBM footprint and costs relative to the largest
        // per-option weighted cost (over every device class).
        let mem_scale = 1.0
            / costs
                .iter()
                .flat_map(|c| c.options.iter())
                .map(|o| o.hbm_bytes.max(o.uvm_bytes) as f64)
                .fold(1.0f64, f64::max);
        let cost_scale = 1.0
            / costs_by_class
                .iter()
                .flat_map(|menus| menus.iter())
                .flat_map(|c| c.options.iter())
                .map(|o| o.weighted_cost)
                .fold(1e-12f64, f64::max);

        let mut milp = MilpModel::new(Sense::Minimize);
        // Objective: minimize C (constraint 1 ties per-GPU costs to it).
        let c_max = milp.add_continuous("C", 1.0);

        // p_{m,j} and x_{j,i}.
        let p: Vec<Vec<VarId>> = (0..num_gpus)
            .map(|m| {
                (0..num_tables)
                    .map(|j| milp.add_binary(format!("p_{m}_{j}"), 0.0))
                    .collect()
            })
            .collect();
        let x: Vec<Vec<VarId>> = (0..num_tables)
            .map(|j| {
                (0..=steps)
                    .map(|i| milp.add_binary(format!("x_{j}_{i}"), 0.0))
                    .collect()
            })
            .collect();
        // Linearisation variables y_{m,j,i} = p_{m,j} * x_{j,i}.
        let y: Vec<Vec<Vec<VarId>>> = (0..num_gpus)
            .map(|m| {
                (0..num_tables)
                    .map(|j| {
                        (0..=steps)
                            .map(|i| milp.add_binary(format!("y_{m}_{j}_{i}"), 0.0))
                            .collect()
                    })
                    .collect()
            })
            .collect();

        // Constraint 2: each table owned by exactly one GPU.
        for j in 0..num_tables {
            let terms = (0..num_gpus).map(|m| (p[m][j], 1.0)).collect();
            milp.add_constraint(format!("own_{j}"), terms, ConstraintSense::Eq, 1.0);
        }
        // Constraint 6: each table selects exactly one ICDF step.
        for j in 0..num_tables {
            let terms = (0..=steps).map(|i| (x[j][i], 1.0)).collect();
            milp.add_constraint(format!("step_{j}"), terms, ConstraintSense::Eq, 1.0);
        }
        // Linearisation: y <= p, y <= x, y >= p + x - 1.
        for m in 0..num_gpus {
            for j in 0..num_tables {
                for i in 0..=steps {
                    milp.add_constraint(
                        format!("y_le_p_{m}_{j}_{i}"),
                        vec![(y[m][j][i], 1.0), (p[m][j], -1.0)],
                        ConstraintSense::Le,
                        0.0,
                    );
                    milp.add_constraint(
                        format!("y_le_x_{m}_{j}_{i}"),
                        vec![(y[m][j][i], 1.0), (x[j][i], -1.0)],
                        ConstraintSense::Le,
                        0.0,
                    );
                    milp.add_constraint(
                        format!("y_ge_px_{m}_{j}_{i}"),
                        vec![(y[m][j][i], 1.0), (p[m][j], -1.0), (x[j][i], -1.0)],
                        ConstraintSense::Ge,
                        -1.0,
                    );
                }
            }
        }
        // Constraint 9: per-GPU HBM capacity.  sum_j sum_i y * hbm_bytes(j,i) <= CapD.
        for m in 0..num_gpus {
            let mut terms = Vec::new();
            for j in 0..num_tables {
                for i in 0..=steps {
                    let bytes = costs[j].options[i].hbm_bytes as f64 * mem_scale;
                    if bytes != 0.0 {
                        terms.push((y[m][j][i], bytes));
                    }
                }
            }
            milp.add_constraint(
                format!("hbm_cap_{m}"),
                terms,
                ConstraintSense::Le,
                system.hbm_capacity(m) as f64 * mem_scale,
            );
        }
        // Constraint 10: per-GPU host DRAM capacity for the UVM remainder.
        for m in 0..num_gpus {
            let mut terms = Vec::new();
            for j in 0..num_tables {
                for i in 0..=steps {
                    let bytes = costs[j].options[i].uvm_bytes as f64 * mem_scale;
                    if bytes != 0.0 {
                        terms.push((y[m][j][i], bytes));
                    }
                }
            }
            milp.add_constraint(
                format!("dram_cap_{m}"),
                terms,
                ConstraintSense::Le,
                system.dram_capacity(m) as f64 * mem_scale,
            );
        }
        // Constraints 11+12+1: per-GPU coverage-weighted cost <= C. The C
        // variable absorbs the cost normalisation, so the reported objective
        // must be divided by `cost_scale` to recover milliseconds (see
        // `optimal_objective`).
        for m in 0..num_gpus {
            let menus = &costs_by_class[system.class_of(m)];
            let mut terms = Vec::new();
            for j in 0..num_tables {
                for i in 0..=steps {
                    let cost = menus[j].options[i].weighted_cost * cost_scale;
                    if cost != 0.0 {
                        terms.push((y[m][j][i], cost));
                    }
                }
            }
            terms.push((c_max, -1.0));
            milp.add_constraint(format!("cost_{m}"), terms, ConstraintSense::Le, 0.0);
        }

        let costs = costs_by_class
            .into_iter()
            .next()
            .expect("at least one device class");
        Ok((
            milp,
            MilpVariables {
                p,
                x,
                c_max,
                cost_scale,
            },
            costs,
        ))
    }

    /// Builds, solves and decodes the MILP into a sharding plan.
    ///
    /// # Errors
    ///
    /// Propagates build errors and solver errors ([`RecShardError::Milp`]).
    pub fn solve(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> Result<ShardingPlan, RecShardError> {
        self.solve_with(
            model,
            profile,
            system,
            recshard_milp::SolveOptions::default(),
        )
    }

    /// Like [`solve`](Self::solve) with explicit branch-and-bound options
    /// (e.g. warm starts disabled, to cross-check the warm-start path).
    ///
    /// The decoded plan's GPU labels are *canonicalised*: within each device
    /// class, GPUs are renumbered onto that class's sorted id list in order
    /// of first table ownership. The MILP's optimum set is closed under
    /// permutations of *identical* GPUs only, so symmetry breaking is
    /// restricted to those within-class permutation groups — relabelling
    /// never moves a table onto a GPU with different capacities or
    /// bandwidths, and equally-optimal symmetric solutions still decode to
    /// the identical plan (warm- and cold-started solves compare equal). On
    /// a uniform cluster there is one class covering every GPU, reproducing
    /// the historical global renumbering exactly.
    ///
    /// # Errors
    ///
    /// Propagates build errors and solver errors ([`RecShardError::Milp`]).
    pub fn solve_with(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
        options: recshard_milp::SolveOptions,
    ) -> Result<ShardingPlan, RecShardError> {
        self.solve_observed(
            model,
            profile,
            system,
            options,
            &mut recshard_obs::ObsHandle::noop(),
        )
    }

    /// Like [`solve_with`](Self::solve_with), forwarding branch-and-bound
    /// trace events (LP solves, node opens, prunes, incumbents) to `obs`.
    /// The solve itself is observation-independent.
    ///
    /// # Errors
    ///
    /// See [`solve_with`](Self::solve_with).
    pub fn solve_observed(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
        options: recshard_milp::SolveOptions,
        obs: &mut recshard_obs::ObsHandle<'_>,
    ) -> Result<ShardingPlan, RecShardError> {
        let (milp, vars, costs) = self.build(model, profile, system)?;
        let solution = milp.solve_observed(options, obs)?;
        let num_tables = model.num_features();
        let num_gpus = system.num_gpus();
        let steps = self.config.icdf_steps;

        let mut placements = Vec::with_capacity(num_tables);
        // Within-class canonical relabelling: each class hands out its own
        // sorted GPU ids in order of first table ownership.
        let mut canonical_of = vec![usize::MAX; num_gpus];
        let class_ids: Vec<Vec<usize>> = (0..system.num_classes())
            .map(|c| system.gpus_in_class(c))
            .collect();
        let mut next_in_class = vec![0usize; system.num_classes()];
        for (j, spec) in model.features().iter().enumerate() {
            let gpu = (0..num_gpus)
                .max_by(|&a, &b| {
                    solution
                        .value(vars.p[a][j])
                        .partial_cmp(&solution.value(vars.p[b][j]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("at least one GPU");
            if canonical_of[gpu] == usize::MAX {
                let class = system.class_of(gpu);
                canonical_of[gpu] = class_ids[class][next_in_class[class]];
                next_in_class[class] += 1;
            }
            let step = (0..=steps)
                .max_by(|&a, &b| {
                    solution
                        .value(vars.x[j][a])
                        .partial_cmp(&solution.value(vars.x[j][b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("at least one step");
            placements.push(TablePlacement {
                table: spec.id,
                gpu: canonical_of[gpu],
                hbm_rows: costs[j].options[step].hbm_rows,
                total_rows: spec.hash_size,
                row_bytes: spec.row_bytes(),
            });
        }
        Ok(ShardingPlan::new("recshard-milp", num_gpus, placements))
    }

    /// The optimal objective value (max per-GPU cost) of the exact MILP, in
    /// the same milliseconds unit the cost model uses.
    ///
    /// # Errors
    ///
    /// Propagates build and solver errors.
    pub fn optimal_objective(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> Result<f64, RecShardError> {
        let (milp, vars, _) = self.build(model, profile, system)?;
        Ok(milp.solve()?.objective() / vars.cost_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RecShardConfig;
    use crate::solver::StructuredSolver;
    use recshard_data::ModelSpec;
    use recshard_stats::DatasetProfiler;

    fn tiny_setup(
        tables: usize,
        seed: u64,
    ) -> (ModelSpec, DatasetProfile, SystemSpec, RecShardConfig) {
        let model = ModelSpec::small(tables, seed).with_batch_size(128);
        let profile = DatasetProfiler::profile_model(&model, 1_500, seed + 9);
        // Tight HBM so placement actually matters.
        let system = SystemSpec::uniform(
            2,
            model.total_bytes() / 5,
            model.total_bytes() * 2,
            1555.0,
            16.0,
        );
        let config = RecShardConfig::default().with_icdf_steps(6);
        (model, profile, system, config)
    }

    #[test]
    fn milp_variable_count_matches_structure() {
        let (model, profile, system, config) = tiny_setup(3, 41);
        let formulation = MilpFormulation::new(config);
        let (milp, vars, _) = formulation.build(&model, &profile, &system).unwrap();
        let steps = config.icdf_steps + 1;
        // 1 (C) + M*J (p) + J*steps (x) + M*J*steps (y)
        let expected = 1 + 2 * 3 + 3 * steps + 2 * 3 * steps;
        assert_eq!(milp.num_vars(), expected);
        assert_eq!(vars.p.len(), 2);
        assert_eq!(vars.x.len(), 3);
    }

    #[test]
    fn exact_plan_is_valid_and_splits_under_pressure() {
        let (model, profile, system, config) = tiny_setup(3, 42);
        let plan = MilpFormulation::new(config)
            .solve(&model, &profile, &system)
            .unwrap();
        plan.validate(&model, &system).unwrap();
        assert!(
            plan.total_uvm_rows() > 0,
            "tight HBM must push some rows to UVM"
        );
        assert_eq!(plan.strategy(), "recshard-milp");
    }

    #[test]
    fn structured_solver_close_to_exact_optimum() {
        let (model, profile, system, config) = tiny_setup(4, 43);
        let formulation = MilpFormulation::new(config);
        let exact_obj = formulation
            .optimal_objective(&model, &profile, &system)
            .unwrap();

        let mut structured_cfg = config;
        structured_cfg.hbm_slack = 0.0;
        let solver = StructuredSolver::new(structured_cfg);
        let plan = solver.solve(&model, &profile, &system).unwrap();
        let structured_obj = solver
            .gpu_costs(&model, &profile, &system, &plan)
            .into_iter()
            .fold(0.0f64, f64::max);

        assert!(
            structured_obj <= exact_obj * 1.35 + 1e-9,
            "structured solver objective {structured_obj} too far from exact optimum {exact_obj}"
        );
        // And the exact optimum can never beat a relaxation of itself by definition.
        assert!(exact_obj <= structured_obj + 1e-9);
    }
}
