//! Sparse bounded-variable revised simplex with dual-simplex warm starts.
//!
//! The dense Big-M tableau in [`crate::simplex`] rebuilds an
//! `O(m · (n + 2m))` tableau per solve and turns every finite variable bound
//! into an extra row, which is what made the exact MILP path collapse beyond
//! toy sizes. This module keeps the constraint matrix in sparse
//! column-major form, handles variable bounds *natively* (no bound rows, no
//! artificial columns), and maintains only a dense `m × m` basis inverse that
//! is updated in product form per pivot and refactorised periodically for
//! numerical hygiene.
//!
//! Branch-and-bound is the intended customer: a node differs from its parent
//! only in one variable bound, so the parent's optimal basis stays *dual
//! feasible* and the dual simplex re-optimises in a handful of pivots instead
//! of re-solving from scratch ([`SparseLp::solve_warm`]).
//!
//! Scope: the solver requires a dual-feasible starting point from the slack
//! basis, which exists whenever every variable with a negative
//! minimization-form cost has a finite upper bound and every variable with a
//! positive cost has a finite lower bound (true for all RecShard
//! formulations: binaries plus the non-negative max-cost variable).
//! [`SparseLp::try_new`] returns `None` otherwise and callers fall back to
//! the dense tableau.

use crate::error::MilpError;
use crate::model::{ConstraintSense, Model, Sense};
use std::rc::Rc;

/// Feasibility/optimality tolerance of the sparse solver.
const EPS: f64 = 1e-9;
/// Primal bound-violation tolerance used by the dual ratio test.
const FEAS_EPS: f64 = 1e-7;
/// Pivots between basis refactorisations.
const REFACTOR_EVERY: usize = 64;

/// Where a nonbasic variable currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarStatus {
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Basic (value read from the basis solve).
    Basic,
}

/// A reusable snapshot of an optimal basis, shared between branch-and-bound
/// nodes via `Rc` (children warm-start the dual simplex from it).
#[derive(Debug, Clone, PartialEq)]
pub struct BasisSnapshot {
    /// Basic variable index per row.
    pub basic: Vec<usize>,
    /// Status of every variable (structural then slack).
    pub status: Vec<VarStatus>,
}

/// Result of a sparse LP solve.
#[derive(Debug, Clone)]
pub struct SparseLpSolution {
    /// Objective in the model's original sense.
    pub objective: f64,
    /// Structural variable values.
    pub values: Vec<f64>,
    /// Dual-simplex pivots performed.
    pub pivots: usize,
    /// Basis refactorisations performed (the initial factorisation plus one
    /// every `REFACTOR_EVERY` pivots).
    pub refactorizations: usize,
    /// The optimal basis, for warm-starting child nodes.
    pub basis: Rc<BasisSnapshot>,
}

/// A model in computational standard form `A x + s = b` with native bounds:
/// sparse columns, minimization-form costs, and per-row slack bounds encoding
/// the constraint sense.
#[derive(Debug, Clone)]
pub struct SparseLp {
    /// Structural variable count.
    n: usize,
    /// Row count.
    m: usize,
    /// Sparse structural columns: `(row, coeff)` lists.
    cols: Vec<Vec<(usize, f64)>>,
    /// Minimization-form structural costs (slacks cost 0).
    cost: Vec<f64>,
    /// Right-hand sides.
    rhs: Vec<f64>,
    /// Slack bounds per row (encode Le / Ge / Eq).
    slack_lower: Vec<f64>,
    slack_upper: Vec<f64>,
    /// Whether the original model maximizes.
    maximize: bool,
}

/// Mutable solver state for one solve: basis, inverse, primal values and
/// reduced costs.
struct Workspace<'a> {
    lp: &'a SparseLp,
    /// Effective bounds of every variable (structural then slack).
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Basic variable per row.
    basic: Vec<usize>,
    /// Status per variable.
    status: Vec<VarStatus>,
    /// Dense row-major basis inverse.
    binv: Vec<f64>,
    /// Basic variable values.
    xb: Vec<f64>,
    /// Reduced costs per variable (basic entries are 0).
    d: Vec<f64>,
    pivots: usize,
    refactorizations: usize,
}

impl SparseLp {
    /// Builds the standard form of `model`, or `None` when the model has a
    /// variable whose cost sign demands an infinite bound for the
    /// dual-feasible slack-basis start (callers then use the dense tableau).
    pub fn try_new(model: &Model) -> Option<Self> {
        let n = model.num_vars();
        let m = model.num_constraints();
        let maximize = model.sense() == Sense::Maximize;
        let sign = if maximize { -1.0 } else { 1.0 };
        let cost: Vec<f64> = model
            .variables()
            .iter()
            .map(|v| sign * v.objective)
            .collect();
        // The dual-feasible start must place every structural variable at a
        // finite bound consistent with its cost sign.
        for (v, &c) in model.variables().iter().zip(&cost) {
            let lower_ok = v.lower.is_finite();
            let upper_ok = v.upper.is_finite();
            let ok = if c > EPS {
                lower_ok
            } else if c < -EPS {
                upper_ok
            } else {
                lower_ok || upper_ok
            };
            if !ok {
                return None;
            }
        }
        let mut cols = vec![Vec::new(); n];
        let mut rhs = Vec::with_capacity(m);
        let mut slack_lower = Vec::with_capacity(m);
        let mut slack_upper = Vec::with_capacity(m);
        for (i, c) in model.constraints().iter().enumerate() {
            // Accumulate duplicate terms exactly as the dense path does.
            let mut acc: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len());
            for &(v, coeff) in &c.terms {
                if let Some(e) = acc.iter_mut().find(|(j, _)| *j == v.index()) {
                    e.1 += coeff;
                } else {
                    acc.push((v.index(), coeff));
                }
            }
            for (j, coeff) in acc {
                if coeff != 0.0 {
                    cols[j].push((i, coeff));
                }
            }
            rhs.push(c.rhs);
            let (lo, hi) = match c.sense {
                ConstraintSense::Le => (0.0, f64::INFINITY),
                ConstraintSense::Ge => (f64::NEG_INFINITY, 0.0),
                ConstraintSense::Eq => (0.0, 0.0),
            };
            slack_lower.push(lo);
            slack_upper.push(hi);
        }
        Some(Self {
            n,
            m,
            cols,
            cost,
            rhs,
            slack_lower,
            slack_upper,
            maximize,
        })
    }

    /// Structural column `j` of the standard form (slack columns are unit
    /// vectors and never materialised).
    fn column(&self, j: usize) -> &[(usize, f64)] {
        &self.cols[j]
    }

    /// Solves from the all-slack basis with statuses chosen by cost sign
    /// (the "cold" dual-feasible start).
    ///
    /// # Errors
    ///
    /// [`MilpError::Infeasible`] when no point satisfies the constraints and
    /// bounds, [`MilpError::InvalidModel`] on numerical failure.
    pub fn solve_cold(&self, lower: &[f64], upper: &[f64]) -> Result<SparseLpSolution, MilpError> {
        let mut status = Vec::with_capacity(self.n + self.m);
        for j in 0..self.n {
            let c = self.cost[j];
            let s = if c > EPS {
                VarStatus::AtLower
            } else if c < -EPS {
                VarStatus::AtUpper
            } else if lower[j].is_finite() {
                VarStatus::AtLower
            } else {
                VarStatus::AtUpper
            };
            status.push(s);
        }
        for _ in 0..self.m {
            status.push(VarStatus::Basic);
        }
        let basic: Vec<usize> = (self.n..self.n + self.m).collect();
        self.solve_from(lower, upper, BasisSnapshot { basic, status })
    }

    /// Warm-starts the dual simplex from a previous optimal basis under
    /// (possibly tightened) bounds — the branch-and-bound fast path.
    ///
    /// # Errors
    ///
    /// As [`solve_cold`](Self::solve_cold); a singular inherited basis is
    /// reported as [`MilpError::InvalidModel`] and callers should fall back
    /// to a cold solve.
    pub fn solve_warm(
        &self,
        lower: &[f64],
        upper: &[f64],
        basis: &BasisSnapshot,
    ) -> Result<SparseLpSolution, MilpError> {
        self.solve_from(lower, upper, basis.clone())
    }

    fn solve_from(
        &self,
        lower: &[f64],
        upper: &[f64],
        snapshot: BasisSnapshot,
    ) -> Result<SparseLpSolution, MilpError> {
        debug_assert_eq!(lower.len(), self.n);
        debug_assert_eq!(upper.len(), self.n);
        for j in 0..self.n {
            if lower[j] > upper[j] + FEAS_EPS {
                return Err(MilpError::Infeasible);
            }
        }
        let mut full_lower = lower.to_vec();
        let mut full_upper = upper.to_vec();
        full_lower.extend_from_slice(&self.slack_lower);
        full_upper.extend_from_slice(&self.slack_upper);

        let mut ws = Workspace {
            lp: self,
            lower: full_lower,
            upper: full_upper,
            basic: snapshot.basic,
            status: snapshot.status,
            binv: Vec::new(),
            xb: Vec::new(),
            d: Vec::new(),
            pivots: 0,
            refactorizations: 0,
        };
        // A nonbasic variable sitting on a bound that is no longer finite (or
        // whose bounds were swapped tighter) is re-anchored to the nearest
        // finite bound; branch-and-bound only tightens bounds so this is a
        // no-op there, but it keeps the API safe for other callers.
        for j in 0..ws.lp.n {
            match ws.status[j] {
                VarStatus::AtLower if !ws.lower[j].is_finite() => {
                    ws.status[j] = VarStatus::AtUpper;
                }
                VarStatus::AtUpper if !ws.upper[j].is_finite() => {
                    ws.status[j] = VarStatus::AtLower;
                }
                _ => {}
            }
        }
        ws.refactorize()?;
        ws.dual_simplex()?;
        Ok(ws.into_solution())
    }

    /// Whether the original model maximizes.
    pub fn maximize(&self) -> bool {
        self.maximize
    }
}

impl Workspace<'_> {
    /// Value of nonbasic variable `j` implied by its status.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => self.lower[j],
            VarStatus::AtUpper => self.upper[j],
            VarStatus::Basic => unreachable!("basic variable has no bound value"),
        }
    }

    /// Rebuilds `binv` from the basis by Gauss-Jordan elimination with
    /// partial pivoting, then recomputes basic values and reduced costs.
    fn refactorize(&mut self) -> Result<(), MilpError> {
        self.refactorizations += 1;
        let m = self.lp.m;
        let n = self.lp.n;
        // Assemble B column-wise into a dense working matrix.
        let mut mat = vec![0.0f64; m * m];
        for (col, &var) in self.basic.iter().enumerate() {
            if var < n {
                for &(row, coeff) in self.lp.column(var) {
                    mat[row * m + col] = coeff;
                }
            } else {
                mat[(var - n) * m + col] = 1.0;
            }
        }
        let mut inv = vec![0.0f64; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivot.
            let mut piv = col;
            let mut best = mat[col * m + col].abs();
            for r in col + 1..m {
                let v = mat[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-11 {
                return Err(MilpError::InvalidModel(
                    "singular basis during refactorisation".into(),
                ));
            }
            if piv != col {
                // Row swaps permute equations (applied to both sides), not
                // basis columns — `basic` keeps its order.
                for k in 0..m {
                    mat.swap(col * m + k, piv * m + k);
                    inv.swap(col * m + k, piv * m + k);
                }
            }
            let p = mat[col * m + col];
            for k in 0..m {
                mat[col * m + k] /= p;
                inv[col * m + k] /= p;
            }
            for r in 0..m {
                if r != col {
                    let f = mat[r * m + col];
                    if f != 0.0 {
                        for k in 0..m {
                            mat[r * m + k] -= f * mat[col * m + k];
                            inv[r * m + k] -= f * inv[col * m + k];
                        }
                    }
                }
            }
        }
        self.binv = inv;
        self.recompute_xb();
        self.recompute_reduced_costs();
        Ok(())
    }

    /// `x_B = B^{-1} (b - N x_N)`.
    fn recompute_xb(&mut self) {
        let m = self.lp.m;
        let n = self.lp.n;
        let mut adj = self.lp.rhs.clone();
        for j in 0..n + m {
            if self.status[j] == VarStatus::Basic {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v == 0.0 {
                continue;
            }
            if j < n {
                for &(row, coeff) in self.lp.column(j) {
                    adj[row] -= coeff * v;
                }
            } else {
                adj[j - n] -= v;
            }
        }
        let mut xb = vec![0.0f64; m];
        for r in 0..m {
            let mut acc = 0.0;
            let row = &self.binv[r * m..(r + 1) * m];
            for k in 0..m {
                acc += row[k] * adj[k];
            }
            xb[r] = acc;
        }
        self.xb = xb;
    }

    /// `d_j = c_j - c_B^T B^{-1} A_j` for every variable.
    fn recompute_reduced_costs(&mut self) {
        let m = self.lp.m;
        let n = self.lp.n;
        // y^T = c_B^T B^{-1}
        let mut y = vec![0.0f64; m];
        for (r, &var) in self.basic.iter().enumerate() {
            let cb = if var < n { self.lp.cost[var] } else { 0.0 };
            if cb != 0.0 {
                for k in 0..m {
                    y[k] += cb * self.binv[r * m + k];
                }
            }
        }
        let mut d = vec![0.0f64; n + m];
        for j in 0..n {
            let mut acc = self.lp.cost[j];
            for &(row, coeff) in self.lp.column(j) {
                acc -= y[row] * coeff;
            }
            d[j] = acc;
        }
        for r in 0..m {
            d[n + r] = -y[r];
        }
        for &var in &self.basic {
            d[var] = 0.0;
        }
        self.d = d;
    }

    /// The dual simplex main loop: starting dual feasible, drive out primal
    /// bound violations while keeping the reduced costs sign-consistent.
    fn dual_simplex(&mut self) -> Result<(), MilpError> {
        let m = self.lp.m;
        let n = self.lp.n;
        let total = n + m;
        let max_pivots = 200 * (m + n + 10);
        let mut since_refactor = 0usize;
        let mut degenerate_streak = 0usize;

        loop {
            // Leaving row: largest primal bound violation (deterministic
            // tie-break on the basic variable index).
            let mut leave: Option<(usize, f64, bool)> = None; // (row, violation, below_lower)
            for r in 0..m {
                let var = self.basic[r];
                let x = self.xb[r];
                if x < self.lower[var] - FEAS_EPS {
                    let viol = self.lower[var] - x;
                    if leave
                        .map(|(lr, lv, _)| {
                            viol > lv + EPS || (viol > lv - EPS && var < self.basic[lr])
                        })
                        .unwrap_or(true)
                    {
                        leave = Some((r, viol, true));
                    }
                } else if x > self.upper[var] + FEAS_EPS {
                    let viol = x - self.upper[var];
                    if leave
                        .map(|(lr, lv, _)| {
                            viol > lv + EPS || (viol > lv - EPS && var < self.basic[lr])
                        })
                        .unwrap_or(true)
                    {
                        leave = Some((r, viol, false));
                    }
                }
            }
            let Some((r, _, below_lower)) = leave else {
                return Ok(()); // primal feasible + dual feasible = optimal
            };

            // Row r of B^{-1}, then alpha_j = rho . A_j for nonbasic j.
            let rho = &self.binv[r * m..(r + 1) * m];
            let use_bland = degenerate_streak > 40;
            let mut enter: Option<(usize, f64, f64)> = None; // (var, alpha, |ratio|)
            for j in 0..total {
                if self.status[j] == VarStatus::Basic {
                    continue;
                }
                // Fixed variables can never move off their bound.
                if self.upper[j] - self.lower[j] < EPS {
                    continue;
                }
                let alpha = if j < n {
                    let mut acc = 0.0;
                    for &(row, coeff) in self.lp.column(j) {
                        acc += rho[row] * coeff;
                    }
                    acc
                } else {
                    rho[j - n]
                };
                let eligible = if below_lower {
                    (self.status[j] == VarStatus::AtLower && alpha < -EPS)
                        || (self.status[j] == VarStatus::AtUpper && alpha > EPS)
                } else {
                    (self.status[j] == VarStatus::AtLower && alpha > EPS)
                        || (self.status[j] == VarStatus::AtUpper && alpha < -EPS)
                };
                if !eligible {
                    continue;
                }
                let ratio = (self.d[j] / alpha).abs();
                let better = match enter {
                    None => true,
                    Some((bj, balpha, bratio)) => {
                        if use_bland {
                            j < bj
                        } else {
                            ratio < bratio - EPS
                                || (ratio < bratio + EPS
                                    && (alpha.abs() > balpha.abs() + EPS
                                        || (alpha.abs() > balpha.abs() - EPS && j < bj)))
                        }
                    }
                };
                if better {
                    enter = Some((j, alpha, ratio));
                }
            }
            let Some((q, alpha_q, _)) = enter else {
                // No way to repair the violated row: primal infeasible.
                return Err(MilpError::Infeasible);
            };

            // Primal step that lands the leaving variable on its violated
            // bound, and the dual step that zeroes d_q.
            let leave_var = self.basic[r];
            let target = if below_lower {
                self.lower[leave_var]
            } else {
                self.upper[leave_var]
            };
            let t = (self.xb[r] - target) / alpha_q;
            let theta = self.d[q] / alpha_q;

            // FTRAN: w = B^{-1} A_q.
            let mut w = vec![0.0f64; m];
            if q < n {
                for &(row, coeff) in self.lp.column(q) {
                    if coeff != 0.0 {
                        for i in 0..m {
                            w[i] += self.binv[i * m + row] * coeff;
                        }
                    }
                }
            } else {
                let row = q - n;
                for i in 0..m {
                    w[i] = self.binv[i * m + row];
                }
            }
            debug_assert!((w[r] - alpha_q).abs() < 1e-6 * alpha_q.abs().max(1.0));

            // Update primal values.
            let entering_value = self.nonbasic_value(q) + t;
            for i in 0..m {
                if i != r {
                    self.xb[i] -= w[i] * t;
                }
            }
            self.xb[r] = entering_value;

            // Update reduced costs: d_j -= theta * alpha_j for all nonbasic j.
            // Recomputing alpha per column here would double the work, so use
            // the identity d' = d - theta * (rho_row as a linear functional):
            // alpha for slacks is rho[row]; for structural it is the sparse
            // dot — fold theta into a scaled copy of rho instead.
            if theta.abs() > 0.0 {
                let scaled: Vec<f64> = rho.iter().map(|&v| v * theta).collect();
                for j in 0..n {
                    if self.status[j] != VarStatus::Basic {
                        let mut acc = 0.0;
                        for &(row, coeff) in self.lp.column(j) {
                            acc += scaled[row] * coeff;
                        }
                        self.d[j] -= acc;
                    }
                }
                for row in 0..m {
                    let j = n + row;
                    if self.status[j] != VarStatus::Basic {
                        self.d[j] -= scaled[row];
                    }
                }
            }
            self.d[leave_var] = -theta;
            self.d[q] = 0.0;

            // Update the basis inverse in product form: pivot on w[r].
            let piv = w[r];
            for k in 0..m {
                self.binv[r * m + k] /= piv;
            }
            for i in 0..m {
                if i != r {
                    let f = w[i];
                    if f.abs() > 1e-13 {
                        for k in 0..m {
                            self.binv[i * m + k] -= f * self.binv[r * m + k];
                        }
                    }
                }
            }

            self.status[leave_var] = if below_lower {
                VarStatus::AtLower
            } else {
                VarStatus::AtUpper
            };
            self.status[q] = VarStatus::Basic;
            self.basic[r] = q;

            if t.abs() < EPS {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
            self.pivots += 1;
            since_refactor += 1;
            if self.pivots > max_pivots {
                return Err(MilpError::InvalidModel(
                    "dual simplex pivot limit exceeded (numerical trouble)".into(),
                ));
            }
            if since_refactor >= REFACTOR_EVERY {
                since_refactor = 0;
                self.refactorize()?;
            }
        }
    }

    fn into_solution(self) -> SparseLpSolution {
        let n = self.lp.n;
        let mut values = vec![0.0f64; n];
        for j in 0..n {
            if self.status[j] != VarStatus::Basic {
                values[j] = match self.status[j] {
                    VarStatus::AtLower => self.lower[j],
                    VarStatus::AtUpper => self.upper[j],
                    VarStatus::Basic => unreachable!(),
                };
            }
        }
        for (r, &var) in self.basic.iter().enumerate() {
            if var < n {
                values[var] = self.xb[r];
            }
        }
        let min_objective: f64 = (0..n).map(|j| self.lp.cost[j] * values[j]).sum();
        let objective = if self.lp.maximize {
            -min_objective
        } else {
            min_objective
        };
        SparseLpSolution {
            objective,
            values,
            pivots: self.pivots,
            refactorizations: self.refactorizations,
            basis: Rc::new(BasisSnapshot {
                basic: self.basic,
                status: self.status,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, VarKind};

    fn bounds(model: &Model) -> (Vec<f64>, Vec<f64>) {
        (
            model.variables().iter().map(|v| v.lower).collect(),
            model.variables().iter().map(|v| v.upper).collect(),
        )
    }

    #[test]
    fn matches_dense_on_bounded_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y in [0, 10].
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0, 3.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 10.0, 5.0);
        m.add_constraint("c1", vec![(x, 1.0)], ConstraintSense::Le, 4.0);
        m.add_constraint("c2", vec![(y, 2.0)], ConstraintSense::Le, 12.0);
        m.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], ConstraintSense::Le, 18.0);
        let lp = SparseLp::try_new(&m).unwrap();
        let (lo, hi) = bounds(&m);
        let sol = lp.solve_cold(&lo, &hi).unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-6, "obj {}", sol.objective);
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn handles_ge_and_eq_rows() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 → x=7, y=3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 2.0);
        let y = m.add_continuous("y", 3.0);
        m.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], ConstraintSense::Ge, 10.0);
        m.add_constraint("xmin", vec![(x, 1.0)], ConstraintSense::Ge, 2.0);
        m.add_constraint("ymin", vec![(y, 1.0)], ConstraintSense::Ge, 3.0);
        let lp = SparseLp::try_new(&m).unwrap();
        let (lo, hi) = bounds(&m);
        let sol = lp.solve_cold(&lo, &hi).unwrap();
        assert!((sol.objective - 23.0).abs() < 1e-6, "obj {}", sol.objective);

        // min x + y s.t. x + 2y = 4, x - y = 1 → x=2, y=1.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", 1.0);
        m.add_constraint("e1", vec![(x, 1.0), (y, 2.0)], ConstraintSense::Eq, 4.0);
        m.add_constraint("e2", vec![(x, 1.0), (y, -1.0)], ConstraintSense::Eq, 1.0);
        let lp = SparseLp::try_new(&m).unwrap();
        let (lo, hi) = bounds(&m);
        let sol = lp.solve_cold(&lo, &hi).unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.0);
        m.add_constraint("a", vec![(x, 1.0)], ConstraintSense::Ge, 5.0);
        m.add_constraint("b", vec![(x, 1.0)], ConstraintSense::Le, 3.0);
        let lp = SparseLp::try_new(&m).unwrap();
        let (lo, hi) = bounds(&m);
        assert!(matches!(
            lp.solve_cold(&lo, &hi),
            Err(MilpError::Infeasible)
        ));
    }

    #[test]
    fn rejects_unsupported_cost_sign_bound_combinations() {
        // max x with x unbounded above cannot start dual feasible.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 1.0);
        m.add_constraint("a", vec![(x, 1.0)], ConstraintSense::Ge, 0.0);
        assert!(SparseLp::try_new(&m).is_none());
    }

    #[test]
    fn warm_start_reoptimizes_after_bound_tightening() {
        // Knapsack LP relaxation; tighten one variable like a B&B down-branch.
        let mut m = Model::new(Sense::Maximize);
        let vals = [10.0, 13.0, 7.0, 4.0];
        let weights = [3.0, 4.0, 2.0, 1.0];
        let vars: Vec<_> = (0..4)
            .map(|i| m.add_binary(format!("x{i}"), vals[i]))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            ConstraintSense::Le,
            7.0,
        );
        let lp = SparseLp::try_new(&m).unwrap();
        let (lo, hi) = bounds(&m);
        let root = lp.solve_cold(&lo, &hi).unwrap();

        let mut hi2 = hi.clone();
        hi2[1] = 0.0; // forbid item 1
        let warm = lp.solve_warm(&lo, &hi2, &root.basis).unwrap();
        let cold = lp.solve_cold(&lo, &hi2).unwrap();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-8,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        // The child differs from the parent in one bound, so the warm start
        // must re-optimise in at most a couple of dual pivots.
        assert!(warm.pivots <= 2, "warm start took {} pivots", warm.pivots);
    }

    #[test]
    fn fixed_bounds_force_variable_values() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 10.0, 1.0);
        m.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], ConstraintSense::Ge, 5.0);
        let lp = SparseLp::try_new(&m).unwrap();
        let sol = lp.solve_cold(&[3.0, 0.0], &[3.0, 10.0]).unwrap();
        assert!((sol.values[0] - 3.0).abs() < 1e-9);
        assert!((sol.values[1] - 2.0).abs() < 1e-6);
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }
}
