//! Capacity-constrained sharding of a scaled-down RM2: the paper's headline
//! scenario, where the model is roughly twice as large as aggregate HBM and
//! the sharding decision determines whether hot rows pay the UVM penalty.
//!
//! Run with
//! `cargo run --release -p recshard-bench --example capacity_constrained_sharding`.

#![allow(clippy::print_stdout)]
use recshard::analysis::PlanComparison;
use recshard::{RecShard, RecShardConfig};
use recshard_bench::{ExperimentConfig, Strategy};
use recshard_data::RmKind;
use recshard_memsim::EmbeddingOpSimulator;
use recshard_stats::DatasetProfiler;

fn main() {
    // A faster-than-default configuration so the example finishes quickly.
    let mut cfg = ExperimentConfig::fast();
    cfg.scale = 8_192;
    cfg.profile_samples = 2_000;
    cfg.sim_iterations = 2;
    cfg.sim_batch = 128;

    let model = cfg.model(RmKind::Rm2);
    let system = cfg.system();
    println!(
        "RM2 at 1/{} scale: {} tables, {:.0} MB of embeddings vs {:.0} MB of aggregate HBM",
        cfg.scale,
        model.num_features(),
        model.total_bytes() as f64 / 1e6,
        system.total_hbm_capacity() as f64 / 1e6
    );

    let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);
    let recshard_plan = RecShard::new(RecShardConfig::default())
        .plan(&model, &profile, &system)
        .expect("recshard plan");

    println!();
    println!("strategy           | iter time (ms) | UVM accesses/GPU | rows promoted vs RecShard");
    for strategy in Strategy::all() {
        let plan = strategy.plan(&model, &profile, &system);
        let mut sim = EmbeddingOpSimulator::new(&model, &plan, &profile, &system, cfg.sim_config());
        let report = sim.run(cfg.sim_iterations, cfg.sim_batch, cfg.seed);
        let disparity = PlanComparison::between(&recshard_plan, &plan);
        println!(
            "{:<18} | {:>14.3} | {:>16.0} | UVM->HBM {:.1}%, HBM->UVM {:.1}%",
            strategy.label(),
            report.iteration_time_ms(),
            report.mean_uvm_accesses_per_gpu(),
            disparity.uvm_to_hbm * 100.0,
            disparity.hbm_to_uvm * 100.0
        );
    }
    println!();
    println!(
        "RecShard's plan keeps {:.1}% of all rows in UVM (cold and hash-collision slack) yet \
         sources almost all accesses from HBM — the fine-grained partitioning the baselines, \
         which place whole tables, cannot express.",
        recshard_plan.uvm_row_fraction() * 100.0
    );
}
