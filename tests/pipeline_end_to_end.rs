//! End-to-end integration test: profile → shard → remap → simulate on a
//! capacity-constrained system, checking the invariants every stage must
//! uphold together.

use recshard::{RecShard, RecShardConfig};
use recshard_data::ModelSpec;
use recshard_memsim::{EmbeddingOpSimulator, SimConfig};
use recshard_sharding::{MemoryTier, SystemSpec};

#[test]
fn full_pipeline_respects_all_invariants() {
    let model = ModelSpec::small(16, 101).with_batch_size(512);
    let system = SystemSpec::uniform(
        4,
        model.total_bytes() / 10,
        model.total_bytes(),
        1555.0,
        16.0,
    );
    let out = RecShard::new(RecShardConfig::default())
        .run(&model, &system, 3_000, 5)
        .expect("pipeline");

    // Plan structurally valid and within capacity.
    out.plan.validate(&model, &system).expect("plan valid");
    // Every table got a remap table covering every row exactly once.
    assert_eq!(out.remap_tables.len(), model.num_features());
    for (remap, placement) in out.remap_tables.iter().zip(out.plan.placements()) {
        assert_eq!(remap.total_rows(), placement.total_rows);
        assert_eq!(remap.hbm_rows() + remap.uvm_rows(), placement.total_rows);
    }
    // Profiled hot rows of split tables are HBM-resident.
    for (t, prof) in out.profile.profiles().iter().enumerate() {
        let placement = &out.plan.placements()[t];
        if placement.hbm_rows > 0 && !prof.ranked_rows.is_empty() {
            assert_eq!(
                out.remap_tables[t].tier_of(prof.ranked_rows[0]),
                MemoryTier::Hbm
            );
        }
    }

    // Simulated accesses are conserved and mostly HBM-resident.
    let mut sim = EmbeddingOpSimulator::new(
        &model,
        &out.plan,
        &out.profile,
        &system,
        SimConfig {
            kernel_overhead_us_per_table: 0.0,
            scale_to_batch: None,
        },
    );
    let report = sim.run(3, 256, 9);
    let hbm: f64 = report
        .per_gpu_mean_counters()
        .iter()
        .map(|c| c.hbm_accesses as f64)
        .sum();
    let uvm: f64 = report
        .per_gpu_mean_counters()
        .iter()
        .map(|c| c.uvm_accesses as f64)
        .sum();
    assert!(hbm > 0.0);
    assert!(
        uvm / (hbm + uvm) < 0.35,
        "RecShard should keep most accesses in HBM, got UVM share {}",
        uvm / (hbm + uvm)
    );
}

#[test]
fn pipeline_scales_with_gpu_count() {
    let model = ModelSpec::small(12, 55);
    for gpus in [1usize, 2, 4, 8] {
        let system = SystemSpec::uniform(
            gpus,
            (model.total_bytes() / (gpus as u64 * 2)).max(1024),
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let out = RecShard::default()
            .run(&model, &system, 1_000, 3)
            .expect("pipeline");
        out.plan.validate(&model, &system).expect("plan valid");
        // Every GPU index used by the plan is within range.
        assert!(out.plan.placements().iter().all(|p| p.gpu < gpus));
    }
}

#[test]
fn exact_milp_and_structured_solver_agree_on_tiny_instances() {
    let model = ModelSpec::small(3, 77).with_batch_size(64);
    let system = SystemSpec::uniform(
        2,
        model.total_bytes() / 4,
        model.total_bytes() * 2,
        1555.0,
        16.0,
    );
    let profile = recshard_stats::DatasetProfiler::profile_model(&model, 1_000, 1);

    let exact_cfg = RecShardConfig::default()
        .with_exact_milp()
        .with_icdf_steps(5);
    let exact = RecShard::new(exact_cfg)
        .plan(&model, &profile, &system)
        .expect("exact plan");
    let structured = RecShard::new(RecShardConfig::default().with_icdf_steps(5))
        .plan(&model, &profile, &system)
        .expect("structured plan");

    exact.validate(&model, &system).unwrap();
    structured.validate(&model, &system).unwrap();
    // Both must serve the overwhelming majority of accesses from HBM.
    let est = recshard_memsim::AnalyticalEstimator::new(&profile, &system, 64);
    assert!(est.uvm_access_fraction(&exact) < 0.2);
    assert!(est.uvm_access_fraction(&structured) < 0.2);
}
