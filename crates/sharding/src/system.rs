//! Training-system specification (Section 5.2 of the paper).

use serde::{Deserialize, Serialize};

/// Number of bytes in one gibibyte.
pub const GIB: u64 = 1 << 30;

/// Description of the (homogeneous) training system: GPU count, per-GPU HBM
/// reserved for embeddings, per-GPU host DRAM reachable over UVM, and the
/// bandwidths of both tiers as seen from a GPU.
///
/// The paper's evaluation system reserves 24 GB of HBM and 128 GB of host
/// DRAM per GPU, with A100-class HBM bandwidth and PCIe 3.0x16 UVM bandwidth;
/// [`SystemSpec::paper_16_gpu`] encodes exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Number of GPUs (trainers).
    pub num_gpus: usize,
    /// HBM bytes reserved for embedding tables on each GPU (`Cap_D`).
    pub hbm_capacity_per_gpu: u64,
    /// Host DRAM bytes reachable via UVM for each GPU (`Cap_H`).
    pub dram_capacity_per_gpu: u64,
    /// HBM bandwidth in GB/s as seen by the embedding kernels (`BW_HBM`).
    pub hbm_bandwidth_gbps: f64,
    /// UVM (interconnect) bandwidth in GB/s (`BW_UVM`).
    pub uvm_bandwidth_gbps: f64,
}

impl SystemSpec {
    /// Builds a homogeneous system.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus == 0` or either bandwidth is not positive.
    pub fn uniform(
        num_gpus: usize,
        hbm_capacity_per_gpu: u64,
        dram_capacity_per_gpu: u64,
        hbm_bandwidth_gbps: f64,
        uvm_bandwidth_gbps: f64,
    ) -> Self {
        assert!(num_gpus > 0, "system needs at least one GPU");
        assert!(
            hbm_bandwidth_gbps > 0.0 && uvm_bandwidth_gbps > 0.0,
            "bandwidths must be positive"
        );
        Self {
            num_gpus,
            hbm_capacity_per_gpu,
            dram_capacity_per_gpu,
            hbm_bandwidth_gbps,
            uvm_bandwidth_gbps,
        }
    }

    /// The 16-GPU evaluation system of the paper: 24 GB HBM + 128 GB host
    /// DRAM per GPU, A100-class HBM bandwidth (1555 GB/s) and PCIe 3.0x16 UVM
    /// bandwidth (16 GB/s single-direction achievable).
    pub fn paper_16_gpu() -> Self {
        Self::uniform(16, 24 * GIB, 128 * GIB, 1555.0, 16.0)
    }

    /// Same memory geometry as [`paper_16_gpu`](Self::paper_16_gpu) with a
    /// different GPU count.
    pub fn paper_with_gpus(num_gpus: usize) -> Self {
        let mut s = Self::paper_16_gpu();
        assert!(num_gpus > 0, "system needs at least one GPU");
        s.num_gpus = num_gpus;
        s
    }

    /// Returns a copy with per-GPU capacities divided by `factor` (bandwidths
    /// unchanged). Scaling the system and the model by the same factor keeps
    /// the capacity *pressure* — and hence the placement problem — unchanged
    /// while shrinking simulation state.
    pub fn scaled(&self, factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be non-zero");
        Self {
            num_gpus: self.num_gpus,
            hbm_capacity_per_gpu: (self.hbm_capacity_per_gpu / factor).max(1),
            dram_capacity_per_gpu: (self.dram_capacity_per_gpu / factor).max(1),
            hbm_bandwidth_gbps: self.hbm_bandwidth_gbps,
            uvm_bandwidth_gbps: self.uvm_bandwidth_gbps,
        }
    }

    /// Total HBM bytes reserved for embeddings across all GPUs.
    pub fn total_hbm_capacity(&self) -> u64 {
        self.hbm_capacity_per_gpu * self.num_gpus as u64
    }

    /// Total host DRAM bytes reachable via UVM across all GPUs.
    pub fn total_dram_capacity(&self) -> u64 {
        self.dram_capacity_per_gpu * self.num_gpus as u64
    }

    /// Total memory available to embeddings across all tiers and GPUs.
    pub fn total_capacity(&self) -> u64 {
        self.total_hbm_capacity() + self.total_dram_capacity()
    }

    /// Ratio of HBM to UVM bandwidth — the penalty factor for placing hot
    /// rows in the wrong tier (two orders of magnitude on the paper's system).
    pub fn bandwidth_ratio(&self) -> f64 {
        self.hbm_bandwidth_gbps / self.uvm_bandwidth_gbps
    }
}

impl Default for SystemSpec {
    fn default() -> Self {
        Self::paper_16_gpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_geometry() {
        let s = SystemSpec::paper_16_gpu();
        assert_eq!(s.num_gpus, 16);
        assert_eq!(s.total_hbm_capacity(), 16 * 24 * GIB);
        assert_eq!(s.total_dram_capacity(), 16 * 128 * GIB);
        assert!(
            s.bandwidth_ratio() > 90.0,
            "HBM should be ~100x faster than UVM"
        );
    }

    #[test]
    fn scaled_system_divides_capacity_only() {
        let s = SystemSpec::paper_16_gpu().scaled(1024);
        assert_eq!(s.hbm_capacity_per_gpu, 24 * GIB / 1024);
        assert_eq!(s.hbm_bandwidth_gbps, 1555.0);
        assert_eq!(s.num_gpus, 16);
    }

    #[test]
    fn gpu_count_override() {
        let s = SystemSpec::paper_with_gpus(8);
        assert_eq!(s.num_gpus, 8);
        assert_eq!(s.hbm_capacity_per_gpu, 24 * GIB);
    }

    #[test]
    #[should_panic(expected = "system needs at least one GPU")]
    fn zero_gpus_rejected() {
        let _ = SystemSpec::uniform(0, 1, 1, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidths must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = SystemSpec::uniform(1, 1, 1, 0.0, 1.0);
    }
}
