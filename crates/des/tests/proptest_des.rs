//! Property-based tests for the discrete-event cluster simulator: physical
//! invariants and determinism must hold for arbitrary configurations.

use proptest::prelude::*;
use recshard_data::ModelSpec;
use recshard_des::{ArrivalProcess, ClusterConfig, ClusterSimulator, EventQueue, SimTime};
use recshard_sharding::{GreedySharder, SizeCost, SystemSpec};
use recshard_stats::DatasetProfiler;

fn run_summary(
    tables: usize,
    gpus: usize,
    iterations: u64,
    batch: usize,
    interval_us: u64,
    seed: u64,
    poisson: bool,
) -> recshard_des::RunSummary {
    let model = ModelSpec::small(tables, seed ^ 0x51);
    let profile = DatasetProfiler::profile_model(&model, 300, seed ^ 0x52);
    let system = SystemSpec::uniform(gpus, u64::MAX / 16, u64::MAX / 16, 1555.0, 16.0);
    let plan = GreedySharder::new(SizeCost)
        .shard(&model, &profile, &system)
        .unwrap();
    let interval_ms = interval_us as f64 / 1e3;
    let config = ClusterConfig {
        batch_size: batch,
        iterations,
        seed,
        arrival: if poisson {
            ArrivalProcess::Poisson {
                mean_interval_ms: interval_ms,
            }
        } else {
            ArrivalProcess::FixedRate { interval_ms }
        },
        ..ClusterConfig::default()
    };
    ClusterSimulator::new(&model, &plan, &profile, &system, config).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A GPU cannot be busy for longer than virtual time has elapsed, no
    /// matter the arrival process, load level or seed.
    #[test]
    fn busy_time_bounded_by_elapsed_time(
        tables in 2usize..8,
        gpus in 2usize..5,
        iterations in 10u64..60,
        batch in 4usize..32,
        interval_us in 0u64..4_000,
        seed in any::<u64>(),
    ) {
        let s = run_summary(tables, gpus, iterations, batch, interval_us, seed, false);
        prop_assert_eq!(s.completed, iterations);
        for (gpu, &busy_ms) in s.per_gpu_busy_ms.iter().enumerate() {
            prop_assert!(
                busy_ms <= s.makespan_ms + 1e-9,
                "GPU {} busy {} ms exceeds makespan {} ms", gpu, busy_ms, s.makespan_ms
            );
        }
        prop_assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
    }

    /// Same seed ⇒ identical event log (fingerprint) and identical summary,
    /// for both arrival processes.
    #[test]
    fn identical_seed_replays_identical_event_log(
        tables in 2usize..6,
        gpus in 2usize..4,
        iterations in 5u64..40,
        batch in 4usize..24,
        interval_us in 1u64..3_000,
        seed in any::<u64>(),
        poisson in any::<bool>(),
    ) {
        let a = run_summary(tables, gpus, iterations, batch, interval_us, seed, poisson);
        let b = run_summary(tables, gpus, iterations, batch, interval_us, seed, poisson);
        prop_assert_eq!(a, b);
    }

    /// The engine pops events in nondecreasing time order with FIFO
    /// tie-breaking, for arbitrary schedules.
    #[test]
    fn engine_orders_arbitrary_schedules(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.time >= lt, "time went backwards");
                if ev.time == lt {
                    // Same timestamp: scheduling order (== payload order here).
                    prop_assert!(ev.event > li, "FIFO tie-break violated");
                }
            }
            last = Some((ev.time, ev.event));
        }
        prop_assert_eq!(q.processed(), times.len() as u64);
    }
}
