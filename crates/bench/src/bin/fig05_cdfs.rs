//! Figure 5: hashed value frequency CDFs of the sparse features.
//!
//! Prints, for a subset of features, the cumulative access percentage covered
//! by the hottest 1/5/10/25/50/100% of accessed rows, plus summary statistics
//! over the whole feature universe.

#![allow(clippy::print_stdout)]
use recshard_bench::ExperimentConfig;
use recshard_data::RmKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let profile = cfg.setup(RmKind::Rm1).profile;

    println!(
        "# Figure 5: hashed value frequency CDFs (profiled over {} samples)",
        cfg.profile_samples
    );
    println!("| feature | accesses | top 1% rows | top 5% | top 10% | top 25% | top 50% |");
    println!("|---------|----------|-------------|--------|---------|---------|---------|");
    for p in profile
        .profiles()
        .iter()
        .filter(|p| p.total_lookups > 0)
        .step_by(20)
    {
        println!(
            "| {} | {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% |",
            p.id,
            p.total_lookups,
            p.cdf.top_percent_share(1.0) * 100.0,
            p.cdf.top_percent_share(5.0) * 100.0,
            p.cdf.top_percent_share(10.0) * 100.0,
            p.cdf.top_percent_share(25.0) * 100.0,
            p.cdf.top_percent_share(50.0) * 100.0,
        );
    }

    let shares: Vec<f64> = profile
        .profiles()
        .iter()
        .filter(|p| p.total_lookups > 100)
        .map(|p| p.cdf.top_percent_share(10.0))
        .collect();
    let skewed = shares.iter().filter(|&&s| s > 0.5).count();
    println!();
    println!(
        "For {skewed} of {} well-sampled features the hottest 10% of rows cover more than half \
         of all accesses — the power-law locality RecShard exploits (Figure 5's bowed CDFs); \
         the remainder are the near-uniform features visible as straight lines in the figure.",
        shares.len()
    );
}
