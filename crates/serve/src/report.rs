//! Serving-run reports: hit rates, tail latency, throughput, fingerprint.

use crate::cache::CacheStats;
use crate::policy::PolicyKind;
use recshard_stats::Summary;
use serde::{Deserialize, Serialize};

/// Aggregated results of one serving run. Identical inputs and seed produce
/// identical reports, fingerprint included — the same determinism contract
/// as the discrete-event simulator's `RunSummary`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Strategy name of the placement that routed tables to shards.
    pub placement: String,
    /// Cache policy every shard ran.
    pub policy: PolicyKind,
    /// GPU shards serving.
    pub shards: usize,
    /// Measured queries (warmup excluded).
    pub queries: u32,
    /// Warmup queries excluded from every measured number below.
    pub warmup: u32,
    /// Samples per query.
    pub batch_size: usize,
    /// Largest HBM cache capacity across shards, in bytes (shards may
    /// differ on a heterogeneous cluster; uniform clusters report the
    /// shared per-shard capacity).
    pub capacity_per_shard_bytes: u64,
    /// Measured lookups served from HBM.
    pub hits: u64,
    /// Measured lookups that missed and were admitted.
    pub misses: u64,
    /// Measured lookups that missed and bypassed admission.
    pub bypasses: u64,
    /// `hits / (hits + misses + bypasses)` over the measured window.
    pub hit_rate: f64,
    /// Measured hit rate of each shard.
    pub per_shard_hit_rate: Vec<f64>,
    /// Fraction of the makespan each shard spent serving lookups.
    pub busy_fraction: Vec<f64>,
    /// Median query latency (arrival → slowest shard done), ms.
    pub p50_ms: f64,
    /// 95th-percentile query latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile query latency, ms.
    pub p99_ms: f64,
    /// Exact moments of the measured latency distribution, ms.
    pub latency: Summary,
    /// Virtual time of the last completion, ms.
    pub makespan_ms: f64,
    /// Sustained throughput over the whole run, queries per virtual second.
    pub throughput_qps: f64,
    /// End-state cache counters summed over shards (warmup included).
    pub cache: CacheStats,
    /// Order-sensitive FNV-1a hash over measured per-query latencies and the
    /// hit/miss/bypass totals.
    pub fingerprint: u64,
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}+{}: {} queries on {} shards — hit rate {:.1}%, p50/p95/p99 = \
             {:.3}/{:.3}/{:.3} ms, {:.0} qps",
            self.placement,
            self.policy,
            self.queries,
            self.shards,
            self.hit_rate * 100.0,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.throughput_qps
        )
    }
}
