//! Heterogeneous-cluster test suite: per-GPU capacity safety under mixed
//! device classes, within-class-only MILP decode canonicalisation, and the
//! `ClusterSpec::uniform` compatibility guarantee (byte-identical plans and
//! fingerprints versus the historical homogeneous `SystemSpec` path).

use proptest::prelude::*;
use recshard::{MilpFormulation, RecShardConfig, ScalableSolver, StructuredSolver};
use recshard_data::ModelSpec;
use recshard_milp::SolveOptions;
use recshard_sharding::{
    ClusterSpec, DeviceClass, GreedySharder, LookupCost, ShardingPlan, SizeCost, SizeLookupCost,
    SystemSpec,
};
use recshard_stats::{DatasetProfile, DatasetProfiler};

/// A two-class cluster: `big_gpus` fast large-HBM devices followed by
/// `small_gpus` slower small-HBM devices, sized against the model so the
/// small class is under real capacity pressure.
fn mixed_cluster(model_bytes: u64, big_gpus: usize, small_gpus: usize, denom: u64) -> ClusterSpec {
    let gpus = (big_gpus + small_gpus) as u64;
    let fair = (model_bytes / (gpus * denom)).max(1);
    let big = DeviceClass::new("big", fair * 3, model_bytes, 2039.0, 32.0);
    let small = DeviceClass::new("small", fair, model_bytes, 900.0, 16.0);
    ClusterSpec::mixed(&[(big, big_gpus), (small, small_gpus)])
}

fn setup(n_tables: usize, seed: u64, samples: usize) -> (ModelSpec, DatasetProfile) {
    let model = ModelSpec::small(n_tables, seed);
    let profile = DatasetProfiler::profile_model(&model, samples, seed ^ 0x8E7E);
    (model, profile)
}

/// FNV-1a over a plan's placements — the same fingerprint the solver bench
/// locks in `BENCH_solver.json`.
fn plan_fingerprint(plan: &ShardingPlan) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for p in plan.placements() {
        for word in [p.gpu as u64, p.hbm_rows, p.total_rows, p.row_bytes] {
            hash ^= word;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) No solver ever exceeds a GPU's *own* per-class capacity on mixed
    /// clusters, across random class splits and capacity pressure.
    #[test]
    fn per_gpu_capacity_never_exceeded_under_mixed_classes(
        n_tables in 4usize..12,
        seed in 0u64..200,
        big_gpus in 1usize..3,
        small_gpus in 1usize..3,
        denom in 1u64..6,
    ) {
        let (model, profile) = setup(n_tables, seed, 400);
        let system = mixed_cluster(model.total_bytes(), big_gpus, small_gpus, denom);
        let config = RecShardConfig::default();
        let plans = [
            GreedySharder::new(SizeCost).shard(&model, &profile, &system).ok(),
            GreedySharder::new(LookupCost).shard(&model, &profile, &system).ok(),
            GreedySharder::new(SizeLookupCost).shard(&model, &profile, &system).ok(),
            StructuredSolver::new(config).solve(&model, &profile, &system).ok(),
            ScalableSolver::new(config).solve(&model, &profile, &system).ok(),
        ];
        for plan in plans.into_iter().flatten() {
            prop_assert!(plan.validate(&model, &system).is_ok());
            for (gpu, &bytes) in plan.hbm_bytes_per_gpu().iter().enumerate() {
                prop_assert!(
                    bytes <= system.hbm_capacity(gpu),
                    "GPU {gpu} ({}) holds {bytes} HBM bytes over its {} cap",
                    system.device(gpu).name,
                    system.hbm_capacity(gpu)
                );
            }
            for (gpu, &bytes) in plan.uvm_bytes_per_gpu().iter().enumerate() {
                prop_assert!(bytes <= system.dram_capacity(gpu));
            }
        }
    }

    /// (b) MILP decode canonicalisation permutes GPU labels only *within* a
    /// device class. Two checkable consequences on mixed clusters, for both
    /// warm- and cold-started solves:
    ///
    /// * within every class, the GPU ids a plan actually uses are a prefix
    ///   of that class's sorted id list (labels are handed out per class in
    ///   first-ownership order — a cross-class relabel, as the historical
    ///   global canonicalisation would produce, breaks this immediately by
    ///   giving a small-class owner a big-class id);
    /// * warm and cold decodes agree on the optimum's max per-GPU cost and
    ///   both validate against every class's own capacity.
    ///
    /// The min-max objective is degenerate below the bottleneck GPU, so
    /// equally-optimal warm/cold solutions may group tables differently;
    /// strict warm==cold plan identity on *uniform* systems stays locked by
    /// `crates/core/tests/proptest_solver.rs`.
    #[test]
    fn milp_decode_canonicalises_within_class_only(
        seed in 0u64..60,
        n_tables in 3usize..5,
    ) {
        let (model, profile) = setup(n_tables, seed, 400);
        let model = model.with_batch_size(64);
        let system = mixed_cluster(model.total_bytes(), 1, 2, 2);
        let formulation = MilpFormulation::new(RecShardConfig::default().with_icdf_steps(4));
        let warm = formulation
            .solve_with(&model, &profile, &system, SolveOptions { warm_start: true });
        let cold = formulation
            .solve_with(&model, &profile, &system, SolveOptions { warm_start: false });
        match (warm, cold) {
            (Ok(warm), Ok(cold)) => {
                let evaluator = StructuredSolver::new(RecShardConfig::default());
                let mut max_costs = [0.0f64; 2];
                for (i, plan) in [&warm, &cold].into_iter().enumerate() {
                    prop_assert!(plan.validate(&model, &system).is_ok());
                    // Used ids per class must be a first-ownership prefix of
                    // the class's own id list.
                    for class in 0..system.num_classes() {
                        let ids = system.gpus_in_class(class);
                        let used: std::collections::HashSet<usize> = plan
                            .placements()
                            .iter()
                            .map(|p| p.gpu)
                            .filter(|&g| system.class_of(g) == class)
                            .collect();
                        let prefix: std::collections::HashSet<usize> =
                            ids.iter().copied().take(used.len()).collect();
                        prop_assert_eq!(
                            &used, &prefix,
                            "class {} uses ids {:?}, not the prefix of {:?}",
                            class, &used, &ids
                        );
                    }
                    max_costs[i] = evaluator
                        .gpu_costs_exact(&model, &profile, &system, plan)
                        .into_iter()
                        .fold(0.0f64, f64::max);
                }
                prop_assert!(
                    (max_costs[0] - max_costs[1]).abs() <= max_costs[1].abs() * 1e-9 + 1e-12,
                    "warm/cold optima must agree on the objective ({} vs {})",
                    max_costs[0],
                    max_costs[1]
                );
            }
            (Err(_), Err(_)) => {} // both infeasible: consistent
            (w, c) => prop_assert!(false, "warm/cold feasibility disagree: {w:?} vs {c:?}"),
        }
    }

    /// (c) `ClusterSpec::uniform` round-trips against an explicitly
    /// constructed single-class cluster: every solver produces byte-identical
    /// plans (and plan fingerprints) over both descriptions — the
    /// compatibility guarantee that keeps all historical golden fingerprints
    /// valid.
    #[test]
    fn uniform_round_trips_to_identical_plans_and_fingerprints(
        n_tables in 4usize..12,
        seed in 0u64..200,
        gpus in 2usize..5,
        denom in 1u64..8,
    ) {
        let (model, profile) = setup(n_tables, seed, 400);
        let hbm = (model.total_bytes() / (gpus as u64 * denom)).max(1);
        let via_uniform = SystemSpec::uniform(gpus, hbm, model.total_bytes(), 1555.0, 16.0);
        let via_classes = ClusterSpec::with_classes(
            vec![DeviceClass::new("gpu", hbm, model.total_bytes(), 1555.0, 16.0)],
            vec![0; gpus],
        );
        type PlanPath<'a> = &'a dyn Fn(&ClusterSpec) -> Option<ShardingPlan>;
        let config = RecShardConfig::default();
        let solve_both = |f: PlanPath| (f(&via_uniform), f(&via_classes));
        let paths: [PlanPath; 3] = [
            &|s| GreedySharder::new(SizeLookupCost).shard(&model, &profile, s).ok(),
            &|s| StructuredSolver::new(config).solve(&model, &profile, s).ok(),
            &|s| ScalableSolver::new(config).solve(&model, &profile, s).ok(),
        ];
        for f in paths {
            let (a, b) = solve_both(f);
            prop_assert_eq!(&a, &b, "uniform and single-class plans must be identical");
            if let (Some(a), Some(b)) = (a, b) {
                prop_assert_eq!(plan_fingerprint(&a), plan_fingerprint(&b));
            }
        }
    }
}

/// The uniform-compatibility guarantee extends through the discrete-event
/// simulator: the same plan replayed on a `ClusterSpec::uniform` system and
/// on its explicit single-class equivalent produces the identical seeded run
/// summary, event log fingerprint included.
#[test]
fn uniform_round_trip_preserves_des_fingerprints() {
    use recshard_des::{ClusterConfig, ClusterSimulator};
    let (model, profile) = setup(8, 5, 1_000);
    let hbm = u64::MAX / 8;
    let via_uniform = SystemSpec::uniform(4, hbm, hbm, 1555.0, 16.0);
    let via_classes = ClusterSpec::with_classes(
        vec![DeviceClass::new("gpu", hbm, hbm, 1555.0, 16.0)],
        vec![0; 4],
    );
    let plan = GreedySharder::new(SizeCost)
        .shard(&model, &profile, &via_uniform)
        .unwrap();
    let config = ClusterConfig {
        iterations: 150,
        batch_size: 32,
        ..ClusterConfig::default()
    };
    let a = ClusterSimulator::new(&model, &plan, &profile, &via_uniform, config).run();
    let b = ClusterSimulator::new(&model, &plan, &profile, &via_classes, config).run();
    assert_eq!(a, b, "DES summaries must be identical across descriptions");
    assert_eq!(a.fingerprint, b.fingerprint);
}

/// On a mixed cluster, the class-aware structured/scalable solvers place
/// strictly more work on the fast class than the class-blind greedy
/// baseline charges it for — and never lose to greedy on the max per-GPU
/// cost (the `hetero_scaling` bench asserts the strict version on the
/// committed seed).
#[test]
fn class_aware_solver_never_loses_to_class_blind_greedy_on_mixed_clusters() {
    for seed in [3u64, 7, 21] {
        let (model, profile) = setup(12, seed, 1_000);
        let system = mixed_cluster(model.total_bytes(), 2, 2, 3);
        let config = RecShardConfig::default();
        let evaluator = StructuredSolver::new(config);
        let max_cost = |plan: &ShardingPlan| {
            evaluator
                .gpu_costs_exact(&model, &profile, &system, plan)
                .into_iter()
                .fold(0.0f64, f64::max)
        };
        let greedy = GreedySharder::new(SizeLookupCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let scalable = ScalableSolver::new(config)
            .solve(&model, &profile, &system)
            .unwrap();
        assert!(
            max_cost(&scalable) <= max_cost(&greedy) * (1.0 + 1e-9),
            "seed {seed}: class-aware {} vs class-blind greedy {}",
            max_cost(&scalable),
            max_cost(&greedy)
        );
    }
}
