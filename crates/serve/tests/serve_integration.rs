//! Integration tests of the serving layer against real placements: the
//! paper's statistical insight (per-table access CDFs predict which rows
//! deserve HBM) must pay off for online inference exactly as it does for
//! training — stat-guided caching on a RecShard placement beats LRU on hash
//! placement on both hit rate and tail latency, deterministically per seed.

use recshard::{RecShard, RecShardConfig};
use recshard_data::{FeatureClass, FeatureId, FeatureSpec, ModelSpec, PoolingSpec, RmKind};
use recshard_serve::{
    hash_placement, ArrivalModel, InferenceServer, PolicyKind, ServeConfig, ServeReport,
};
use recshard_sharding::{GreedySharder, ShardingPlan, SizeCost, SystemSpec};
use recshard_stats::{DatasetProfile, DatasetProfiler};

/// A skewed multi-hot Zipf feature universe (exponents 1.05–1.6, sizes over
/// two orders of magnitude) — the serving-side analogue of the DES tests'
/// canonical skewed workload, scaled for fast integration runs.
fn skewed_model(tables: usize) -> ModelSpec {
    let features = (0..tables)
        .map(|i| {
            let hash_size = 1u64 << (9 + (i % 6));
            FeatureSpec {
                id: FeatureId(i as u32),
                name: format!("serve_{i}"),
                class: if i % 3 == 0 {
                    FeatureClass::User
                } else {
                    FeatureClass::Content
                },
                cardinality: hash_size * 4,
                hash_size,
                zipf_exponent: 1.05 + 0.55 * (i as f64 / tables.max(1) as f64),
                pooling: match i % 3 {
                    0 => PoolingSpec::OneHot,
                    1 => PoolingSpec::Constant(2),
                    _ => PoolingSpec::LongTail { mean: 6.0, max: 24 },
                },
                coverage: match i % 4 {
                    0 => 1.0,
                    1 => 0.8,
                    2 => 0.5,
                    _ => 0.2,
                },
                embedding_dim: 32,
                bytes_per_element: 4,
                hash_seed: 0x5EED ^ i as u64,
            }
        })
        .collect();
    ModelSpec::new("serve-skewed", RmKind::Custom, features, 512)
}

struct Setup {
    model: ModelSpec,
    profile: DatasetProfile,
    system: SystemSpec,
}

fn setup(shards: usize) -> Setup {
    let model = skewed_model(24);
    // Each shard's HBM cache holds ~1/12 of its fair share of the model:
    // which rows the cache keeps decides everything.
    let system = SystemSpec::uniform(
        shards,
        model.total_bytes() / (12 * shards as u64),
        model.total_bytes(),
        1555.0,
        16.0,
    );
    let profile = DatasetProfiler::profile_model(&model, 3_000, 0xA11C);
    Setup {
        model,
        profile,
        system,
    }
}

fn serve(s: &Setup, plan: &ShardingPlan, policy: PolicyKind, config: ServeConfig) -> ServeReport {
    InferenceServer::run(
        &s.model,
        plan,
        &s.profile,
        &s.system,
        ServeConfig { policy, ..config },
    )
}

/// Calibrates the arrival interval off an unloaded stat-guided RecShard run,
/// then serves every combination under the identical seeded stream.
fn calibrated_config(s: &Setup, recshard_plan: &ShardingPlan) -> ServeConfig {
    let base = ServeConfig {
        queries: 2_500,
        warmup: 500,
        batch_size: 4,
        seed: 0x5EB5,
        ..ServeConfig::default()
    };
    let unloaded = serve(
        s,
        recshard_plan,
        PolicyKind::StatGuided,
        ServeConfig {
            queries: 300,
            warmup: 100,
            arrival: ArrivalModel::FixedRate {
                interval_us: 1_000_000.0,
            },
            ..base
        },
    );
    ServeConfig {
        arrival: ArrivalModel::FixedRate {
            // 20% headroom over the unloaded median: a well-balanced
            // placement keeps up, an imbalanced one queues.
            interval_us: unloaded.p50_ms * 1e3 * 1.2,
        },
        ..base
    }
}

/// The headline acceptance criterion: on 4 shards with identical seeded
/// request streams, StatGuided on the RecShard placement strictly beats LRU
/// on hash placement on hit rate *and* p99 latency — and both runs are
/// bit-for-bit reproducible.
#[test]
fn statguided_on_recshard_beats_lru_on_hash() {
    let s = setup(4);
    let recshard_plan = RecShard::new(RecShardConfig::default())
        .plan(&s.model, &s.profile, &s.system)
        .expect("recshard placement");
    let hash_plan = hash_placement(&s.model, 4);
    let config = calibrated_config(&s, &recshard_plan);

    let best = serve(&s, &recshard_plan, PolicyKind::StatGuided, config);
    let baseline = serve(&s, &hash_plan, PolicyKind::Lru, config);

    assert!(
        best.hit_rate > baseline.hit_rate,
        "StatGuided-on-RecShard hit rate {:.3} must strictly beat LRU-on-hash {:.3}",
        best.hit_rate,
        baseline.hit_rate
    );
    assert!(
        best.p99_ms < baseline.p99_ms,
        "StatGuided-on-RecShard p99 {:.3} ms must strictly beat LRU-on-hash {:.3} ms",
        best.p99_ms,
        baseline.p99_ms
    );

    // Determinism: identical seeds replay identical reports.
    let again = serve(&s, &recshard_plan, PolicyKind::StatGuided, config);
    assert_eq!(best, again);
}

/// The placement alone already matters under a policy-for-policy comparison:
/// RecShard routing balances shard load better than hash routing.
#[test]
fn recshard_routing_balances_load_better_than_hash() {
    let s = setup(4);
    let recshard_plan = RecShard::new(RecShardConfig::default())
        .plan(&s.model, &s.profile, &s.system)
        .expect("recshard placement");
    let hash_plan = hash_placement(&s.model, 4);
    let config = calibrated_config(&s, &recshard_plan);

    let spread = |r: &ServeReport| {
        let max = r.busy_fraction.iter().cloned().fold(0.0, f64::max);
        let min = r.busy_fraction.iter().cloned().fold(1.0, f64::min);
        max - min
    };
    let balanced = serve(&s, &recshard_plan, PolicyKind::Lru, config);
    let skewed = serve(&s, &hash_plan, PolicyKind::Lru, config);
    assert!(
        spread(&balanced) < spread(&skewed),
        "RecShard busy spread {:.3} must beat hash spread {:.3}",
        spread(&balanced),
        spread(&skewed)
    );
}

/// Size-proportional greedy placement sits between hash and RecShard in the
/// serving comparison, and every policy improves on it over plain LRU-hash.
#[test]
fn policies_are_ordered_under_skew() {
    let s = setup(4);
    let size_plan = GreedySharder::new(SizeCost)
        .shard(&s.model, &s.profile, &s.system)
        .expect("size placement");
    let recshard_plan = RecShard::new(RecShardConfig::default())
        .plan(&s.model, &s.profile, &s.system)
        .expect("recshard placement");
    let config = calibrated_config(&s, &recshard_plan);

    let lru = serve(&s, &size_plan, PolicyKind::Lru, config);
    let lfu = serve(&s, &size_plan, PolicyKind::Lfu, config);
    let sg = serve(&s, &size_plan, PolicyKind::StatGuided, config);
    // Under stationary Zipf traffic, frequency information dominates pure
    // recency: both the online-frequency policy (LFU) and the profile-guided
    // policy beat plain LRU. (LFU and StatGuided are near-tied on a
    // stationary stream — StatGuided's pins buy robustness, not extra
    // stationary hit rate.)
    assert!(
        sg.hit_rate > lru.hit_rate,
        "StatGuided {:.3} vs LRU {:.3}",
        sg.hit_rate,
        lru.hit_rate
    );
    assert!(
        lfu.hit_rate > lru.hit_rate,
        "LFU {:.3} vs LRU {:.3}",
        lfu.hit_rate,
        lru.hit_rate
    );
    // All three complete every query with ordered percentiles.
    for r in [&lru, &lfu, &sg] {
        assert_eq!(r.queries, config.queries);
        assert!(r.p50_ms <= r.p95_ms && r.p95_ms <= r.p99_ms);
    }
}

/// Warmup isolation is structural: warmup lookups flow through the cache
/// (its end-state counters include them) but are excluded from every
/// measured number, and with zero warmup the two views coincide exactly.
#[test]
fn warmup_lookups_are_excluded_from_measured_counts() {
    let s = setup(2);
    let plan = hash_placement(&s.model, 2);
    let base = ServeConfig {
        queries: 800,
        batch_size: 4,
        arrival: ArrivalModel::FixedRate { interval_us: 500.0 },
        ..ServeConfig::default()
    };
    let cache_total = |r: &ServeReport| r.cache.hits + r.cache.misses + r.cache.bypasses;
    let measured_total = |r: &ServeReport| r.hits + r.misses + r.bypasses;

    let cold = InferenceServer::run(
        &s.model,
        &plan,
        &s.profile,
        &s.system,
        ServeConfig { warmup: 0, ..base },
    );
    assert_eq!(
        cache_total(&cold),
        measured_total(&cold),
        "without warmup, measured and cache-level counts must coincide"
    );

    let warmed = InferenceServer::run(
        &s.model,
        &plan,
        &s.profile,
        &s.system,
        ServeConfig {
            warmup: 400,
            ..base
        },
    );
    assert!(
        cache_total(&warmed) > measured_total(&warmed),
        "warmup lookups must hit the cache ({}) but not the measured window ({})",
        cache_total(&warmed),
        measured_total(&warmed)
    );
    // The two runs share one seeded stream, so the warmed run's total
    // traffic through the cache is the cold run's plus the warmup prefix's.
    assert!(cache_total(&warmed) > cache_total(&cold));
}
