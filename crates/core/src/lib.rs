//! # recshard
//!
//! RecShard: statistical feature-based embedding-table (EMB) partitioning and
//! placement across tiered memory, reproducing the ASPLOS 2022 paper
//! *"RecShard: Statistical Feature-Based Memory Optimization for
//! Industry-Scale Neural Recommendation"*.
//!
//! DLRM embedding tables dominate model capacity (>99%) and bandwidth demand,
//! and training systems increasingly pair fast-but-small GPU HBM with
//! large-but-slow host DRAM reached over UVM. RecShard exploits three
//! statistical facts about recommendation training data — per-feature value
//! frequency distributions are skewed, per-feature pooling factors differ by
//! orders of magnitude, and per-feature coverage varies from <1% to 100% — to
//! place the *hot rows* of every table in HBM and relegate cold and unused
//! rows (including the hash-collision slack the birthday paradox leaves
//! behind) to UVM, while load-balancing the resulting per-GPU work.
//!
//! The crate implements the full pipeline of the paper's Figure 10:
//!
//! 1. **Training data profiling** (delegated to `recshard-stats`),
//! 2. **EMB partitioning and placement** — either the exact MILP formulation
//!    of Section 4.2 (solved with `recshard-milp`, for small instances) or a
//!    structured solver that exploits the problem's min-max / knapsack
//!    structure and scales to hundreds of tables ([`solver`]),
//! 3. **Remapping** — materialising per-table remapping tables
//!    (`recshard-sharding`'s [`RemapTable`](recshard_sharding::RemapTable)),
//! 4. **Dynamic validation** — replaying a plan through the discrete-event
//!    cluster simulator (`recshard-des`) for sustained-throughput and
//!    tail-latency numbers, optionally with drift-driven online re-sharding
//!    ([`RecShard::simulate_cluster`](pipeline::RecShard::simulate_cluster)).
//!
//! ## Quick example
//!
//! ```
//! use recshard::{RecShard, RecShardConfig};
//! use recshard_data::ModelSpec;
//! use recshard_sharding::SystemSpec;
//! use recshard_stats::DatasetProfiler;
//!
//! let model = ModelSpec::small(8, 1);
//! let profile = DatasetProfiler::profile_model(&model, 2_000, 7);
//! // A system so tight that only ~30% of the model fits in HBM.
//! let system = SystemSpec::uniform(2, model.total_bytes() / 6, model.total_bytes(), 1555.0, 16.0);
//! let plan = RecShard::new(RecShardConfig::default())
//!     .plan(&model, &profile, &system)
//!     .unwrap();
//! assert!(plan.validate(&model, &system).is_ok());
//! // Under capacity pressure some rows must live in UVM.
//! assert!(plan.total_uvm_rows() > 0);
//! ```
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod ablation;
pub mod analysis;
pub mod bucketing;
pub mod config;
pub mod cost;
pub mod error;
pub mod formulation;
pub mod hash_analysis;
pub mod hierarchical;
pub mod pipeline;
pub mod scalable;
pub mod solver;

pub use ablation::AblationVariant;
pub use analysis::{PlanComparison, SpeedupReport};
pub use bucketing::{BucketingConfig, TableBucket, TableBuckets};
pub use config::{RecShardConfig, SolverKind};
pub use error::RecShardError;
pub use formulation::MilpFormulation;
pub use hash_analysis::{hash_size_sweep, HashSweepPoint};
pub use hierarchical::{HierarchicalConfig, HierarchicalSolver};
pub use pipeline::{RecShard, RecShardOutput};
pub use scalable::{ScalableSolveReport, ScalableSolver};
pub use solver::StructuredSolver;
