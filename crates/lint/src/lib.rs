//! `recshard-lint` — the workspace's determinism & robustness static
//! analysis.
//!
//! Every claim this reproduction makes — golden fingerprints, the
//! `BENCH_*.json` drift gates, traced ≡ untraced replays — rests on two
//! source-level invariants: results are *bit-deterministic* functions of
//! `(spec, seed)`, and library code is *panic-free* on config- and
//! data-driven paths. Golden tests catch violations after the fact; this
//! tool encodes the invariants as declarative, checkable rules so they fail
//! at review time instead.
//!
//! The tool is dependency-free (the build environment has no crates.io
//! access, so no `syn`): a hand-rolled [`lexer`] feeds token-pattern
//! [`rules`], orchestrated per file by [`file::SourceFile`] and across the
//! workspace by [`scan`]. Diagnostics ([`diag`]) are deterministic — sorted
//! by `(path, line, rule)`, rendered human-readable and as canonical JSON —
//! and suppressable two ways:
//!
//! * `// recshard-lint: allow(rule, ...) -- reason` on (or directly above)
//!   the offending line. The reason is mandatory, unknown rules are
//!   rejected, and an annotation that suppresses nothing is itself a
//!   violation (`unused-allow`) — so annotations stay an honest audit trail.
//! * the committed `lint-baseline.txt` for grandfathered sites, a sorted
//!   multiset keyed by `(path, rule, code-line)`. `--check` fails on any
//!   violation beyond the baseline *and* on stale baseline entries, so the
//!   baseline can only ratchet down deliberately.
//!
//! Run `cargo run -p recshard-lint -- --list-rules` for the rule table, or
//! see the README's "Static analysis" section.

pub mod diag;
pub mod file;
pub mod lexer;
pub mod rules;
pub mod scan;

pub use diag::{Baseline, Diagnostic};
pub use file::{FileKind, SourceFile};
pub use scan::{analyze_source, check, scan_workspace, CheckReport, BASELINE_FILE};
