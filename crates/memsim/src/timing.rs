//! The embedding-kernel timing model.
//!
//! The paper's MILP (constraint 11) and its measured results both use a
//! bandwidth-bound model of the embedding operator: the time to gather a set
//! of rows is the bytes served from each tier divided by that tier's
//! bandwidth, and mixed HBM/UVM reads within one kernel take approximately
//! the *sum* of the two (Section 4.2, "Key Properties"). A small fixed
//! overhead per table models kernel launch and pooling cost.

use crate::counters::AccessCounters;
use recshard_sharding::SystemSpec;

/// Bytes per gigabyte used by the bandwidth figures (GB/s).
const BYTES_PER_GB: f64 = 1e9;

/// Time in milliseconds for one GPU's embedding work in one iteration, given
/// the bytes it pulled from each tier, *that GPU's* tier bandwidths (on a
/// heterogeneous cluster each GPU gathers at its own device class's speed)
/// and the number of embedding tables it executed kernels for.
pub fn embedding_kernel_time_ms(
    counters: &AccessCounters,
    system: &SystemSpec,
    gpu: usize,
    tables_on_gpu: usize,
    kernel_overhead_us_per_table: f64,
) -> f64 {
    let hbm_s = counters.hbm_bytes as f64 / (system.hbm_bandwidth_gbps(gpu) * BYTES_PER_GB);
    let uvm_s = counters.uvm_bytes as f64 / (system.uvm_bandwidth_gbps(gpu) * BYTES_PER_GB);
    let overhead_s = tables_on_gpu as f64 * kernel_overhead_us_per_table * 1e-6;
    (hbm_s + uvm_s + overhead_s) * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> SystemSpec {
        SystemSpec::uniform(1, 1 << 40, 1 << 40, 1000.0, 10.0)
    }

    #[test]
    fn hbm_only_time() {
        let mut c = AccessCounters::new();
        c.record_hbm(1_000_000, 1000); // 1 GB
        let t = embedding_kernel_time_ms(&c, &system(), 0, 0, 0.0);
        assert!((t - 1.0).abs() < 1e-9, "1 GB at 1000 GB/s = 1 ms, got {t}");
    }

    #[test]
    fn uvm_is_slower_by_bandwidth_ratio() {
        let mut hbm = AccessCounters::new();
        hbm.record_hbm(1_000_000, 1000);
        let mut uvm = AccessCounters::new();
        uvm.record_uvm(1_000_000, 1000);
        let s = system();
        let t_hbm = embedding_kernel_time_ms(&hbm, &s, 0, 0, 0.0);
        let t_uvm = embedding_kernel_time_ms(&uvm, &s, 0, 0, 0.0);
        assert!((t_uvm / t_hbm - s.bandwidth_ratio(0)).abs() < 1e-6);
    }

    #[test]
    fn mixed_reads_sum() {
        let mut c = AccessCounters::new();
        c.record_hbm(500_000, 1000);
        c.record_uvm(500_000, 1000);
        let t = embedding_kernel_time_ms(&c, &system(), 0, 0, 0.0);
        assert!((t - (0.5 + 50.0)).abs() < 1e-6);
    }

    #[test]
    fn overhead_scales_with_table_count() {
        let c = AccessCounters::new();
        let t = embedding_kernel_time_ms(&c, &system(), 0, 100, 5.0);
        assert!((t - 0.5).abs() < 1e-9, "100 tables * 5us = 0.5 ms, got {t}");
    }
}
