//! Walkthrough of the discrete-event cluster simulator: static planning,
//! dynamic replay, tail latency under load, and online re-sharding under
//! feature drift.
//!
//! Run with `cargo run --release --example cluster_simulation`.

#![allow(clippy::print_stdout)]
use recshard::{RecShard, RecShardConfig};
use recshard_bench::Strategy;
use recshard_data::ModelSpec;
use recshard_des::{ArrivalProcess, ClusterConfig, ClusterSimulator, DriftSchedule, ReshardPolicy};
use recshard_sharding::SystemSpec;
use recshard_stats::DatasetProfiler;

fn main() {
    // ── 1. Static pipeline: profile a model, solve a placement. ────────────
    let model = ModelSpec::rm1().scaled(16_384).truncated(48);
    // A tight system: only ~40% of the embedding bytes fit in HBM.
    let system = SystemSpec::uniform(
        4,
        model.total_bytes() / 10,
        model.total_bytes(),
        1555.0,
        16.0,
    );
    let profile = DatasetProfiler::profile_model(&model, 3_000, 7);
    let sharder = RecShard::new(RecShardConfig::default());

    println!(
        "model: {} tables, {:.1} MB of embeddings, 4 GPUs, HBM fits ~40%",
        model.num_features(),
        model.total_bytes() as f64 / 1e6
    );

    // ── 2. Replay the plan through the cluster simulator, lightly loaded. ──
    let config = ClusterConfig {
        batch_size: 64,
        iterations: 2_000,
        seed: 42,
        arrival: ArrivalProcess::Poisson {
            mean_interval_ms: 1.0,
        },
        ..ClusterConfig::default()
    };
    let summary = sharder
        .simulate_cluster(&model, &profile, &system, config)
        .expect("recshard plan");
    println!("\nunloaded RecShard cluster:\n  {summary}");
    println!(
        "  per-GPU busy: {}",
        summary
            .busy_fraction
            .iter()
            .map(|f| format!("{:.0}%", f * 100.0))
            .collect::<Vec<_>>()
            .join(" ")
    );

    // ── 3. Load it up: arrivals faster than the baseline can serve. ────────
    // The same arrival stream hits RecShard's plan and the size-based
    // baseline; the one whose slowest GPU falls behind builds a queue.
    let loaded = ClusterConfig {
        arrival: ArrivalProcess::FixedRate {
            interval_ms: summary.p50_ms * 1.1,
        },
        ..config
    };
    for strategy in [Strategy::RecShard, Strategy::SizeBased] {
        let plan = strategy.plan(&model, &profile, &system);
        let s = ClusterSimulator::new(&model, &plan, &profile, &system, loaded).run();
        println!(
            "\n{} under load: p50/p95/p99 = {:.3}/{:.3}/{:.3} ms, {:.0} iters/s, max queue wait {:.2} ms",
            strategy.label(),
            s.p50_ms,
            s.p95_ms,
            s.p99_ms,
            s.throughput_iters_per_s,
            s.queue_wait.max
        );
    }

    // ── 4. Twenty months of feature drift with an online controller. ───────
    // Pooling factors drift (Figure 9); the controller watches per-GPU
    // busy-time imbalance every 250 iterations and re-solves when it trips.
    let drift = DriftSchedule::paper_like(100);
    let policy = ReshardPolicy {
        check_every_iterations: 250,
        imbalance_threshold: 1.15,
        ..ReshardPolicy::default()
    };
    let drifted = sharder
        .simulate_cluster_with_resharding(&model, &profile, &system, config, drift, policy)
        .expect("recshard plan");
    println!(
        "\nwith drift + online re-sharding:\n  {drifted}\n  (the controller re-solved {} time(s) as the workload drifted)",
        drifted.reshards
    );
}
