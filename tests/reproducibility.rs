//! Reproducibility: identical seeds produce identical profiles, plans and
//! simulation results across the whole stack; different seeds produce
//! different training data but statistically consistent placement behaviour.

use recshard::{RecShard, RecShardConfig};
use recshard_data::{ModelSpec, SampleGenerator};
use recshard_memsim::{EmbeddingOpSimulator, SimConfig};
use recshard_sharding::SystemSpec;
use recshard_stats::DatasetProfiler;

#[test]
fn identical_seeds_reproduce_everything() {
    let model = ModelSpec::small(10, 5);
    let system = SystemSpec::uniform(
        2,
        model.total_bytes() / 6,
        model.total_bytes(),
        1555.0,
        16.0,
    );

    let run = || {
        let profile = DatasetProfiler::profile_model(&model, 1_500, 42);
        let plan = RecShard::new(RecShardConfig::default())
            .plan(&model, &profile, &system)
            .expect("plan");
        let mut sim =
            EmbeddingOpSimulator::new(&model, &plan, &profile, &system, SimConfig::default());
        let report = sim.run(2, 128, 7);
        (profile, plan, report)
    };
    let (profile_a, plan_a, report_a) = run();
    let (profile_b, plan_b, report_b) = run();
    assert_eq!(profile_a, profile_b);
    assert_eq!(plan_a, plan_b);
    assert_eq!(report_a, report_b);
}

#[test]
fn reference_models_are_stable_across_processes() {
    // The RM generators are pure functions of a fixed seed, so aggregate
    // quantities must be bit-stable (documented in DESIGN.md and relied on by
    // EXPERIMENTS.md).
    let rm1 = ModelSpec::rm1();
    assert_eq!(rm1.num_features(), 397);
    let again = ModelSpec::rm1();
    assert_eq!(rm1, again);
    assert_eq!(rm1.total_hash_size(), again.total_hash_size());
}

#[test]
fn different_seeds_change_data_but_not_invariants() {
    let model = ModelSpec::small(8, 3);
    let a = SampleGenerator::new(&model, 1).batch(50);
    let b = SampleGenerator::new(&model, 2).batch(50);
    assert_ne!(a, b, "different seeds must give different data");

    let system = SystemSpec::uniform(
        2,
        model.total_bytes() / 5,
        model.total_bytes(),
        1555.0,
        16.0,
    );
    for seed in [1u64, 2, 3] {
        let profile = DatasetProfiler::profile_model(&model, 1_000, seed);
        let plan = RecShard::default()
            .plan(&model, &profile, &system)
            .expect("plan");
        plan.validate(&model, &system)
            .expect("valid plan regardless of seed");
    }
}
