//! The sharded HBM row cache.
//!
//! Online inference inverts the training-time placement problem: instead of
//! statically splitting each table into an HBM partition and a UVM partition
//! (the remap tables of Section 4.3), the serving layer keeps *every* row in
//! UVM-backed host memory and treats the GPU's HBM as a managed cache in
//! front of it. [`ShardedCache`] is one GPU's cache: lock-striped for
//! concurrent access (interior mutability behind `&self`), charged in bytes,
//! with the eviction/admission decision delegated to a pluggable
//! [`PolicyKind`](crate::PolicyKind).
//!
//! Victim selection uses a lazily invalidated min-heap: every touch pushes a
//! fresh `(priority, stamp, slot)` entry and bumps the entry's stamp, so
//! stale heap entries are recognised and discarded when popped. This keeps
//! both LRU (priority = last use) and LFU (priority = frequency, then last
//! use) O(log n) per operation with one mechanism, and keeps the whole
//! structure deterministic: a fixed operation sequence always produces the
//! same hits, evictions and occupancy.

use crate::policy::{PolicyKind, StatGuide};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Mutex;

/// Geometry of one GPU shard's cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total HBM bytes this shard may cache.
    pub capacity_bytes: u64,
    /// Number of independent lock stripes (each owns an equal slice of the
    /// capacity). More stripes means less contention under concurrent access.
    pub stripes: usize,
}

impl CacheConfig {
    /// A cache of `capacity_bytes` with the default stripe count (8).
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            stripes: 8,
        }
    }

    /// Overrides the stripe count.
    pub fn with_stripes(mut self, stripes: usize) -> Self {
        assert!(stripes > 0, "cache needs at least one stripe");
        self.stripes = stripes;
        self
    }
}

/// Outcome of one row access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The row was resident in HBM.
    Hit,
    /// The row was fetched from UVM and admitted into the cache.
    MissInserted,
    /// The row was fetched from UVM and *not* admitted (rejected by the
    /// admission policy, or nothing evictable had room for it).
    MissBypassed,
}

impl Lookup {
    /// Whether the access was served from HBM.
    pub fn is_hit(self) -> bool {
        matches!(self, Lookup::Hit)
    }
}

/// Aggregated counters of one cache (or one stripe).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses served from HBM.
    pub hits: u64,
    /// Misses that admitted the row.
    pub misses: u64,
    /// Misses that bypassed admission.
    pub bypasses: u64,
    /// Rows evicted to make room.
    pub evictions: u64,
    /// Bytes currently resident.
    pub used_bytes: u64,
    /// Bytes of pinned (never-evicted) rows currently resident.
    pub pinned_bytes: u64,
    /// Rows currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of all accesses served from HBM (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.bypasses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bypasses += other.bypasses;
        self.evictions += other.evictions;
        self.used_bytes += other.used_bytes;
        self.pinned_bytes += other.pinned_bytes;
        self.entries += other.entries;
    }
}

/// One resident row.
#[derive(Debug, Clone, Copy)]
struct Entry {
    table: u32,
    row: u64,
    bytes: u64,
    freq: u64,
    last_use: u64,
    /// Generation stamp of the most recent heap push for this slot; heap
    /// entries with an older stamp are stale.
    stamp: u64,
    pinned: bool,
    occupied: bool,
}

/// One lock stripe: an independent slice of the shard's capacity.
#[derive(Debug, Default)]
struct Stripe {
    capacity: u64,
    tick: u64,
    next_stamp: u64,
    map: HashMap<(u32, u64), usize>,
    arena: Vec<Entry>,
    free: Vec<usize>,
    /// Min-heap of `(priority, tie, stamp, slot)` with lazy invalidation.
    heap: BinaryHeap<std::cmp::Reverse<(u64, u64, u64, usize)>>,
    /// Doorkeeper for guided admission: rows the guide rejected once. A
    /// second access proves the row is warm despite being unprofiled and
    /// admits it (one-hit wonders never pollute the cache; genuinely warm
    /// unprofiled rows pay exactly one extra miss).
    ghosts: std::collections::HashSet<(u32, u64)>,
    stats: CacheStats,
}

impl Stripe {
    fn priority(policy: PolicyKind, e: &Entry) -> (u64, u64) {
        match policy {
            // Evict the least-recently used row first.
            PolicyKind::Lru | PolicyKind::StatGuided => (e.last_use, 0),
            // Evict the least-frequently used row first, breaking ties by
            // recency so a once-hot row eventually ages out.
            PolicyKind::Lfu => (e.freq, e.last_use),
        }
    }

    fn push_heap(&mut self, policy: PolicyKind, slot: usize) {
        self.next_stamp += 1;
        let e = &mut self.arena[slot];
        e.stamp = self.next_stamp;
        let (p, tie) = Self::priority(policy, e);
        self.heap
            .push(std::cmp::Reverse((p, tie, self.next_stamp, slot)));
    }

    /// Pops victims until `bytes` fit; returns false if the stripe cannot
    /// make room (everything evictable is gone).
    fn make_room(&mut self, bytes: u64) -> bool {
        while self.stats.used_bytes + bytes > self.capacity {
            let Some(std::cmp::Reverse((_, _, stamp, slot))) = self.heap.pop() else {
                return false;
            };
            let e = self.arena[slot];
            // Stale heap entry: the slot was re-touched or freed since.
            if !e.occupied || e.stamp != stamp || e.pinned {
                continue;
            }
            self.map.remove(&(e.table, e.row));
            self.arena[slot].occupied = false;
            self.free.push(slot);
            self.stats.used_bytes -= e.bytes;
            self.stats.entries -= 1;
            self.stats.evictions += 1;
        }
        true
    }

    fn insert(&mut self, policy: PolicyKind, table: u32, row: u64, bytes: u64, pinned: bool) {
        let now = self.tick;
        let entry = Entry {
            table,
            row,
            bytes,
            freq: 1,
            last_use: now,
            stamp: 0,
            pinned,
            occupied: true,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.arena[s] = entry;
                s
            }
            None => {
                self.arena.push(entry);
                self.arena.len() - 1
            }
        };
        self.map.insert((table, row), slot);
        self.stats.used_bytes += bytes;
        self.stats.entries += 1;
        if pinned {
            self.stats.pinned_bytes += bytes;
        } else {
            self.push_heap(policy, slot);
        }
    }

    fn access(
        &mut self,
        policy: PolicyKind,
        guide: Option<&StatGuide>,
        table: u32,
        row: u64,
        bytes: u64,
    ) -> Lookup {
        self.tick += 1;
        if let Some(&slot) = self.map.get(&(table, row)) {
            let pinned = {
                let e = &mut self.arena[slot];
                e.freq += 1;
                e.last_use = self.tick;
                e.pinned
            };
            if !pinned {
                self.push_heap(policy, slot);
            }
            self.stats.hits += 1;
            return Lookup::Hit;
        }
        // Miss: admission control (with a second-chance doorkeeper for
        // rows the profile never observed), then eviction.
        let admit = match guide {
            Some(g) => {
                if g.admits(table, row) || self.ghosts.remove(&(table, row)) {
                    true
                } else {
                    self.ghosts.insert((table, row));
                    false
                }
            }
            None => true,
        };
        if !admit || bytes > self.capacity || !self.make_room(bytes) {
            self.stats.bypasses += 1;
            return Lookup::MissBypassed;
        }
        self.insert(policy, table, row, bytes, false);
        self.stats.misses += 1;
        Lookup::MissInserted
    }
}

/// One GPU shard's HBM cache: lock-striped, byte-budgeted, policy-driven.
///
/// The cache is `Sync` — `access` takes `&self` and stripes are independent
/// mutexes — so any number of worker threads can drive one shard
/// concurrently. The serving layer assigns one worker per GPU shard, which
/// additionally makes runs deterministic (each stripe sees one well-defined
/// operation order).
#[derive(Debug)]
pub struct ShardedCache {
    policy: PolicyKind,
    guide: Option<StatGuide>,
    stripes: Vec<Mutex<Stripe>>,
}

impl ShardedCache {
    /// Builds a cache with a plain (guide-free) policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero stripes.
    pub fn new(policy: PolicyKind, config: CacheConfig) -> Self {
        assert!(config.stripes > 0, "cache needs at least one stripe");
        assert!(
            policy != PolicyKind::StatGuided,
            "StatGuided needs a guide; use ShardedCache::with_guide"
        );
        Self::build(policy, None, config)
    }

    /// Builds a [`PolicyKind::StatGuided`] cache: the guide's pinned rows are
    /// pre-loaded (warmed) and its admission filter gates every miss.
    pub fn with_guide(guide: StatGuide, config: CacheConfig) -> Self {
        let cache = Self::build(PolicyKind::StatGuided, Some(guide), config);
        cache.warm_pins();
        cache
    }

    fn build(policy: PolicyKind, guide: Option<StatGuide>, config: CacheConfig) -> Self {
        // Distribute the byte budget exactly: the first `remainder` stripes
        // take one extra byte, so the per-stripe capacities always sum to the
        // configured total (integer division alone would silently discard up
        // to `stripes - 1` bytes).
        let per_stripe = config.capacity_bytes / config.stripes as u64;
        let remainder = config.capacity_bytes % config.stripes as u64;
        Self {
            policy,
            guide,
            stripes: (0..config.stripes)
                .map(|i| {
                    Mutex::new(Stripe {
                        capacity: per_stripe + u64::from((i as u64) < remainder),
                        ..Stripe::default()
                    })
                })
                .collect(),
        }
    }

    /// Pre-loads the guide's pinned rows. The shard-level pin budget is
    /// enforced *per stripe* (`guide.pin_fraction()` of each stripe's
    /// capacity): the stripe hash can distribute pins unevenly, and a fully
    /// pinned stripe would permanently bypass every unpinned row that hashes
    /// into it, so each stripe is guaranteed an evictable remainder. Pins
    /// that would overflow a stripe's share are skipped, coldest first
    /// (pins arrive hottest-first).
    fn warm_pins(&self) {
        let Some(guide) = &self.guide else {
            return;
        };
        for &(table, row, bytes) in guide.pins() {
            let idx = self.stripe_of(table, row);
            let mut stripe = self.stripe(idx);
            let pin_budget = (stripe.capacity as f64 * guide.pin_fraction()) as u64;
            if stripe.stats.pinned_bytes + bytes <= pin_budget
                && stripe.stats.used_bytes + bytes <= stripe.capacity
                && !stripe.map.contains_key(&(table, row))
            {
                stripe.insert(PolicyKind::StatGuided, table, row, bytes, true);
            }
        }
    }

    /// The policy this cache evicts with.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Locks stripe `idx`. The per-shard serving loop is the only writer and
    /// never panics while holding a stripe lock, so poisoning only follows a
    /// panic that already aborted the simulation; every lock acquisition is
    /// funnelled through here to keep that reasoning in one place.
    fn stripe(&self, idx: usize) -> std::sync::MutexGuard<'_, Stripe> {
        // recshard-lint: allow(unwrap) -- see above: poisoning implies a
        // worker already panicked, and propagating is the only option.
        self.stripes[idx].lock().expect("stripe poisoned")
    }

    #[inline]
    fn stripe_of(&self, table: u32, row: u64) -> usize {
        // FNV-1a over (table, row): deterministic, well-mixed striping.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for word in [table as u64, row] {
            h ^= word;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.stripes.len() as u64) as usize
    }

    /// Accesses one row of `bytes` width: a hit is served from HBM, a miss
    /// from UVM (and possibly admitted for next time).
    pub fn access(&self, table: u32, row: u64, bytes: u64) -> Lookup {
        let idx = self.stripe_of(table, row);
        let mut stripe = self.stripe(idx);
        stripe.access(self.policy, self.guide.as_ref(), table, row, bytes)
    }

    /// Whether a row is currently resident in HBM (does not touch recency).
    pub fn contains(&self, table: u32, row: u64) -> bool {
        let idx = self.stripe_of(table, row);
        let stripe = self.stripe(idx);
        stripe.map.contains_key(&(table, row))
    }

    /// Aggregated counters across all stripes.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for i in 0..self.stripes.len() {
            total.merge(&self.stripe(i).stats);
        }
        total
    }

    /// Total capacity across all stripes, in bytes. Always equals the
    /// configured [`CacheConfig::capacity_bytes`], stripe count regardless.
    pub fn capacity_bytes(&self) -> u64 {
        (0..self.stripes.len())
            .map(|i| self.stripe(i).capacity)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StatGuide;

    fn single_stripe(capacity: u64) -> CacheConfig {
        CacheConfig::new(capacity).with_stripes(1)
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Room for exactly two 8-byte rows.
        let c = ShardedCache::new(PolicyKind::Lru, single_stripe(16));
        assert_eq!(c.access(0, 1, 8), Lookup::MissInserted);
        assert_eq!(c.access(0, 2, 8), Lookup::MissInserted);
        assert_eq!(c.access(0, 1, 8), Lookup::Hit); // row 2 is now LRU
        assert_eq!(c.access(0, 3, 8), Lookup::MissInserted); // evicts row 2
        assert!(c.contains(0, 1) && c.contains(0, 3) && !c.contains(0, 2));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1));
        assert_eq!(s.used_bytes, 16);
    }

    #[test]
    fn lfu_keeps_frequent_rows() {
        let c = ShardedCache::new(PolicyKind::Lfu, single_stripe(16));
        c.access(0, 1, 8);
        c.access(0, 1, 8);
        c.access(0, 1, 8); // freq 3
        c.access(0, 2, 8); // freq 1
        c.access(0, 3, 8); // must evict row 2 (lowest freq), not hot row 1
        assert!(c.contains(0, 1) && c.contains(0, 3) && !c.contains(0, 2));
    }

    #[test]
    fn lru_would_drop_the_hot_row_where_lfu_does_not() {
        // Same sequence as above but recency-ordered: LRU evicts row 1.
        let c = ShardedCache::new(PolicyKind::Lru, single_stripe(16));
        c.access(0, 1, 8);
        c.access(0, 1, 8);
        c.access(0, 1, 8);
        c.access(0, 2, 8); // row 1 is now least recent
        c.access(0, 3, 8);
        assert!(!c.contains(0, 1) && c.contains(0, 2) && c.contains(0, 3));
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let c = ShardedCache::new(PolicyKind::Lru, CacheConfig::new(64).with_stripes(2));
        for row in 0..100u64 {
            c.access(0, row, 8);
        }
        let s = c.stats();
        assert!(s.used_bytes <= 64);
        assert!(s.evictions > 0);
    }

    #[test]
    fn oversized_row_is_bypassed() {
        let c = ShardedCache::new(PolicyKind::Lru, single_stripe(16));
        assert_eq!(c.access(0, 1, 32), Lookup::MissBypassed);
        assert_eq!(c.stats().used_bytes, 0);
    }

    #[test]
    fn pinned_rows_survive_arbitrary_churn() {
        let guide = StatGuide::from_parts(vec![(0, 7, 8)], [(0u32, vec![7u64])]);
        let c = ShardedCache::with_guide(guide, single_stripe(16));
        assert!(c.contains(0, 7), "pin must be pre-loaded");
        // Churn with admissible rows? Only row 7 is admissible for table 0,
        // so use a second guide-free scenario: hammer the pinned cache with
        // bypassed rows and confirm the pin stays.
        for row in 0..50u64 {
            assert_eq!(c.access(0, row + 100, 8), Lookup::MissBypassed);
        }
        assert!(c.contains(0, 7));
        assert_eq!(c.access(0, 7, 8), Lookup::Hit);
        assert_eq!(c.stats().pinned_bytes, 8);
    }

    #[test]
    fn stat_guided_gates_unprofiled_rows_behind_the_doorkeeper() {
        let guide = StatGuide::from_parts(Vec::new(), [(0u32, vec![1u64, 2])]);
        let c = ShardedCache::with_guide(guide, single_stripe(64));
        assert_eq!(c.access(0, 1, 8), Lookup::MissInserted); // profiled: straight in
        assert_eq!(c.access(0, 9, 8), Lookup::MissBypassed); // one-hit wonder: out
        assert_eq!(c.access(1, 1, 8), Lookup::MissBypassed); // unknown table: out
        assert_eq!(c.access(0, 1, 8), Lookup::Hit);
        // A second access proves row 9 is warm: the doorkeeper admits it.
        assert_eq!(c.access(0, 9, 8), Lookup::MissInserted);
        assert_eq!(c.access(0, 9, 8), Lookup::Hit);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.bypasses), (2, 2, 2));
    }

    #[test]
    fn deterministic_for_identical_sequences() {
        let run = || {
            let c = ShardedCache::new(PolicyKind::Lfu, CacheConfig::new(256).with_stripes(4));
            let mut outcomes = Vec::new();
            for i in 0..500u64 {
                outcomes.push(c.access((i % 3) as u32, i * 7 % 40, 16));
            }
            (outcomes, c.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn concurrent_access_is_safe_and_conserves_counts() {
        let c = ShardedCache::new(PolicyKind::Lru, CacheConfig::new(1 << 12).with_stripes(8));
        let per_thread = 2_000u64;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &c;
                s.spawn(move || {
                    for i in 0..per_thread {
                        cache.access((t % 2) as u32, (i * 13 + t) % 512, 32);
                    }
                });
            }
        });
        let stats = c.stats();
        assert_eq!(stats.hits + stats.misses + stats.bypasses, 4 * per_thread);
        assert!(stats.used_bytes <= 1 << 12);
        assert_eq!(stats.entries * 32, stats.used_bytes);
    }

    #[test]
    fn pins_never_consume_a_stripe_entirely() {
        // Four 8-byte pin candidates, but the guide allows pins to occupy at
        // most half of the (single) 32-byte stripe: exactly two are warmed,
        // and the remainder stays evictable for admitted traffic.
        let pins = vec![(0u32, 1u64, 8u64), (0, 2, 8), (0, 3, 8), (0, 4, 8)];
        let guide = StatGuide::from_parts(pins, [(0u32, vec![1u64, 2, 3, 4, 10, 11, 12])])
            .with_pin_fraction(0.5);
        let c = ShardedCache::with_guide(guide, single_stripe(32));
        let s = c.stats();
        assert_eq!(s.pinned_bytes, 16, "pins must stop at the stripe budget");
        // The unpinned remainder still admits and evicts normally.
        assert_eq!(c.access(0, 10, 8), Lookup::MissInserted);
        assert_eq!(c.access(0, 11, 8), Lookup::MissInserted);
        assert_eq!(c.access(0, 12, 8), Lookup::MissInserted); // evicts 10 or 11
        let s = c.stats();
        assert_eq!(s.used_bytes, 32);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.pinned_bytes, 16, "evictions never touch pins");
    }

    #[test]
    #[should_panic(expected = "StatGuided needs a guide")]
    fn stat_guided_without_guide_rejected() {
        let _ = ShardedCache::new(PolicyKind::StatGuided, CacheConfig::new(64));
    }

    #[test]
    fn non_divisible_capacity_is_fully_distributed() {
        // 103 bytes over 8 stripes: integer division would keep 8×12 = 96
        // bytes and silently drop 7. The remainder must be spread across the
        // first stripes and `capacity_bytes()` must report the exact total.
        let c = ShardedCache::new(PolicyKind::Lru, CacheConfig::new(103).with_stripes(8));
        assert_eq!(c.capacity_bytes(), 103);
        let per_stripe: Vec<u64> = (0..c.stripes.len()).map(|i| c.stripe(i).capacity).collect();
        assert_eq!(per_stripe.iter().sum::<u64>(), 103);
        assert!(per_stripe.iter().all(|&c| c == 12 || c == 13));
        assert_eq!(per_stripe.iter().filter(|&&c| c == 13).count(), 7);
        // Divisible capacities still split evenly.
        let even = ShardedCache::new(PolicyKind::Lru, CacheConfig::new(64).with_stripes(8));
        assert_eq!(even.capacity_bytes(), 64);
    }
}
