//! Hash utilisation analysis (Section 3.4, Figures 7 and 8).
//!
//! Embedding hashing trades accuracy for bounded table size, but the birthday
//! paradox guarantees collisions and — as the hash size grows to preserve the
//! distribution's tail — leaves an increasing fraction of the table unused.
//! RecShard reclaims that unused space by relegating it to UVM. This module
//! provides the measured and analytic sweeps Figure 8 plots.

use rand::{Rng, SeedableRng};
use recshard_data::hash::{expected_collision_fraction, expected_usage};
use recshard_data::{FeatureHasher, Zipf};
use serde::{Deserialize, Serialize};

/// One point of the hash-size sweep of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HashSweepPoint {
    /// Hash size as a multiple of the number of distinct input values.
    pub size_multiple: f64,
    /// Measured fraction of the hash space used by at least one input value.
    pub usage: f64,
    /// Measured fraction of input values that collided.
    pub collision_fraction: f64,
    /// Measured fraction of the hash space left unused (`1 - usage`).
    pub sparsity: f64,
    /// Analytic expectation of the usage at this point.
    pub expected_usage: f64,
    /// Analytic expectation of the collision fraction at this point.
    pub expected_collision_fraction: f64,
}

/// Sweeps the hash size from `min_multiple` to `max_multiple` of the distinct
/// input cardinality and reports usage/collision/sparsity at each point
/// (Figure 8). `cardinality` distinct raw values are hashed at every point.
pub fn hash_size_sweep(
    cardinality: u64,
    min_multiple: f64,
    max_multiple: f64,
    points: usize,
    seed: u64,
) -> Vec<HashSweepPoint> {
    assert!(cardinality > 0, "cardinality must be non-zero");
    assert!(points >= 2, "a sweep needs at least two points");
    assert!(
        min_multiple > 0.0 && max_multiple > min_multiple,
        "sweep bounds must be positive and increasing"
    );
    let values: Vec<u64> = (0..cardinality)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    (0..points)
        .map(|k| {
            let multiple =
                min_multiple + (max_multiple - min_multiple) * k as f64 / (points - 1) as f64;
            let hash_size = ((cardinality as f64 * multiple).round() as u64).max(1);
            let hasher = FeatureHasher::new(hash_size, seed);
            let stats = hasher.collision_stats(&values);
            HashSweepPoint {
                size_multiple: multiple,
                usage: stats.usage(),
                collision_fraction: stats.collision_fraction(),
                sparsity: stats.sparsity(),
                expected_usage: expected_usage(cardinality, hash_size),
                expected_collision_fraction: expected_collision_fraction(cardinality, hash_size),
            }
        })
        .collect()
}

/// The pre- and post-hash frequency distributions of one synthetic skewed
/// feature (Figure 7): per-value counts of the raw categorical space and
/// per-row counts of the hashed embedding space, both sorted descending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrePostHashDistribution {
    /// Raw value access counts, sorted descending.
    pub pre_hash_counts: Vec<u64>,
    /// Post-hash row access counts, sorted descending.
    pub post_hash_counts: Vec<u64>,
    /// The hash size used.
    pub hash_size: u64,
    /// Fraction of the hash space never accessed (training-data sparsity plus
    /// collision compression, the "26% + 22%" of Figure 7).
    pub unused_fraction: f64,
}

/// Generates the pre-/post-hash distributions of a Zipf-distributed feature
/// accessed `num_lookups` times (Figure 7).
pub fn pre_post_hash_distribution(
    cardinality: u64,
    hash_size: u64,
    zipf_exponent: f64,
    num_lookups: usize,
    seed: u64,
) -> PrePostHashDistribution {
    let zipf = Zipf::new(cardinality, zipf_exponent);
    let hasher = FeatureHasher::new(hash_size, seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // BTreeMaps so the into_values() walks below are ordered; the counts are
    // sorted afterwards anyway, but the intermediate walk stays deterministic.
    let mut pre = std::collections::BTreeMap::new();
    let mut post = std::collections::BTreeMap::new();
    for _ in 0..num_lookups {
        let v = zipf.sample(&mut rng);
        *pre.entry(v).or_insert(0u64) += 1;
        *post.entry(hasher.hash(v)).or_insert(0u64) += 1;
    }
    let mut pre_hash_counts: Vec<u64> = pre.into_values().collect();
    let mut post_hash_counts: Vec<u64> = post.into_values().collect();
    pre_hash_counts.sort_unstable_by(|a, b| b.cmp(a));
    post_hash_counts.sort_unstable_by(|a, b| b.cmp(a));
    let unused_fraction = 1.0 - post_hash_counts.len() as f64 / hash_size as f64;
    PrePostHashDistribution {
        pre_hash_counts,
        post_hash_counts,
        hash_size,
        unused_fraction,
    }
}

/// Convenience used by tests and figures: draws `num_lookups` samples from a
/// Zipf distribution and reports how many distinct values were observed.
pub fn distinct_values_observed(
    cardinality: u64,
    zipf_exponent: f64,
    num_lookups: usize,
    seed: u64,
) -> u64 {
    let zipf = Zipf::new(cardinality, zipf_exponent);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..num_lookups {
        seen.insert(zipf.sample(&mut rng));
    }
    let _ = rng.gen::<u64>();
    seen.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_birthday_paradox_at_one() {
        let sweep = hash_size_sweep(50_000, 0.5, 4.0, 8, 3);
        // Find the point closest to multiple = 1.
        let at_one = sweep
            .iter()
            .min_by(|a, b| {
                (a.size_multiple - 1.0)
                    .abs()
                    .partial_cmp(&(b.size_multiple - 1.0).abs())
                    .unwrap()
            })
            .unwrap();
        assert!(
            (at_one.sparsity - 1.0 / std::f64::consts::E).abs() < 0.05,
            "sparsity at multiple 1 should be about 1/e, got {}",
            at_one.sparsity
        );
    }

    #[test]
    fn sweep_is_monotone_in_hash_size() {
        // Measured values carry sampling noise of a fraction of a percent, so
        // allow a small tolerance; the analytic curves are exactly monotone.
        let sweep = hash_size_sweep(20_000, 0.25, 10.0, 12, 5);
        for w in sweep.windows(2) {
            assert!(
                w[1].usage <= w[0].usage + 5e-3,
                "usage falls as hash size grows"
            );
            assert!(
                w[1].sparsity >= w[0].sparsity - 5e-3,
                "sparsity grows with hash size"
            );
            assert!(
                w[1].collision_fraction <= w[0].collision_fraction + 5e-3,
                "collisions fall with hash size"
            );
            assert!(w[1].expected_usage <= w[0].expected_usage + 1e-12);
            assert!(w[1].expected_collision_fraction <= w[0].expected_collision_fraction + 1e-12);
        }
    }

    #[test]
    fn measured_matches_analytic() {
        let sweep = hash_size_sweep(30_000, 0.5, 5.0, 6, 11);
        for p in &sweep {
            assert!((p.usage - p.expected_usage).abs() < 0.02);
            assert!((p.collision_fraction - p.expected_collision_fraction).abs() < 0.02);
        }
    }

    #[test]
    fn pre_post_distribution_compresses_space() {
        let d = pre_post_hash_distribution(40_000, 50_000, 1.1, 200_000, 7);
        // Post-hash distinct rows never exceed pre-hash distinct values,
        // and collisions make them strictly fewer for a sizable input.
        assert!(d.post_hash_counts.len() <= d.pre_hash_counts.len());
        assert!(d.unused_fraction > 0.0);
        // Total accesses conserved.
        let pre_total: u64 = d.pre_hash_counts.iter().sum();
        let post_total: u64 = d.post_hash_counts.iter().sum();
        assert_eq!(pre_total, post_total);
    }

    #[test]
    fn distinct_values_bounded_by_cardinality() {
        let seen = distinct_values_observed(1_000, 0.8, 50_000, 3);
        assert!(seen <= 1_000);
        assert!(
            seen > 500,
            "50k draws over 1k values should observe most of them"
        );
    }

    #[test]
    #[should_panic(expected = "sweep bounds must be positive and increasing")]
    fn invalid_sweep_bounds_rejected() {
        let _ = hash_size_sweep(100, 2.0, 1.0, 4, 1);
    }
}
