//! Serving placements that need no profile.
//!
//! Inference routing reuses training [`ShardingPlan`]s — only the
//! table→GPU assignment matters to the server (the HBM split is replaced by
//! the cache). This module provides the classic profile-free baseline:
//! hash-partitioning tables across shards, the default of most production
//! parameter servers and the weakest placement the serving benchmark
//! compares against.

use recshard_data::ModelSpec;
use recshard_sharding::{ShardingPlan, TablePlacement};

/// Hash placement: table `t` is owned by shard `t % num_shards`, every row
/// nominally in UVM (the serving cache decides HBM residency dynamically).
///
/// # Panics
///
/// Panics if `num_shards == 0`.
pub fn hash_placement(model: &ModelSpec, num_shards: usize) -> ShardingPlan {
    assert!(num_shards > 0, "need at least one shard");
    let placements = model
        .features()
        .iter()
        .map(|f| TablePlacement {
            table: f.id,
            gpu: f.id.index() % num_shards,
            hbm_rows: 0,
            total_rows: f.hash_size,
            row_bytes: f.row_bytes(),
        })
        .collect();
    ShardingPlan::new("hash", num_shards, placements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_placement_round_robins_tables() {
        let model = ModelSpec::small(7, 2);
        let plan = hash_placement(&model, 3);
        assert_eq!(plan.strategy(), "hash");
        assert_eq!(plan.num_gpus(), 3);
        for (t, p) in plan.placements().iter().enumerate() {
            assert_eq!(p.gpu, t % 3);
            assert_eq!(p.hbm_rows, 0);
        }
        // Tables spread across all shards.
        for g in 0..3 {
            assert!(!plan.tables_on_gpu(g).is_empty());
        }
    }
}
