//! The run-report layer: a small key/value report the bench bins render
//! instead of hand-rolling their own events/sec + fingerprint printing.

use crate::registry::{MetricValue, MetricsSnapshot};
use std::time::Duration;

/// Wall-clock event rate, robust to zero-duration clocks.
pub fn events_per_sec(count: u64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

/// A titled list of `key: value` lines, renderable to the terminal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    title: String,
    lines: Vec<(String, String)>,
}

impl RunReport {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            lines: Vec::new(),
        }
    }

    /// Appends one `key: value` line.
    pub fn push(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.lines.push((key.to_string(), value.to_string()));
        self
    }

    /// Appends a 64-bit fingerprint line in the repo's `{:#018x}` style.
    pub fn push_fingerprint(&mut self, key: &str, fingerprint: u64) -> &mut Self {
        self.push(key, format!("{fingerprint:#018x}"))
    }

    /// Appends a wall-clock rate line: `count events in X ms (Y/s)`.
    pub fn push_rate(&mut self, key: &str, count: u64, wall: Duration) -> &mut Self {
        self.push(
            key,
            format!(
                "{count} in {:.1} ms ({:.0}/s)",
                wall.as_secs_f64() * 1e3,
                events_per_sec(count, wall)
            ),
        )
    }

    /// Appends one line per metric of a snapshot (counters and gauges as
    /// plain values, quantiles as `count/p50/p95/p99`, histograms as bucket
    /// counts), skipping untouched metrics so reports stay readable.
    pub fn push_metrics(&mut self, snapshot: &MetricsSnapshot) -> &mut Self {
        for (name, value) in &snapshot.entries {
            match value {
                MetricValue::Counter(0) => {}
                MetricValue::Counter(v) => {
                    self.push(name, v);
                }
                MetricValue::Gauge(v) if *v == 0.0 => {}
                MetricValue::Gauge(v) => {
                    self.push(name, format!("{v:.3}"));
                }
                MetricValue::Histogram { counts, .. } => {
                    if counts.iter().any(|&c| c > 0) {
                        let joined = counts
                            .iter()
                            .map(|c| c.to_string())
                            .collect::<Vec<_>>()
                            .join("/");
                        self.push(name, joined);
                    }
                }
                MetricValue::Quantile(q) if q.count > 0 => {
                    self.push(
                        name,
                        format!(
                            "n={} p50={:.3} p95={:.3} p99={:.3}",
                            q.count, q.p50, q.p95, q.p99
                        ),
                    );
                }
                MetricValue::Quantile(_) => {}
            }
        }
        self
    }

    /// The `key: value` lines pushed so far.
    pub fn lines(&self) -> &[(String, String)] {
        &self.lines
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        for (key, value) in &self.lines {
            out.push_str(&format!("  {key}: {value}\n"));
        }
        out
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn rates_and_rendering() {
        assert_eq!(events_per_sec(500, Duration::from_millis(250)), 2_000.0);
        assert_eq!(events_per_sec(500, Duration::ZERO), 0.0);
        let mut r = RunReport::new("demo");
        r.push("iters", 10)
            .push_fingerprint("fingerprint", 0xABCD)
            .push_rate("events", 100, Duration::from_secs(2));
        let text = r.render();
        assert!(text.starts_with("== demo ==\n"));
        assert!(text.contains("  iters: 10\n"));
        assert!(text.contains("0x000000000000abcd"));
        assert!(text.contains("(50/s)"));
    }

    #[test]
    fn metrics_lines_skip_untouched_entries() {
        let mut reg = MetricsRegistry::new();
        let used = reg.counter("used");
        reg.counter("unused");
        let q = reg.quantile("lat");
        reg.quantile("empty");
        reg.incr(used);
        reg.record(q, 1.0);
        let mut r = RunReport::new("m");
        r.push_metrics(&reg.snapshot());
        let text = r.render();
        assert!(text.contains("used: 1"));
        assert!(!text.contains("unused"));
        assert!(text.contains("lat: n=1"));
        assert!(!text.contains("empty"));
    }
}
