//! The structured large-scale solver.
//!
//! The paper's MILP has a very particular structure: each table independently
//! chooses one point on its ICDF (a split between HBM and UVM rows), each
//! table is owned by exactly one GPU, and the objective is the *maximum* over
//! GPUs of the sum of coverage-weighted table costs, subject to per-GPU HBM
//! and DRAM capacities. [`StructuredSolver`] exploits that structure:
//!
//! 1. **Split selection** — start with every table at its cheapest (most
//!    HBM-hungry) option and repeatedly downgrade the split with the lowest
//!    marginal cost increase per HBM byte freed until the aggregate HBM
//!    demand fits the fleet (a greedy that is optimal for the continuous
//!    knapsack / Lagrangian relaxation of the split-selection subproblem).
//! 2. **Assignment** — Longest-Processing-Time greedy onto the GPU with the
//!    lowest accumulated cost that still has capacity, followed by
//!    move/swap local search focused on the bottleneck GPU. On a
//!    heterogeneous [`ClusterSpec`](recshard_sharding::ClusterSpec) every
//!    GPU is charged the cost of the table under *its own* device class's
//!    bandwidths and checked against its own capacities, so fast
//!    big-memory GPUs naturally attract more (and hotter) tables.
//! 3. **Backfill** — any HBM left free on a GPU after assignment is used to
//!    upgrade the splits of that GPU's own tables, cheapest-gain first.
//!
//! Property tests in this module and the integration suite check the solver
//! against the exact MILP on small instances and verify capacity safety on
//! random ones.

use crate::config::RecShardConfig;
use crate::cost::TableCostModel;
use crate::error::RecShardError;
use recshard_data::ModelSpec;
use recshard_sharding::{ShardingPlan, SystemSpec, TablePlacement};
use recshard_stats::DatasetProfile;
use std::collections::BinaryHeap;

/// Scalable RecShard placement solver.
#[derive(Debug, Clone)]
pub struct StructuredSolver {
    config: RecShardConfig,
}

#[derive(Debug, Clone)]
struct TableState {
    step: usize,
}

impl StructuredSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: RecShardConfig) -> Self {
        Self { config }
    }

    /// Produces a RecShard placement plan.
    ///
    /// # Errors
    ///
    /// Returns [`RecShardError::CapacityExceeded`] if the model cannot fit in
    /// the system at all, and [`RecShardError::ProfileMismatch`] if the
    /// profile does not cover the model.
    pub fn solve(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> Result<ShardingPlan, RecShardError> {
        self.config
            .validate()
            .map_err(RecShardError::InvalidConfig)?;
        if profile.num_features() != model.num_features() {
            return Err(RecShardError::ProfileMismatch(format!(
                "profile covers {} features, model has {}",
                profile.num_features(),
                model.num_features()
            )));
        }
        if model.total_bytes() > system.total_capacity() {
            return Err(RecShardError::CapacityExceeded {
                required_bytes: model.total_bytes(),
                available_bytes: system.total_capacity(),
            });
        }

        let batch = model.batch_size();
        // One cost menu per (device class, table). Menu geometry (row counts
        // and bytes per step) is class-invariant; only the costs differ.
        // Class 0 is the reference class phase 1 selects splits against.
        let class_menus: Vec<Vec<TableCostModel>> = system
            .classes()
            .iter()
            .map(|device| {
                profile
                    .profiles()
                    .iter()
                    .enumerate()
                    .map(|(t, p)| TableCostModel::build(t, p, device, batch, &self.config))
                    .collect()
            })
            .collect();
        let costs: &[TableCostModel] = &class_menus[0];

        // ---- Phase 1: split selection against the aggregate HBM budget ----
        let budget = (system.total_hbm_capacity() as f64 * (1.0 - self.config.hbm_slack)) as u64;
        let mut states: Vec<TableState> = costs
            .iter()
            .map(|c| TableState {
                step: c.options.len() - 1,
            })
            .collect();
        let mut hbm_demand: u64 = costs.iter().map(|c| c.max_option().hbm_bytes).sum();

        // Max-heap keyed by Reverse(marginal cost per freed byte) so the
        // cheapest downgrade pops first.
        #[derive(PartialEq)]
        struct Downgrade {
            ratio: f64,
            table: usize,
            from_step: usize,
        }
        impl Eq for Downgrade {}
        impl PartialOrd for Downgrade {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Downgrade {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .ratio
                    .partial_cmp(&self.ratio)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(other.table.cmp(&self.table))
            }
        }

        let downgrade_of =
            |costs: &[TableCostModel], table: usize, from_step: usize| -> Option<Downgrade> {
                if from_step == 0 {
                    return None;
                }
                let cur = &costs[table].options[from_step];
                // Find the next step down that actually frees bytes (skip plateaus).
                let mut to = from_step;
                while to > 0 {
                    to -= 1;
                    if costs[table].options[to].hbm_bytes < cur.hbm_bytes {
                        break;
                    }
                }
                let next = &costs[table].options[to];
                let freed = cur.hbm_bytes.saturating_sub(next.hbm_bytes);
                if freed == 0 {
                    return None;
                }
                let extra_cost = (next.weighted_cost - cur.weighted_cost).max(0.0);
                Some(Downgrade {
                    ratio: extra_cost / freed as f64,
                    table,
                    from_step,
                })
            };

        let mut heap: BinaryHeap<Downgrade> = BinaryHeap::new();
        for t in 0..costs.len() {
            if let Some(d) = downgrade_of(costs, t, states[t].step) {
                heap.push(d);
            }
        }
        while hbm_demand > budget {
            let Some(d) = heap.pop() else { break };
            if d.from_step != states[d.table].step {
                continue; // stale entry
            }
            // Apply the downgrade to the next strictly smaller option.
            let cur_bytes = costs[d.table].options[d.from_step].hbm_bytes;
            let mut to = d.from_step;
            while to > 0 {
                to -= 1;
                if costs[d.table].options[to].hbm_bytes < cur_bytes {
                    break;
                }
            }
            let freed = cur_bytes - costs[d.table].options[to].hbm_bytes;
            states[d.table].step = to;
            hbm_demand -= freed;
            if let Some(next) = downgrade_of(costs, d.table, to) {
                heap.push(next);
            }
        }

        // ---- Phase 2: min-max assignment (LPT + capacity) ----
        let m = system.num_gpus();
        let mut gpu_cost = vec![0.0f64; m];
        let mut hbm_free: Vec<u64> = (0..m).map(|g| system.hbm_capacity(g)).collect();
        let mut dram_free: Vec<u64> = (0..m).map(|g| system.dram_capacity(g)).collect();
        let mut assignment: Vec<Option<usize>> = vec![None; costs.len()];
        // The cost of table `t` at split step `s` when owned by GPU `g` —
        // charged under g's device class (for a uniform cluster this is
        // exactly the single shared menu).
        let cost_on = |t: usize, s: usize, g: usize| {
            class_menus[system.class_of(g)][t].options[s].weighted_cost
        };

        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by(|&a, &b| {
            let ca = costs[a].options[states[a].step].weighted_cost;
            let cb = costs[b].options[states[b].step].weighted_cost;
            cb.partial_cmp(&ca)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        for &t in &order {
            // Cheapest-loaded GPU that can hold the table at its current split;
            // if none can, progressively downgrade the split until one fits.
            loop {
                let opt = &costs[t].options[states[t].step];
                let candidate = (0..m)
                    .filter(|&g| hbm_free[g] >= opt.hbm_bytes && dram_free[g] >= opt.uvm_bytes)
                    .min_by(|&a, &b| {
                        gpu_cost[a]
                            .partial_cmp(&gpu_cost[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(&b))
                    });
                if let Some(g) = candidate {
                    hbm_free[g] -= opt.hbm_bytes;
                    dram_free[g] -= opt.uvm_bytes;
                    gpu_cost[g] += cost_on(t, states[t].step, g);
                    assignment[t] = Some(g);
                    break;
                }
                if states[t].step == 0 {
                    return Err(RecShardError::CapacityExceeded {
                        required_bytes: opt.uvm_bytes,
                        available_bytes: dram_free.iter().copied().max().unwrap_or(0),
                    });
                }
                states[t].step -= 1;
            }
        }

        // ---- Phase 3a: move/swap local search on the bottleneck GPU ----
        for _ in 0..self.config.refinement_passes {
            let bottleneck = (0..m)
                .max_by(|&a, &b| {
                    gpu_cost[a]
                        .partial_cmp(&gpu_cost[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("at least one GPU");
            let mut improved = false;
            let tables_on_bottleneck: Vec<usize> = (0..costs.len())
                .filter(|&t| assignment[t] == Some(bottleneck))
                .collect();
            for &t in &tables_on_bottleneck {
                let opt = &costs[t].options[states[t].step];
                let src_cost = cost_on(t, states[t].step, bottleneck);
                // Try moving table t to the GPU that minimises the new max cost.
                let mut best: Option<(usize, f64)> = None;
                for g in 0..m {
                    if g == bottleneck
                        || hbm_free[g] < opt.hbm_bytes
                        || dram_free[g] < opt.uvm_bytes
                    {
                        continue;
                    }
                    let new_src = gpu_cost[bottleneck] - src_cost;
                    let new_dst = gpu_cost[g] + cost_on(t, states[t].step, g);
                    let new_max = (0..m)
                        .map(|x| {
                            if x == bottleneck {
                                new_src
                            } else if x == g {
                                new_dst
                            } else {
                                gpu_cost[x]
                            }
                        })
                        .fold(0.0f64, f64::max);
                    if new_max + 1e-12 < gpu_cost[bottleneck]
                        && best.map(|(_, b)| new_max < b).unwrap_or(true)
                    {
                        best = Some((g, new_max));
                    }
                }
                if let Some((g, _)) = best {
                    hbm_free[bottleneck] += opt.hbm_bytes;
                    dram_free[bottleneck] += opt.uvm_bytes;
                    hbm_free[g] -= opt.hbm_bytes;
                    dram_free[g] -= opt.uvm_bytes;
                    gpu_cost[bottleneck] -= src_cost;
                    gpu_cost[g] += cost_on(t, states[t].step, g);
                    assignment[t] = Some(g);
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }

        // ---- Phase 3b: backfill leftover per-GPU HBM by upgrading splits ----
        for g in 0..m {
            let menus = &class_menus[system.class_of(g)];
            loop {
                // Pick the upgrade with the largest cost reduction that fits
                // (gains charged under this GPU's device class).
                let mut best: Option<(usize, usize, f64, u64)> = None; // (table, new_step, gain, extra_bytes)
                for t in 0..menus.len() {
                    if assignment[t] != Some(g) {
                        continue;
                    }
                    let cur = &menus[t].options[states[t].step];
                    for step in (states[t].step + 1)..menus[t].options.len() {
                        let cand = &menus[t].options[step];
                        let extra = cand.hbm_bytes.saturating_sub(cur.hbm_bytes);
                        if extra > hbm_free[g] {
                            break;
                        }
                        let gain = cur.weighted_cost - cand.weighted_cost;
                        if gain > 1e-15 && best.map(|(_, _, bg, _)| gain > bg).unwrap_or(true) {
                            best = Some((t, step, gain, extra));
                        }
                    }
                }
                let Some((t, step, gain, extra)) = best else {
                    break;
                };
                let _ = gain;
                hbm_free[g] -= extra;
                dram_free[g] +=
                    menus[t].options[states[t].step].uvm_bytes - menus[t].options[step].uvm_bytes;
                gpu_cost[g] -= menus[t].options[states[t].step].weighted_cost
                    - menus[t].options[step].weighted_cost;
                states[t].step = step;
            }
        }

        // ---- Materialise the plan ----
        let placements = model
            .features()
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let opt = &costs[t].options[states[t].step];
                TablePlacement {
                    table: spec.id,
                    gpu: assignment[t].expect("every table assigned"),
                    hbm_rows: opt.hbm_rows,
                    total_rows: spec.hash_size,
                    row_bytes: spec.row_bytes(),
                }
            })
            .collect();
        let plan = ShardingPlan::new("recshard", m, placements);
        debug_assert!(plan.validate(model, system).is_ok());
        Ok(plan)
    }

    /// The exact per-GPU cost vector of a plan: every table charged its
    /// coverage-weighted analytical cost at the *actual* placed row count
    /// ([`TableCostModel::weighted_cost_at`]), with no rounding onto the
    /// table's ICDF grid. For plans whose splits sit on their own grid (the
    /// structured solver's) this agrees with [`gpu_costs`](Self::gpu_costs);
    /// for bucketed plans, whose row counts come from a representative's
    /// grid, it is the artifact-free objective.
    pub fn gpu_costs_exact(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
        plan: &ShardingPlan,
    ) -> Vec<f64> {
        let batch = model.batch_size();
        let mut gpu_cost = vec![0.0f64; plan.num_gpus()];
        for (t, p) in plan.placements().iter().enumerate() {
            gpu_cost[p.gpu] += TableCostModel::weighted_cost_at(
                &profile.profiles()[t],
                system.device(p.gpu),
                batch,
                &self.config,
                p.hbm_rows,
            );
        }
        gpu_cost
    }

    /// The estimated per-GPU cost vector of a plan under this solver's cost
    /// model (useful for reporting the objective value).
    pub fn gpu_costs(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
        plan: &ShardingPlan,
    ) -> Vec<f64> {
        let batch = model.batch_size();
        let mut gpu_cost = vec![0.0f64; plan.num_gpus()];
        for (t, p) in plan.placements().iter().enumerate() {
            let cm = TableCostModel::build(
                t,
                &profile.profiles()[t],
                system.device(p.gpu),
                batch,
                &self.config,
            );
            // Use the most generous option that does not exceed the plan's
            // HBM row budget for this table (conservative cost estimate).
            let opt = cm
                .options
                .iter()
                .rfind(|o| o.hbm_rows <= p.hbm_rows)
                .unwrap_or_else(|| cm.min_option());
            gpu_cost[p.gpu] += opt.weighted_cost;
        }
        gpu_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::ModelSpec;
    use recshard_stats::DatasetProfiler;

    fn setup(n: usize, seed: u64) -> (ModelSpec, DatasetProfile) {
        let model = ModelSpec::small(n, seed);
        let profile = DatasetProfiler::profile_model(&model, 2_000, seed + 1);
        (model, profile)
    }

    #[test]
    fn ample_capacity_keeps_accessed_rows_in_hbm() {
        let (model, profile) = setup(8, 3);
        let system = SystemSpec::uniform(2, model.total_bytes(), model.total_bytes(), 1555.0, 16.0);
        let plan = StructuredSolver::new(RecShardConfig::default())
            .solve(&model, &profile, &system)
            .unwrap();
        plan.validate(&model, &system).unwrap();
        for (p, prof) in plan.placements().iter().zip(profile.profiles()) {
            assert!(
                p.hbm_rows >= prof.accessed_rows(),
                "all accessed rows should be in HBM"
            );
        }
    }

    #[test]
    fn capacity_pressure_moves_cold_rows_to_uvm() {
        let (model, profile) = setup(10, 7);
        let system = SystemSpec::uniform(
            2,
            model.total_bytes() / 8,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let plan = StructuredSolver::new(RecShardConfig::default())
            .solve(&model, &profile, &system)
            .unwrap();
        plan.validate(&model, &system).unwrap();
        assert!(plan.total_uvm_rows() > 0);
        // HBM usage never exceeds per-GPU capacity (validate also checks this).
        for (g, &bytes) in plan.hbm_bytes_per_gpu().iter().enumerate() {
            assert!(bytes <= system.hbm_capacity(g));
        }
    }

    #[test]
    fn tighter_capacity_never_decreases_estimated_cost() {
        let (model, profile) = setup(8, 11);
        let solver = StructuredSolver::new(RecShardConfig::default());
        let mut prev_cost = 0.0;
        for denom in [1u64, 4, 8, 16] {
            let system = SystemSpec::uniform(
                2,
                (model.total_bytes() / denom).max(1),
                model.total_bytes() * 2,
                1555.0,
                16.0,
            );
            let plan = solver.solve(&model, &profile, &system).unwrap();
            let max_cost = solver
                .gpu_costs(&model, &profile, &system, &plan)
                .into_iter()
                .fold(0.0f64, f64::max);
            assert!(
                max_cost + 1e-9 >= prev_cost,
                "less HBM should never make the plan cheaper ({max_cost} vs {prev_cost})"
            );
            prev_cost = max_cost;
        }
    }

    #[test]
    fn rejects_impossible_models() {
        let (model, profile) = setup(4, 5);
        let system = SystemSpec::uniform(1, 16, 16, 1555.0, 16.0);
        assert!(matches!(
            StructuredSolver::new(RecShardConfig::default()).solve(&model, &profile, &system),
            Err(RecShardError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn deterministic() {
        let (model, profile) = setup(9, 13);
        let system = SystemSpec::uniform(
            3,
            model.total_bytes() / 5,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let solver = StructuredSolver::new(RecShardConfig::default());
        let a = solver.solve(&model, &profile, &system).unwrap();
        let b = solver.solve(&model, &profile, &system).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn load_balance_beats_naive_round_robin_under_skew() {
        // Construct a model whose tables have wildly different bandwidth
        // demand and check the solver's per-GPU cost spread is tighter than a
        // round-robin full-HBM assignment.
        let (model, profile) = setup(12, 21);
        let system = SystemSpec::uniform(4, model.total_bytes(), model.total_bytes(), 1555.0, 16.0);
        let solver = StructuredSolver::new(RecShardConfig::default());
        let plan = solver.solve(&model, &profile, &system).unwrap();
        let costs = solver.gpu_costs(&model, &profile, &system, &plan);
        let max = costs.iter().cloned().fold(0.0f64, f64::max);

        let rr_placements = model
            .features()
            .iter()
            .map(|f| TablePlacement {
                table: f.id,
                gpu: f.id.index() % 4,
                hbm_rows: f.hash_size,
                total_rows: f.hash_size,
                row_bytes: f.row_bytes(),
            })
            .collect();
        let rr = ShardingPlan::new("round-robin", 4, rr_placements);
        let rr_max = solver
            .gpu_costs(&model, &profile, &system, &rr)
            .into_iter()
            .fold(0.0f64, f64::max);
        assert!(
            max <= rr_max + 1e-9,
            "RecShard max per-GPU cost {max} should not exceed round-robin {rr_max}"
        );
    }
}
