//! The zero-alloc-on-hot-path metrics registry.
//!
//! Metrics are registered once at setup time by name and handed back as
//! `Copy` handle ids; the hot path indexes by handle and performs one
//! relaxed atomic op (counters, gauges, histogram buckets) or takes one
//! per-metric mutex (quantile sinks — the same stripe-per-unit locking
//! discipline as `recshard-serve`'s `ShardedCache`, so two metrics never
//! contend). Snapshots sort by name and serialise to canonical JSON, making
//! a seeded run's metrics byte-identical across repetitions.

use recshard_stats::{StreamingCdf, Summary};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Handle of a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle of a registered fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Handle of a registered P² quantile sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantileId(usize);

/// A fixed-bucket histogram: `bounds` are inclusive upper bounds, plus one
/// overflow bucket.
#[derive(Debug)]
struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
}

/// Snapshot of one quantile sink: P² tail estimates plus exact moments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileStats {
    /// Observations recorded.
    pub count: u64,
    /// Median estimate (0 when empty).
    pub p50: f64,
    /// 95th-percentile estimate (0 when empty).
    pub p95: f64,
    /// 99th-percentile estimate (0 when empty).
    pub p99: f64,
    /// Exact min/max/mean/std of everything recorded.
    pub summary: Summary,
}

/// The registry. Registration (`&mut self`) happens at setup; recording
/// (`&self`) is hot-path safe and shareable across worker threads.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, AtomicU64)>,
    gauges: Vec<(String, AtomicU64)>,
    histograms: Vec<(String, Histogram)>,
    quantiles: Vec<(String, Mutex<StreamingCdf>)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) a monotonically increasing counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), AtomicU64::new(0)));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a last-write-wins gauge. Unset gauges snapshot
    /// as 0.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges
            .push((name.to_string(), AtomicU64::new(0f64.to_bits())));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram over ascending inclusive upper
    /// `bounds` plus an implicit overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend strictly"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        self.histograms.push((
            name.to_string(),
            Histogram {
                bounds: bounds.to_vec(),
                counts,
            },
        ));
        HistogramId(self.histograms.len() - 1)
    }

    /// Registers (or finds) a P² quantile sink tracking p50/p95/p99 with
    /// exact moments — the same estimator the simulators report tails from.
    pub fn quantile(&mut self, name: &str) -> QuantileId {
        if let Some(i) = self.quantiles.iter().position(|(n, _)| n == name) {
            return QuantileId(i);
        }
        self.quantiles.push((
            name.to_string(),
            Mutex::new(StreamingCdf::latency_defaults()),
        ));
        QuantileId(self.quantiles.len() - 1)
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, delta: u64) {
        self.counters[id.0].1.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&self, id: GaugeId, value: f64) {
        self.gauges[id.0]
            .1
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds one observation to a histogram (linear scan over the fixed
    /// bounds; no allocation).
    #[inline]
    pub fn observe(&self, id: HistogramId, value: f64) {
        let h = &self.histograms[id.0].1;
        let bucket = h
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(h.bounds.len());
        h.counts[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Locks one quantile stripe. No writer panics while holding a stripe
    /// lock, so poisoning only follows a panic that already tore down the
    /// run; every acquisition goes through here.
    fn lock_cdf(cdf: &Mutex<StreamingCdf>) -> std::sync::MutexGuard<'_, StreamingCdf> {
        // recshard-lint: allow(unwrap) -- see above: poisoning implies a
        // prior panic, and propagating it is the only option.
        cdf.lock().expect("quantile stripe poisoned")
    }

    /// Streams one observation into a quantile sink. Takes that metric's
    /// stripe lock only.
    #[inline]
    pub fn record(&self, id: QuantileId, value: f64) {
        Self::lock_cdf(&self.quantiles[id.0].1).push(value);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1.load(Ordering::Relaxed)
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        f64::from_bits(self.gauges[id.0].1.load(Ordering::Relaxed))
    }

    /// Snapshot of one quantile sink.
    pub fn quantile_stats(&self, id: QuantileId) -> QuantileStats {
        let cdf = Self::lock_cdf(&self.quantiles[id.0].1);
        Self::stats_of(&cdf)
    }

    fn stats_of(cdf: &StreamingCdf) -> QuantileStats {
        let empty = cdf.count() == 0;
        QuantileStats {
            count: cdf.count(),
            p50: if empty { 0.0 } else { cdf.p50() },
            p95: if empty { 0.0 } else { cdf.p95() },
            p99: if empty { 0.0 } else { cdf.p99() },
            summary: cdf.summary(),
        }
    }

    /// A point-in-time snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(String, MetricValue)> = Vec::new();
        for (name, v) in &self.counters {
            entries.push((
                name.clone(),
                MetricValue::Counter(v.load(Ordering::Relaxed)),
            ));
        }
        for (name, v) in &self.gauges {
            entries.push((
                name.clone(),
                MetricValue::Gauge(f64::from_bits(v.load(Ordering::Relaxed))),
            ));
        }
        for (name, h) in &self.histograms {
            entries.push((
                name.clone(),
                MetricValue::Histogram {
                    bounds: h.bounds.clone(),
                    counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                },
            ));
        }
        for (name, cdf) in &self.quantiles {
            let cdf = Self::lock_cdf(cdf);
            entries.push((name.clone(), MetricValue::Quantile(Self::stats_of(&cdf))));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { entries }
    }
}

/// One metric's snapshot value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram bucket bounds and counts (last count = overflow).
    Histogram {
        /// Inclusive upper bounds, ascending.
        bounds: Vec<f64>,
        /// Per-bucket counts; one longer than `bounds`.
        counts: Vec<u64>,
    },
    /// Quantile sink estimates and moments.
    Quantile(QuantileStats),
}

/// A name-sorted snapshot of a registry, serialisable as canonical JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Canonical JSON: fixed key order, floats in `{:.9e}`, one metric per
    /// line — byte-identical for identical snapshots.
    pub fn to_json(&self) -> String {
        let f = |x: f64| format!("{x:.9e}");
        let mut out = String::from("{\n  \"metrics\": [\n");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            let body = match value {
                MetricValue::Counter(v) => format!("\"type\": \"counter\", \"value\": {v}"),
                MetricValue::Gauge(v) => format!("\"type\": \"gauge\", \"value\": {}", f(*v)),
                MetricValue::Histogram { bounds, counts } => format!(
                    "\"type\": \"histogram\", \"bounds\": [{}], \"counts\": [{}]",
                    bounds.iter().map(|&b| f(b)).collect::<Vec<_>>().join(", "),
                    counts
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                MetricValue::Quantile(q) => format!(
                    "\"type\": \"quantile\", \"count\": {}, \"p50\": {}, \"p95\": {}, \
                     \"p99\": {}, \"mean\": {}, \"min\": {}, \"max\": {}, \"std_dev\": {}",
                    q.count,
                    f(q.p50),
                    f(q.p95),
                    f(q.p99),
                    f(q.summary.mean),
                    f(q.summary.min),
                    f(q.summary.max),
                    f(q.summary.std_dev)
                ),
            };
            out.push_str(&format!(
                "    {{\"name\": \"{name}\", {body}}}{}\n",
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// FNV-1a hash over the canonical JSON.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in self.to_json().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dedupes_by_name_and_handles_index_correctly() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("a");
        let b = reg.counter("b");
        assert_ne!(a, b);
        assert_eq!(reg.counter("a"), a, "same name must return the same handle");
        reg.add(a, 3);
        reg.incr(a);
        reg.incr(b);
        assert_eq!(reg.counter_value(a), 4);
        assert_eq!(reg.counter_value(b), 1);
    }

    #[test]
    fn gauges_histograms_and_quantiles_round_trip() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("g");
        let h = reg.histogram("h", &[1.0, 10.0, 100.0]);
        let q = reg.quantile("q");
        reg.set(g, 2.5);
        assert_eq!(reg.gauge_value(g), 2.5);
        for v in [0.5, 5.0, 50.0, 500.0, 5.0] {
            reg.observe(h, v);
        }
        for v in 1..=100 {
            reg.record(q, v as f64);
        }
        let stats = reg.quantile_stats(q);
        assert_eq!(stats.count, 100);
        assert!(stats.p50 <= stats.p95 && stats.p95 <= stats.p99);
        assert!((stats.summary.mean - 50.5).abs() < 1e-9);

        let snap = reg.snapshot();
        let names: Vec<_> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["g", "h", "q"], "snapshot sorts by name");
        match &snap.entries[1].1 {
            MetricValue::Histogram { counts, .. } => assert_eq!(counts, &vec![1, 2, 1, 1]),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_json_is_deterministic_and_canonical() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            let c = reg.counter("z.counter");
            let q = reg.quantile("a.quantile");
            reg.add(c, 7);
            for v in 0..10 {
                reg.record(q, v as f64);
            }
            reg.snapshot()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Sorted: the quantile precedes the counter despite registration order.
        assert!(a.to_json().find("a.quantile").unwrap() < a.to_json().find("z.counter").unwrap());
    }

    #[test]
    fn hot_path_is_shareable_across_threads() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let q = reg.quantile("q");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = &reg;
                scope.spawn(move || {
                    for i in 0..1_000 {
                        reg.incr(c);
                        reg.record(q, i as f64);
                    }
                });
            }
        });
        assert_eq!(reg.counter_value(c), 4_000);
        assert_eq!(reg.quantile_stats(q).count, 4_000);
    }
}
