//! Integration test of the paper's headline claim: under capacity pressure
//! RecShard beats every whole-table baseline on simulated EMB iteration time,
//! load balance and UVM access counts (Tables 3 and 5, Figure 11).

use recshard_bench::{compare_strategies, ExperimentConfig, Strategy};
use recshard_data::RmKind;

fn pressure_config() -> ExperimentConfig {
    // A small but capacity-constrained configuration: RM2 at this scale does
    // not fit in aggregate HBM, exactly like the paper's 16-GPU setting.
    let mut cfg = ExperimentConfig::tiny();
    // Keep the paper's 16-GPU geometry so the scaled capacity pressure matches RM2's.
    cfg.gpus = 16;
    cfg.scale = 16_384;
    cfg.profile_samples = 1_200;
    cfg.sim_iterations = 2;
    cfg.sim_batch = 96;
    cfg
}

#[test]
fn recshard_beats_baselines_under_capacity_pressure() {
    let cfg = pressure_config();
    let cmp = compare_strategies(RmKind::Rm2, &cfg);

    let recshard = cmp.result(Strategy::RecShard).2.clone();
    for baseline in [
        Strategy::SizeBased,
        Strategy::LookupBased,
        Strategy::SizeLookupBased,
    ] {
        let report = &cmp.result(baseline).2;
        assert!(
            recshard.iteration_time_ms() <= report.iteration_time_ms() * 1.05,
            "RecShard ({:.3} ms) should not lose to {} ({:.3} ms)",
            recshard.iteration_time_ms(),
            baseline.label(),
            report.iteration_time_ms()
        );
        assert!(
            recshard.mean_uvm_accesses_per_gpu() <= report.mean_uvm_accesses_per_gpu() + 1.0,
            "RecShard must not source more UVM accesses than {}",
            baseline.label()
        );
    }
    // And it should actually win by a clear margin against at least one baseline.
    let worst = [
        Strategy::SizeBased,
        Strategy::LookupBased,
        Strategy::SizeLookupBased,
    ]
    .iter()
    .map(|&b| cmp.result(b).2.iteration_time_ms())
    .fold(0.0f64, f64::max);
    assert!(
        worst / recshard.iteration_time_ms() > 1.5,
        "expected a clear speedup under capacity pressure, got {:.2}x",
        worst / recshard.iteration_time_ms()
    );
}

#[test]
fn recshard_uvm_access_share_is_small() {
    let cfg = pressure_config();
    let cmp = compare_strategies(RmKind::Rm2, &cfg);
    let recshard = &cmp.result(Strategy::RecShard).2;
    assert!(
        recshard.uvm_access_fraction() < 0.1,
        "RecShard should serve <10% of accesses from UVM, got {:.1}%",
        recshard.uvm_access_fraction() * 100.0
    );
    // The plan still offloads a large share of *rows* to UVM — that is the
    // whole point (cold rows cost nothing).
    let plan = &cmp.result(Strategy::RecShard).1;
    assert!(
        plan.uvm_row_fraction() > 0.2,
        "expected a sizable fraction of rows on UVM, got {:.1}%",
        plan.uvm_row_fraction() * 100.0
    );
}

#[test]
fn all_strategies_fit_without_pressure() {
    // RM1-like setting: everything fits, all strategies place zero rows on UVM
    // and RecShard's advantage reduces to load balancing.
    let mut cfg = pressure_config();
    cfg.scale = 65_536;
    let cmp = compare_strategies(RmKind::Rm1, &cfg);
    for (strategy, plan, report) in &cmp.results {
        if *strategy == Strategy::RecShard {
            // RecShard may still park never-accessed rows on UVM by design.
            assert!(report.uvm_access_fraction() < 0.05);
        } else {
            assert_eq!(
                plan.total_uvm_rows(),
                0,
                "{} should fit fully in HBM",
                strategy.label()
            );
        }
    }
}
