//! Closed-form (expectation-based) estimates of per-GPU access counts and
//! embedding time for a sharding plan.
//!
//! The trace-driven simulator in [`engine`](crate::engine) measures where
//! accesses land; this estimator predicts the same quantities analytically
//! from the profile's CDFs — exactly the estimate RecShard's MILP optimises.
//! Comparing the two validates that the MILP's objective is a faithful proxy
//! for the simulated (and, in the paper, measured) iteration time.
//!
//! Both views are static: one iteration in isolation. The discrete-event
//! simulator in `recshard-des` consumes these per-iteration costs as station
//! service times to answer the dynamic questions (queueing, tails, drift);
//! see the crate-level docs for when to use which.

use recshard_sharding::{FabricSpec, ShardingPlan, SystemSpec};
use recshard_stats::DatasetProfile;
use serde::{Deserialize, Serialize};

/// Analytical per-GPU estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuEstimate {
    /// Expected embedding rows read from HBM per iteration.
    pub hbm_accesses: f64,
    /// Expected embedding rows read from UVM per iteration.
    pub uvm_accesses: f64,
    /// Expected embedding-operator time per iteration, in milliseconds.
    pub time_ms: f64,
}

/// Expectation-based estimator of a plan's behaviour.
#[derive(Debug, Clone)]
pub struct AnalyticalEstimator<'a> {
    profile: &'a DatasetProfile,
    system: &'a SystemSpec,
    batch_size: u32,
}

impl<'a> AnalyticalEstimator<'a> {
    /// Creates an estimator for the given profile, system and batch size.
    pub fn new(profile: &'a DatasetProfile, system: &'a SystemSpec, batch_size: u32) -> Self {
        assert!(batch_size > 0, "batch size must be non-zero");
        Self {
            profile,
            system,
            batch_size,
        }
    }

    /// Expected fraction of a table's accesses served from HBM under the
    /// given placement (the `pct_j` of the paper's constraint 5).
    pub fn hbm_access_fraction(&self, plan: &ShardingPlan, table: usize) -> f64 {
        let placement = &plan.placements()[table];
        let prof = &self.profile.profiles()[table];
        prof.cdf.access_fraction(placement.hbm_rows)
    }

    /// Per-GPU expected access counts and times for a plan.
    pub fn estimate(&self, plan: &ShardingPlan) -> Vec<GpuEstimate> {
        let mut per_gpu = vec![GpuEstimate::default(); plan.num_gpus()];
        for (t, placement) in plan.placements().iter().enumerate() {
            let prof = &self.profile.profiles()[t];
            // Expected rows touched per iteration for this table.
            let expected_rows = self.batch_size as f64 * prof.coverage * prof.avg_pooling;
            let pct_hbm = prof.cdf.access_fraction(placement.hbm_rows);
            let hbm_rows = expected_rows * pct_hbm;
            let uvm_rows = expected_rows * (1.0 - pct_hbm);
            let row_bytes = prof.row_bytes() as f64;
            let est = &mut per_gpu[placement.gpu];
            est.hbm_accesses += hbm_rows;
            est.uvm_accesses += uvm_rows;
            est.time_ms += (hbm_rows * row_bytes
                / (self.system.hbm_bandwidth_gbps(placement.gpu) * 1e9)
                + uvm_rows * row_bytes / (self.system.uvm_bandwidth_gbps(placement.gpu) * 1e9))
                * 1e3;
        }
        per_gpu
    }

    /// The estimated iteration time of a plan: the slowest GPU's expected time
    /// (the quantity RecShard's MILP minimises).
    pub fn iteration_time_ms(&self, plan: &ShardingPlan) -> f64 {
        self.estimate(plan)
            .iter()
            .map(|e| e.time_ms)
            .fold(0.0, f64::max)
    }

    /// Expected pooled-embedding bytes per iteration that must cross the
    /// inter-node fabric under a two-level plan: each table's pooled output
    /// (one vector per *covered* sample) is produced on its owning node and
    /// consumed by every GPU, so the share of consumers on other nodes
    /// crosses the slow link. Zero for flat single-node plans — the quantity
    /// the hierarchical table→node assignment balances.
    pub fn internode_bytes_per_iteration(&self, plan: &ShardingPlan) -> f64 {
        let topology = plan.effective_topology();
        if topology.num_nodes <= 1 {
            return 0.0;
        }
        let g = topology.num_gpus() as f64;
        let remote_consumers = (topology.num_gpus() - topology.gpus_per_node) as f64 / g;
        plan.placements()
            .iter()
            .enumerate()
            .map(|(t, _)| {
                let prof = &self.profile.profiles()[t];
                self.batch_size as f64 * prof.coverage * prof.row_bytes() as f64
            })
            .sum::<f64>()
            * remote_consumers
    }

    /// Per-node expected inter-node *send* bytes per iteration (the
    /// bottleneck entry is what the node-assignment stage minimises).
    pub fn internode_send_bytes_per_node(&self, plan: &ShardingPlan) -> Vec<f64> {
        let topology = plan.effective_topology();
        let g = topology.num_gpus() as f64;
        let remote_consumers = (topology.num_gpus() - topology.gpus_per_node) as f64 / g;
        let mut per_node = vec![0.0f64; topology.num_nodes];
        if topology.num_nodes <= 1 {
            return per_node;
        }
        for (t, p) in plan.placements().iter().enumerate() {
            let prof = &self.profile.profiles()[t];
            per_node[topology.node_of_gpu(p.gpu)] +=
                self.batch_size as f64 * prof.coverage * prof.row_bytes() as f64 * remote_consumers;
        }
        per_node
    }

    /// Closed-form lower bound on one all-to-all exchange of `plan` over
    /// `fabric`, in milliseconds — the analytical cross-check of
    /// `recshard-des`'s shared-rate exchange.
    ///
    /// Mirrors the DES volume model exactly: every GPU owes
    /// `batch · Σ row_bytes · (p−1)/G` to its intra-node peers over its
    /// NVLink egress, and each node ships `node_bytes / N` to every other
    /// node, served by the *receiver's* fabric port. With all flows admitted
    /// simultaneously, a processor-sharing port drains its total inbound
    /// work in `Σ work / rate` regardless of interleaving, so the bound is
    ///
    /// `latency + max_g(local_g) + max_dst(Σ_src≠dst remote_src→dst)`.
    ///
    /// The DES reports this exactly for one isolated exchange; under load it
    /// reports more, because consecutive iterations' transfers share the
    /// links (cross-iteration queueing the closed form cannot express).
    ///
    /// Unlike
    /// [`internode_bytes_per_iteration`](Self::internode_bytes_per_iteration),
    /// which weights each table's
    /// pooled output by its *coverage* (the solver's objective), this uses
    /// the full `row_bytes` volume per sample — the same basis the DES
    /// charges, so the two sides are comparable bit for bit in spirit:
    /// same volumes, same phases, no queueing.
    pub fn exchange_time_ms(&self, plan: &ShardingPlan, fabric: &FabricSpec) -> f64 {
        let topology = plan.effective_topology();
        let g = topology.num_gpus() as f64;
        let p = topology.gpus_per_node as f64;
        let n = topology.num_nodes;
        let mut owned_bytes = vec![0.0f64; topology.num_gpus()];
        for placement in plan.placements() {
            owned_bytes[placement.gpu] += self.batch_size as f64 * placement.row_bytes as f64;
        }
        let local_secs = owned_bytes
            .iter()
            .map(|&bytes| fabric.nvlink_secs(bytes * (p - 1.0) / g))
            .fold(0.0, f64::max);
        let mut node_bytes = vec![0.0f64; n];
        for (gpu, &bytes) in owned_bytes.iter().enumerate() {
            node_bytes[topology.node_of_gpu(gpu)] += bytes;
        }
        let remote_secs = (0..n)
            .map(|dst| {
                let inbound: f64 = (0..n)
                    .filter(|&src| src != dst)
                    .map(|src| node_bytes[src] / n as f64)
                    .sum();
                fabric.fabric_secs(inbound)
            })
            .fold(0.0, f64::max);
        (fabric.base_latency_us * 1e-6 + local_secs + remote_secs) * 1e3
    }

    /// The estimated fraction of all accesses served from UVM.
    pub fn uvm_access_fraction(&self, plan: &ShardingPlan) -> f64 {
        let est = self.estimate(plan);
        let uvm: f64 = est.iter().map(|e| e.uvm_accesses).sum();
        let total: f64 = est.iter().map(|e| e.uvm_accesses + e.hbm_accesses).sum();
        if total == 0.0 {
            0.0
        } else {
            uvm / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EmbeddingOpSimulator, SimConfig};
    use recshard_data::ModelSpec;
    use recshard_sharding::{GreedySharder, SizeCost, TablePlacement};
    use recshard_stats::DatasetProfiler;

    fn setup() -> (ModelSpec, DatasetProfile, SystemSpec) {
        // Scale the model down so profiling saturates the categorical space;
        // the analytic estimate assumes the profiled CDF is representative,
        // which only holds once most of the (small) value space has been seen.
        let model = ModelSpec::small(6, 8).scaled(32).with_batch_size(256);
        let profile = DatasetProfiler::profile_model(&model, 8_000, 5);
        let system = SystemSpec::uniform(2, u64::MAX / 4, u64::MAX / 4, 1555.0, 16.0);
        (model, profile, system)
    }

    #[test]
    fn all_hbm_plan_has_zero_uvm_estimate() {
        let (model, profile, system) = setup();
        let plan = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let est = AnalyticalEstimator::new(&profile, &system, 256);
        assert_eq!(est.uvm_access_fraction(&plan), 0.0);
        assert!(est.iteration_time_ms(&plan) > 0.0);
    }

    #[test]
    fn analytical_tracks_simulation() {
        let (model, profile, system) = setup();
        // A half-split plan: each table keeps its hottest half of *accessed*
        // rows in HBM.
        let placements = model
            .features()
            .iter()
            .zip(profile.profiles())
            .map(|(f, p)| TablePlacement {
                table: f.id,
                gpu: f.id.index() % 2,
                hbm_rows: p.accessed_rows() / 2,
                total_rows: f.hash_size,
                row_bytes: f.row_bytes(),
            })
            .collect();
        let plan = ShardingPlan::new("half", 2, placements);
        let est = AnalyticalEstimator::new(&profile, &system, 256);
        let analytic_uvm = est.uvm_access_fraction(&plan);

        let mut sim = EmbeddingOpSimulator::new(
            &model,
            &plan,
            &profile,
            &system,
            SimConfig {
                kernel_overhead_us_per_table: 0.0,
                scale_to_batch: None,
            },
        );
        let report = sim.run(5, 256, 17);
        let simulated_uvm = report.uvm_access_fraction();
        assert!(
            (analytic_uvm - simulated_uvm).abs() < 0.1,
            "analytic {analytic_uvm} vs simulated {simulated_uvm}"
        );
    }

    #[test]
    fn internode_bytes_zero_for_flat_and_positive_for_two_level() {
        use recshard_sharding::NodeTopology;
        let (model, profile, system) = setup();
        let plan = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let est = AnalyticalEstimator::new(&profile, &system, 256);
        assert_eq!(est.internode_bytes_per_iteration(&plan), 0.0);
        assert!(est
            .internode_send_bytes_per_node(&plan)
            .iter()
            .all(|&b| b == 0.0));

        let two_level = plan.with_topology(NodeTopology::new(2, 1));
        let total = est.internode_bytes_per_iteration(&two_level);
        assert!(total > 0.0);
        let per_node = est.internode_send_bytes_per_node(&two_level);
        assert_eq!(per_node.len(), 2);
        assert!(
            (per_node.iter().sum::<f64>() - total).abs() <= total * 1e-12 + 1e-9,
            "per-node sends must sum to the total"
        );
    }

    #[test]
    fn exchange_bound_reduces_to_uniform_alltoall_and_punishes_incast() {
        use recshard_sharding::{FabricSpec, NodeTopology};
        let (model, profile, _) = setup();
        let fabric = FabricSpec::hgx();
        let batch = 256u32;
        let mk = |gpu_of: &dyn Fn(usize) -> usize, gpus: usize| {
            let placements = model
                .features()
                .iter()
                .map(|f| TablePlacement {
                    table: f.id,
                    gpu: gpu_of(f.id.index()),
                    hbm_rows: f.hash_size,
                    total_rows: f.hash_size,
                    row_bytes: f.row_bytes(),
                })
                .collect();
            ShardingPlan::new("x", gpus, placements)
        };
        let system4 = SystemSpec::uniform(4, u64::MAX / 8, u64::MAX / 8, 1555.0, 16.0);
        let est = AnalyticalEstimator::new(&profile, &system4, batch);

        // Flat single-node uniform plan: the bound reduces to the classic
        // per-GPU all-to-all volume batch·bytes·(G−1)/G² over NVLink.
        let flat = mk(&|i| i % 4, 4).with_topology(NodeTopology::single(4));
        let pooled: u64 = model.features().iter().map(|f| f.row_bytes()).sum();
        // Tables split 2/2/1/1 across 4 GPUs; the max GPU owns the larger
        // share, so bound ≥ the uniform-volume formula.
        let uniform_ms = fabric.base_latency_us * 1e-3
            + fabric.nvlink_secs(batch as f64 * pooled as f64 * 3.0 / 16.0) * 1e3;
        let flat_ms = est.exchange_time_ms(&flat, &fabric);
        assert!(
            flat_ms >= uniform_ms - 1e-12,
            "flat bound {flat_ms} must cover the uniform volume {uniform_ms}"
        );

        // Concentrating every table on one node turns the remote phase into
        // an incast on the other node's port and must raise the bound over a
        // balanced two-level split of the same tables.
        let balanced = mk(&|i| i % 4, 4).with_topology(NodeTopology::new(2, 2));
        let incast = mk(&|i| i % 2, 4).with_topology(NodeTopology::new(2, 2));
        assert!(
            est.exchange_time_ms(&incast, &fabric) > est.exchange_time_ms(&balanced, &fabric),
            "incast concentration must raise the exchange bound"
        );
    }

    #[test]
    fn more_hbm_rows_never_hurts_estimated_time() {
        let (model, profile, system) = setup();
        let mk = |frac: f64| {
            let placements = model
                .features()
                .iter()
                .zip(profile.profiles())
                .map(|(f, p)| TablePlacement {
                    table: f.id,
                    gpu: 0,
                    hbm_rows: (p.accessed_rows() as f64 * frac) as u64,
                    total_rows: f.hash_size,
                    row_bytes: f.row_bytes(),
                })
                .collect();
            ShardingPlan::new("x", 2, placements)
        };
        let est = AnalyticalEstimator::new(&profile, &system, 256);
        let mut prev = f64::INFINITY;
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let t = est.iteration_time_ms(&mk(frac));
            assert!(
                t <= prev + 1e-9,
                "time must not increase as HBM share grows"
            );
            prev = t;
        }
    }
}
