//! Error type for the MILP solver.

/// Errors returned by [`Model::solve`](crate::Model::solve).
#[derive(Debug, Clone, PartialEq)]
pub enum MilpError {
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The branch-and-bound node limit was reached before proving optimality
    /// and no incumbent integer solution was found.
    NodeLimit {
        /// The configured node limit.
        limit: usize,
    },
    /// The model is malformed (e.g. empty, or a constraint references an
    /// unknown variable).
    InvalidModel(String),
}

impl std::fmt::Display for MilpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MilpError::Infeasible => write!(f, "problem is infeasible"),
            MilpError::Unbounded => write!(f, "objective is unbounded"),
            MilpError::NodeLimit { limit } => {
                write!(
                    f,
                    "node limit of {limit} reached without an integer solution"
                )
            }
            MilpError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for MilpError {}
