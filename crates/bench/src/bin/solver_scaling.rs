//! Solver scaling sweep: 100 → 5,000 tables × up to 16 GPUs under identical
//! seeds, emitting the tracked perf-trajectory artifact `BENCH_solver.json`.
//!
//! Four placement paths run per sweep point and are scored with the same
//! structured cost model (max per-GPU coverage-weighted milliseconds):
//!
//! * **greedy** — the size-lookup production baseline,
//! * **structured** — the pre-refactor `StructuredSolver` (the reference the
//!   1% acceptance bound is measured against),
//! * **scalable** — the CDF-bucketed solver (the tentpole's fast path), and
//! * **hierarchical** — the two-level tables→nodes→GPUs solver.
//!
//! The binary asserts, for every point: the scalable plan never costs more
//! than greedy, and stays within 1% of the structured reference. Wall-clock
//! times always print to stdout; they are only written into the JSON under
//! `RECSHARD_BENCH_TIMING=1` (otherwise a `-1` sentinel keeps the artifact
//! byte-identical across runs with the same seed — the determinism contract
//! locked by `tests/golden_fingerprints.rs`).
//!
//! Environment overrides: `RECSHARD_SOLVER_MAX_TABLES`,
//! `RECSHARD_SOLVER_MAX_GPUS`, `RECSHARD_SEED`, `RECSHARD_BENCH_TIMING`.

#![allow(clippy::print_stdout, clippy::print_stderr)]
use recshard_bench::report::RunReport;
use recshard_bench::solver_bench::{cost_regressions, run_sweep, SolverBenchConfig};

fn main() {
    let cfg = SolverBenchConfig::from_env();
    println!(
        "# solver_scaling: tables {:?} x gpus {:?}, {} profile samples, seed {:#x}, timing {}",
        cfg.table_counts,
        cfg.gpu_counts,
        cfg.profile_samples,
        cfg.seed,
        if cfg.include_timing {
            "in JSON"
        } else {
            "stdout only"
        }
    );
    let report = run_sweep(&cfg);

    for p in &report.points {
        assert!(
            p.scalable_vs_greedy <= 1.0 + 1e-9,
            "{} tables x {} GPUs: scalable plan cost must not exceed greedy (ratio {})",
            p.tables,
            p.gpus,
            p.scalable_vs_greedy
        );
        assert!(
            p.scalable_vs_structured <= 1.01 + 1e-9,
            "{} tables x {} GPUs: scalable plan cost must stay within 1% of the \
             pre-refactor structured solver (ratio {})",
            p.tables,
            p.gpus,
            p.scalable_vs_structured
        );
    }

    for h in &report.hetero {
        assert!(
            h.scalable_vs_greedy < 1.0,
            "{} tables x {} GPUs mixed cluster: the class-aware solver must beat \
             class-blind greedy strictly (ratio {})",
            h.tables,
            h.gpus,
            h.scalable_vs_greedy
        );
    }

    // Perf-trajectory gate: when RECSHARD_BENCH_BASELINE points at a
    // previously committed BENCH_solver.json, fail on cost-ratio
    // regressions beyond the tolerance (default 2%) — not on mere
    // fingerprint drift. Read the baseline *before* overwriting it below.
    if let Ok(baseline_path) = std::env::var("RECSHARD_BENCH_BASELINE") {
        let tolerance = std::env::var("RECSHARD_BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.02);
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let regressions = cost_regressions(&report, &baseline, tolerance);
        if regressions.is_empty() {
            println!(
                "no cost-ratio regressions vs {baseline_path} (tolerance {:.1}%)",
                tolerance * 100.0
            );
        } else {
            for r in &regressions {
                eprintln!("COST REGRESSION: {r}");
            }
            std::process::exit(1);
        }
    }

    let json = report.to_json();
    std::fs::write("BENCH_solver.json", &json).expect("write BENCH_solver.json");
    println!();
    let worst = report
        .points
        .iter()
        .map(|p| p.scalable_vs_structured)
        .fold(0.0f64, f64::max);
    let best_compression = report
        .points
        .iter()
        .map(|p| p.compression_ratio)
        .fold(0.0f64, f64::max);
    let hetero_worst = report
        .hetero
        .iter()
        .map(|h| h.scalable_vs_greedy)
        .fold(0.0f64, f64::max);
    let mut footer = RunReport::new("solver_scaling");
    footer
        .push("sweep points", report.points.len())
        .push_fingerprint("report fingerprint", report.fingerprint())
        .push(
            "scalable vs structured worst-case cost ratio",
            format!("{worst:.4} (bound 1.01)"),
        )
        .push(
            "best bucketing compression",
            format!("{best_compression:.2}x"),
        )
        .push("mixed-cluster points", report.hetero.len())
        .push(
            "class-aware vs class-blind worst-case cost ratio",
            format!("{hetero_worst:.4} (bound: strictly < 1)"),
        );
    print!("{footer}");
    println!("wrote BENCH_solver.json");
}
