//! Dense-tableau Big-M simplex for linear programs.
//!
//! The solver handles minimization problems in the form
//! `min c^T x  s.t.  A x {<=,>=,=} b,  l <= x <= u` by shifting variables to
//! zero lower bounds, turning finite upper bounds into row constraints,
//! adding slack/surplus/artificial columns and running the primal simplex
//! with Bland's anti-cycling rule as a fallback.

use crate::error::MilpError;
use crate::model::{ConstraintSense, Model, Sense};

/// Numerical tolerance used throughout the solver.
pub const EPS: f64 = 1e-7;

/// Outcome of an LP relaxation solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value (in the *minimization* form of the problem).
    pub objective: f64,
    /// Values of the structural (model) variables.
    pub values: Vec<f64>,
    /// Number of pivots performed.
    pub pivots: usize,
}

/// An LP derived from a [`Model`] plus per-variable bound overrides
/// (used by branch and bound to encode branching decisions).
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Objective coefficients in minimization form, per structural variable.
    obj: Vec<f64>,
    /// Constant added to the objective (from variable shifts).
    obj_offset: f64,
    /// Row data: coefficients per structural variable, sense, rhs.
    rows: Vec<(Vec<f64>, ConstraintSense, f64)>,
    /// Effective lower/upper bounds per structural variable.
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Whether the original model maximizes (to restore the sign of the
    /// objective in reporting; the LP itself always minimizes).
    maximize: bool,
}

impl LpProblem {
    /// Builds the LP relaxation of `model` with optional tightened bounds.
    ///
    /// `lower`/`upper` must have one entry per model variable.
    pub fn from_model(model: &Model, lower: Vec<f64>, upper: Vec<f64>) -> Self {
        let maximize = model.sense() == Sense::Maximize;
        let sign = if maximize { -1.0 } else { 1.0 };
        let obj: Vec<f64> = model
            .variables()
            .iter()
            .map(|v| sign * v.objective)
            .collect();
        let rows = model
            .constraints()
            .iter()
            .map(|c| {
                let mut coeffs = vec![0.0; model.num_vars()];
                for &(v, coeff) in &c.terms {
                    coeffs[v.index()] += coeff;
                }
                (coeffs, c.sense, c.rhs)
            })
            .collect();
        Self {
            obj,
            obj_offset: 0.0,
            rows,
            lower,
            upper,
            maximize,
        }
    }

    /// Solves the LP.
    ///
    /// # Errors
    ///
    /// [`MilpError::Infeasible`] if no feasible point exists,
    /// [`MilpError::Unbounded`] if the objective is unbounded below.
    pub fn solve(&self) -> Result<LpSolution, MilpError> {
        let n = self.obj.len();
        // Quick bound sanity check.
        for j in 0..n {
            if self.lower[j] > self.upper[j] + EPS {
                return Err(MilpError::Infeasible);
            }
        }

        // Shift variables so every structural variable has lower bound 0:
        // x = y + l, y >= 0. Finite upper bounds become rows y_j <= u_j - l_j.
        let mut rows: Vec<(Vec<f64>, ConstraintSense, f64)> =
            Vec::with_capacity(self.rows.len() + n);
        let mut obj_offset = self.obj_offset;
        for (coeffs, sense, rhs) in &self.rows {
            let mut shifted_rhs = *rhs;
            for j in 0..n {
                if self.lower[j] != 0.0 {
                    shifted_rhs -= coeffs[j] * self.lower[j];
                }
            }
            rows.push((coeffs.clone(), *sense, shifted_rhs));
        }
        for j in 0..n {
            obj_offset += self.obj[j] * self.lower[j];
            let span = self.upper[j] - self.lower[j];
            if span.is_finite() {
                let mut coeffs = vec![0.0; n];
                coeffs[j] = 1.0;
                rows.push((coeffs, ConstraintSense::Le, span));
            }
        }

        let m = rows.len();
        // Column layout: [structural (n)] [slack/surplus (m, some unused)] [artificial (m, some unused)] [rhs]
        // We allocate one potential slack and one potential artificial per row
        // and simply leave unused columns at zero cost/zero coefficients.
        let slack_base = n;
        let art_base = n + m;
        let width = n + 2 * m + 1;
        let rhs_col = width - 1;

        let mut tableau = vec![vec![0.0f64; width]; m];
        let mut basis = vec![0usize; m];
        // Big-M must dominate the largest objective coefficient times the
        // largest plausible variable magnitude; scale with the data.
        let scale = self
            .obj
            .iter()
            .chain(rows.iter().flat_map(|r| r.0.iter()))
            .fold(1.0f64, |a, &b| a.max(b.abs()));
        let big_m = scale * 1e7;

        let mut artificial_used = vec![false; m];
        for (i, (coeffs, sense, rhs)) in rows.iter().enumerate() {
            let mut coeffs = coeffs.clone();
            let mut sense = *sense;
            let mut rhs = *rhs;
            if rhs < 0.0 {
                for c in &mut coeffs {
                    *c = -*c;
                }
                rhs = -rhs;
                sense = match sense {
                    ConstraintSense::Le => ConstraintSense::Ge,
                    ConstraintSense::Ge => ConstraintSense::Le,
                    ConstraintSense::Eq => ConstraintSense::Eq,
                };
            }
            tableau[i][..n].copy_from_slice(&coeffs);
            tableau[i][rhs_col] = rhs;
            match sense {
                ConstraintSense::Le => {
                    tableau[i][slack_base + i] = 1.0;
                    basis[i] = slack_base + i;
                }
                ConstraintSense::Ge => {
                    tableau[i][slack_base + i] = -1.0;
                    tableau[i][art_base + i] = 1.0;
                    basis[i] = art_base + i;
                    artificial_used[i] = true;
                }
                ConstraintSense::Eq => {
                    tableau[i][art_base + i] = 1.0;
                    basis[i] = art_base + i;
                    artificial_used[i] = true;
                }
            }
        }

        // Cost vector (minimization): structural costs, zero slacks, Big-M artificials.
        let mut cost = vec![0.0f64; width - 1];
        cost[..n].copy_from_slice(&self.obj);
        for i in 0..m {
            if artificial_used[i] {
                cost[art_base + i] = big_m;
            }
        }

        // Reduced-cost row z_j = c_j - c_B^T B^-1 A_j, maintained incrementally.
        let mut reduced = cost.clone();
        let mut obj_value = 0.0f64;
        for i in 0..m {
            let cb = cost[basis[i]];
            if cb != 0.0 {
                for j in 0..width - 1 {
                    reduced[j] -= cb * tableau[i][j];
                }
                obj_value -= cb * tableau[i][rhs_col];
            }
        }

        let mut pivots = 0usize;
        let max_pivots = 50 * (m + n + 10) * (m + n + 10);
        loop {
            // Entering column: most negative reduced cost (Dantzig), falling
            // back to Bland's rule periodically to guarantee termination.
            let use_bland = pivots > 0 && pivots % 1000 == 999;
            let mut enter: Option<usize> = None;
            if use_bland {
                for j in 0..width - 1 {
                    if reduced[j] < -EPS {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -EPS;
                for j in 0..width - 1 {
                    if reduced[j] < best {
                        best = reduced[j];
                        enter = Some(j);
                    }
                }
            }
            let Some(enter) = enter else { break };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let a = tableau[i][enter];
                if a > EPS {
                    let ratio = tableau[i][rhs_col] / a;
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.map(|l| basis[i] < basis[l]).unwrap_or(false))
                    {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(MilpError::Unbounded);
            };

            // Pivot.
            let pivot_val = tableau[leave][enter];
            for j in 0..width {
                tableau[leave][j] /= pivot_val;
            }
            for i in 0..m {
                if i != leave {
                    let factor = tableau[i][enter];
                    if factor.abs() > EPS * EPS {
                        for j in 0..width {
                            tableau[i][j] -= factor * tableau[leave][j];
                        }
                    }
                }
            }
            let factor = reduced[enter];
            if factor.abs() > 0.0 {
                for j in 0..width - 1 {
                    reduced[j] -= factor * tableau[leave][j];
                }
                obj_value -= factor * tableau[leave][rhs_col];
            }
            basis[leave] = enter;
            pivots += 1;
            if pivots > max_pivots {
                // Should not happen with Bland fallback; treat as infeasible to
                // avoid an infinite loop rather than returning a wrong answer.
                return Err(MilpError::InvalidModel(
                    "simplex pivot limit exceeded (numerical trouble)".into(),
                ));
            }
        }

        // Infeasible if any artificial variable remains basic at a positive level.
        for i in 0..m {
            if basis[i] >= art_base && tableau[i][rhs_col] > 1e-5 {
                return Err(MilpError::Infeasible);
            }
        }

        // Extract structural values (undo the lower-bound shift).
        let mut values = vec![0.0f64; n];
        for i in 0..m {
            if basis[i] < n {
                values[basis[i]] = tableau[i][rhs_col];
            }
        }
        for j in 0..n {
            values[j] += self.lower[j];
        }

        // Objective in minimization form: -obj_value is c_B^T b (since we
        // accumulated obj_value as the negative), plus shift offset.
        let min_objective = -obj_value + obj_offset;
        let objective = if self.maximize {
            -min_objective
        } else {
            min_objective
        };
        Ok(LpSolution {
            objective,
            values,
            pivots,
        })
    }

    /// Whether the original model maximizes.
    pub fn maximize(&self) -> bool {
        self.maximize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, VarKind};

    fn lp(model: &Model) -> LpProblem {
        let lower = model.variables().iter().map(|v| v.lower).collect();
        let upper = model.variables().iter().map(|v| v.upper).collect();
        LpProblem::from_model(model, lower, upper)
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → x=2, y=6, obj=36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 3.0);
        let y = m.add_continuous("y", 5.0);
        m.add_constraint("c1", vec![(x, 1.0)], ConstraintSense::Le, 4.0);
        m.add_constraint("c2", vec![(y, 2.0)], ConstraintSense::Le, 12.0);
        m.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], ConstraintSense::Le, 18.0);
        let sol = lp(&m).solve().unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-6);
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 → x=7, y=3, obj=23.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 2.0);
        let y = m.add_continuous("y", 3.0);
        m.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], ConstraintSense::Ge, 10.0);
        m.add_constraint("xmin", vec![(x, 1.0)], ConstraintSense::Ge, 2.0);
        m.add_constraint("ymin", vec![(y, 1.0)], ConstraintSense::Ge, 3.0);
        let sol = lp(&m).solve().unwrap();
        assert!((sol.objective - 23.0).abs() < 1e-6, "obj {}", sol.objective);
        assert!((sol.values[0] - 7.0).abs() < 1e-6);
        assert!((sol.values[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 → x=2, y=1, obj=3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_continuous("y", 1.0);
        m.add_constraint("e1", vec![(x, 1.0), (y, 2.0)], ConstraintSense::Eq, 4.0);
        m.add_constraint("e2", vec![(x, 1.0), (y, -1.0)], ConstraintSense::Eq, 1.0);
        let sol = lp(&m).solve().unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.0);
        m.add_constraint("a", vec![(x, 1.0)], ConstraintSense::Ge, 5.0);
        m.add_constraint("b", vec![(x, 1.0)], ConstraintSense::Le, 3.0);
        assert_eq!(lp(&m).solve(), Err(MilpError::Infeasible));
    }

    #[test]
    fn detects_unboundedness() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 1.0);
        m.add_constraint("a", vec![(x, 1.0)], ConstraintSense::Ge, 0.0);
        assert_eq!(lp(&m).solve(), Err(MilpError::Unbounded));
    }

    #[test]
    fn respects_variable_bounds() {
        // max x + y, x in [0, 2], y in [1, 3] → obj = 5.
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var("x", VarKind::Continuous, 0.0, 2.0, 1.0);
        let _y = m.add_var("y", VarKind::Continuous, 1.0, 3.0, 1.0);
        let sol = lp(&m).solve().unwrap();
        assert!((sol.objective - 5.0).abs() < 1e-6);
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn negative_lower_bounds_supported() {
        // min x s.t. x >= -5 (bound), x <= 10 → x = -5.
        let mut m = Model::new(Sense::Minimize);
        let _x = m.add_var("x", VarKind::Continuous, -5.0, 10.0, 1.0);
        let sol = lp(&m).solve().unwrap();
        assert!((sol.objective + 5.0).abs() < 1e-6);
        assert!((sol.values[0] + 5.0).abs() < 1e-6);
    }

    #[test]
    fn conflicting_bound_overrides_are_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let _x = m.add_continuous("x", 1.0);
        let p = LpProblem::from_model(&m, vec![2.0], vec![1.0]);
        assert_eq!(p.solve(), Err(MilpError::Infeasible));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; just assert it terminates with the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 10.0);
        let y = m.add_continuous("y", -57.0);
        let z = m.add_continuous("z", -9.0);
        let w = m.add_continuous("w", -24.0);
        m.add_constraint(
            "c1",
            vec![(x, 0.5), (y, -5.5), (z, -2.5), (w, 9.0)],
            ConstraintSense::Le,
            0.0,
        );
        m.add_constraint(
            "c2",
            vec![(x, 0.5), (y, -1.5), (z, -0.5), (w, 1.0)],
            ConstraintSense::Le,
            0.0,
        );
        m.add_constraint("c3", vec![(x, 1.0)], ConstraintSense::Le, 1.0);
        let sol = lp(&m).solve().unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-5);
    }
}
