//! Per-feature and per-dataset profiles.

use crate::cdf::{AccessCdf, Icdf};
use recshard_data::{FeatureId, FeatureSpec};
use serde::{Deserialize, Serialize};

/// The profiled memory characteristics of one sparse feature / embedding
/// table: everything RecShard's MILP needs (Table 1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureProfile {
    /// The feature this profile describes.
    pub id: FeatureId,
    /// Row count of the feature's embedding table.
    pub hash_size: u64,
    /// Embedding vector length.
    pub embedding_dim: u32,
    /// Bytes per embedding element.
    pub bytes_per_element: u32,
    /// Number of training samples inspected for this profile.
    pub samples_seen: u64,
    /// Number of inspected samples in which the feature was present.
    pub present_samples: u64,
    /// Total post-hash row accesses recorded.
    pub total_lookups: u64,
    /// Measured average pooling factor (mean list length over *present*
    /// samples; 0 if the feature never appeared).
    pub avg_pooling: f64,
    /// Measured coverage (`present_samples / samples_seen`).
    pub coverage: f64,
    /// Post-hash access frequency CDF over ranked rows.
    pub cdf: AccessCdf,
    /// Row ids ranked hottest-first (aligned with the CDF ranking); used to
    /// materialise remapping tables.
    pub ranked_rows: Vec<u64>,
}

impl FeatureProfile {
    /// Builds an "unprofiled" placeholder for a feature (no data seen).
    pub fn empty(spec: &FeatureSpec) -> Self {
        Self {
            id: spec.id,
            hash_size: spec.hash_size,
            embedding_dim: spec.embedding_dim,
            bytes_per_element: spec.bytes_per_element,
            samples_seen: 0,
            present_samples: 0,
            total_lookups: 0,
            avg_pooling: 0.0,
            coverage: 0.0,
            cdf: AccessCdf::empty(),
            ranked_rows: Vec::new(),
        }
    }

    /// Bytes of one embedding row.
    pub fn row_bytes(&self) -> u64 {
        self.embedding_dim as u64 * self.bytes_per_element as u64
    }

    /// Total bytes of the embedding table.
    pub fn table_bytes(&self) -> u64 {
        self.hash_size * self.row_bytes()
    }

    /// Number of distinct rows that received at least one access.
    pub fn accessed_rows(&self) -> u64 {
        self.cdf.rows_ranked()
    }

    /// Fraction of the table's rows never accessed during profiling — the
    /// space RecShard can reclaim (Section 3.4).
    pub fn unused_fraction(&self) -> f64 {
        1.0 - self.accessed_rows() as f64 / self.hash_size as f64
    }

    /// The 100-step piece-wise linear inverse CDF used by the MILP.
    pub fn icdf(&self, steps: usize) -> Icdf {
        self.cdf.icdf(steps)
    }

    /// Expected embedding rows read per training sample
    /// (`coverage * avg_pooling`).
    pub fn expected_lookups_per_sample(&self) -> f64 {
        self.coverage * self.avg_pooling
    }
}

/// Profiles for all features of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    profiles: Vec<FeatureProfile>,
    samples_profiled: u64,
}

impl DatasetProfile {
    /// Builds a dataset profile from per-feature profiles (ordered by
    /// [`FeatureId`]).
    ///
    /// # Panics
    ///
    /// Panics if profiles are not ordered by dense feature id.
    pub fn new(profiles: Vec<FeatureProfile>, samples_profiled: u64) -> Self {
        for (i, p) in profiles.iter().enumerate() {
            assert_eq!(
                p.id.index(),
                i,
                "profiles must be ordered by dense feature id"
            );
        }
        Self {
            profiles,
            samples_profiled,
        }
    }

    /// Per-feature profiles, ordered by feature id.
    pub fn profiles(&self) -> &[FeatureProfile] {
        &self.profiles
    }

    /// The profile for a specific feature.
    pub fn profile(&self, id: FeatureId) -> &FeatureProfile {
        &self.profiles[id.index()]
    }

    /// Number of training samples that contributed to the profile.
    pub fn samples_profiled(&self) -> u64 {
        self.samples_profiled
    }

    /// Total lookups recorded across all features.
    pub fn total_lookups(&self) -> u64 {
        self.profiles.iter().map(|p| p.total_lookups).sum()
    }

    /// Number of features profiled.
    pub fn num_features(&self) -> usize {
        self.profiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::ModelSpec;

    #[test]
    fn empty_profile_defaults() {
        let model = ModelSpec::small(3, 1);
        let p = FeatureProfile::empty(&model.features()[0]);
        assert_eq!(p.total_lookups, 0);
        assert_eq!(p.coverage, 0.0);
        assert_eq!(p.accessed_rows(), 0);
        assert!((p.unused_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(p.expected_lookups_per_sample(), 0.0);
    }

    #[test]
    fn dataset_profile_ordering_enforced() {
        let model = ModelSpec::small(2, 1);
        let p0 = FeatureProfile::empty(&model.features()[0]);
        let p1 = FeatureProfile::empty(&model.features()[1]);
        let ds = DatasetProfile::new(vec![p0.clone(), p1.clone()], 10);
        assert_eq!(ds.num_features(), 2);
        assert_eq!(ds.profile(FeatureId(1)).id, FeatureId(1));
        let result = std::panic::catch_unwind(|| DatasetProfile::new(vec![p1, p0], 10));
        assert!(result.is_err());
    }

    #[test]
    fn table_geometry() {
        let model = ModelSpec::small(1, 5);
        let spec = &model.features()[0];
        let p = FeatureProfile::empty(spec);
        assert_eq!(p.row_bytes(), spec.row_bytes());
        assert_eq!(p.table_bytes(), spec.table_bytes());
    }
}
