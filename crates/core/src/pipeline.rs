//! The end-to-end RecShard pipeline (Figure 10): profile → partition/place →
//! remap — plus the dynamic-cluster entry point
//! [`RecShard::simulate_cluster`] built on `recshard-des`.

use crate::config::{RecShardConfig, SolverKind};
use crate::error::RecShardError;
use crate::formulation::MilpFormulation;
use crate::scalable::ScalableSolver;
use crate::solver::StructuredSolver;
use recshard_data::{ModelSpec, SampleGenerator};
use recshard_des::{
    ClusterConfig, ClusterSimulator, DriftSchedule, ReshardController, ReshardPolicy, RunSummary,
};
use recshard_sharding::{RemapTable, ShardingPlan, SystemSpec};
use recshard_stats::{DatasetProfile, DatasetProfiler};

/// The RecShard sharder.
///
/// Construct it with a [`RecShardConfig`] and call [`plan`](RecShard::plan)
/// with a profiled dataset, or [`run`](RecShard::run) to let it profile a
/// synthetic dataset itself (phases 1–3 of the paper's Figure 10).
#[derive(Debug, Clone)]
pub struct RecShard {
    config: RecShardConfig,
}

/// Everything the full pipeline produces: the profile it derived, the plan it
/// solved for, and the materialised per-table remapping tables.
#[derive(Debug, Clone)]
pub struct RecShardOutput {
    /// The dataset profile used for partitioning (phase 1).
    pub profile: DatasetProfile,
    /// The partitioning and placement decision (phase 2).
    pub plan: ShardingPlan,
    /// Per-table remapping tables (phase 3), ordered by feature id.
    pub remap_tables: Vec<RemapTable>,
}

impl RecShardOutput {
    /// Total storage overhead of the remapping tables in bytes
    /// (4 bytes per row, Section 6.6).
    pub fn remap_storage_bytes(&self) -> u64 {
        self.remap_tables.iter().map(|r| r.storage_bytes()).sum()
    }
}

impl Default for RecShard {
    fn default() -> Self {
        Self::new(RecShardConfig::default())
    }
}

impl RecShard {
    /// Creates a sharder with the given configuration.
    pub fn new(config: RecShardConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RecShardConfig {
        &self.config
    }

    /// Phase 2 only: produce a partitioning and placement plan from an
    /// existing profile.
    ///
    /// # Errors
    ///
    /// See [`RecShardError`].
    pub fn plan(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> Result<ShardingPlan, RecShardError> {
        match self.config.solver {
            SolverKind::Structured => {
                StructuredSolver::new(self.config).solve(model, profile, system)
            }
            SolverKind::ExactMilp => {
                MilpFormulation::new(self.config).solve(model, profile, system)
            }
            SolverKind::Scalable => ScalableSolver::new(self.config).solve(model, profile, system),
        }
    }

    /// Like [`plan`](Self::plan), warm-started from a previous plan when the
    /// configured solver supports it. The scalable solver seeds its
    /// assignment from `previous` and gates the result against a cold solve
    /// (never worse); the other solvers ignore the seed. This is the re-solve
    /// entry point the online re-sharding controller drives on drift events.
    ///
    /// # Errors
    ///
    /// See [`RecShardError`].
    pub fn plan_seeded(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
        previous: Option<&ShardingPlan>,
    ) -> Result<ShardingPlan, RecShardError> {
        match (self.config.solver, previous) {
            (SolverKind::Scalable, Some(prev)) => {
                ScalableSolver::new(self.config).solve_seeded(model, profile, system, prev)
            }
            _ => self.plan(model, profile, system),
        }
    }

    /// Phase 3 only: materialise per-table remapping tables for a plan.
    pub fn remap(&self, plan: &ShardingPlan, profile: &DatasetProfile) -> Vec<RemapTable> {
        plan.placements()
            .iter()
            .zip(profile.profiles())
            .map(|(placement, prof)| RemapTable::build(placement, &prof.ranked_rows))
            .collect()
    }

    /// Solves for a plan and replays it through the discrete-event cluster
    /// simulator: open-loop batch arrivals, per-GPU queueing, the all-to-all
    /// barrier — reporting sustained throughput and p50/p95/p99 iteration
    /// sojourn times instead of the analytical single-iteration cost.
    ///
    /// # Errors
    ///
    /// See [`RecShardError`] (plan solving is the only fallible phase).
    pub fn simulate_cluster(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
        config: ClusterConfig,
    ) -> Result<RunSummary, RecShardError> {
        let plan = self.plan(model, profile, system)?;
        Ok(ClusterSimulator::new(model, &plan, profile, system, config).run())
    }

    /// Like [`simulate_cluster`](Self::simulate_cluster), but the workload
    /// drifts over `drift` and an online controller with `policy` watches
    /// per-GPU busy-time imbalance, re-solving with *this* sharder's
    /// configuration and hot-swapping the plan (with a migration stall) when
    /// it trips.
    ///
    /// # Errors
    ///
    /// See [`RecShardError`] (initial plan solving is the fallible phase;
    /// re-solve failures mid-run keep the current plan).
    pub fn simulate_cluster_with_resharding(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
        config: ClusterConfig,
        drift: DriftSchedule,
        policy: ReshardPolicy,
    ) -> Result<RunSummary, RecShardError> {
        let plan = self.plan(model, profile, system)?;
        let resolver = self.clone();
        let controller = ReshardController::new(
            policy,
            Box::new(move |m, p, s, prev| resolver.plan_seeded(m, p, s, prev).ok()),
        );
        Ok(ClusterSimulator::new(model, &plan, profile, system, config)
            .with_drift(drift)
            .with_controller(controller)
            .run())
    }

    /// The full pipeline: profile `profile_samples` synthetic training samples
    /// of `model`, solve for a plan on `system`, and build the remapping
    /// tables.
    ///
    /// # Errors
    ///
    /// See [`RecShardError`].
    pub fn run(
        &self,
        model: &ModelSpec,
        system: &SystemSpec,
        profile_samples: usize,
        seed: u64,
    ) -> Result<RecShardOutput, RecShardError> {
        let mut profiler = DatasetProfiler::new(model);
        let mut gen = SampleGenerator::new(model, seed);
        for _ in 0..profile_samples {
            profiler.consume(&gen.sample());
        }
        let profile = profiler.finish();
        let plan = self.plan(model, &profile, system)?;
        let remap_tables = self.remap(&plan, &profile);
        Ok(RecShardOutput {
            profile,
            plan,
            remap_tables,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::ModelSpec;
    use recshard_sharding::MemoryTier;

    #[test]
    fn full_pipeline_produces_consistent_output() {
        let model = ModelSpec::small(8, 17);
        let system = SystemSpec::uniform(
            2,
            model.total_bytes() / 6,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let out = RecShard::default().run(&model, &system, 1_500, 3).unwrap();
        out.plan.validate(&model, &system).unwrap();
        assert_eq!(out.remap_tables.len(), model.num_features());
        // Remap tables agree with the plan's split sizes.
        for (remap, placement) in out.remap_tables.iter().zip(out.plan.placements()) {
            assert_eq!(remap.total_rows(), placement.total_rows);
            assert_eq!(remap.hbm_rows(), placement.hbm_rows);
        }
        assert_eq!(out.remap_storage_bytes(), model.total_hash_size() * 4);
    }

    #[test]
    fn hot_rows_end_up_in_hbm() {
        let model = ModelSpec::small(6, 23);
        let system = SystemSpec::uniform(
            2,
            model.total_bytes() / 4,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let out = RecShard::default().run(&model, &system, 2_000, 5).unwrap();
        // For every table that keeps at least one row in HBM, the single most
        // frequently accessed row must be one of them.
        for (t, remap) in out.remap_tables.iter().enumerate() {
            let prof = &out.profile.profiles()[t];
            if out.plan.placements()[t].hbm_rows > 0 && !prof.ranked_rows.is_empty() {
                assert_eq!(remap.tier_of(prof.ranked_rows[0]), MemoryTier::Hbm);
            }
        }
    }

    #[test]
    fn exact_solver_configurable() {
        let model = ModelSpec::small(3, 29).with_batch_size(64);
        let system = SystemSpec::uniform(
            2,
            model.total_bytes() / 4,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let config = RecShardConfig::default()
            .with_exact_milp()
            .with_icdf_steps(5);
        let out = RecShard::new(config).run(&model, &system, 800, 7).unwrap();
        out.plan.validate(&model, &system).unwrap();
        assert_eq!(out.plan.strategy(), "recshard-milp");
    }

    #[test]
    fn simulate_cluster_reports_tails_deterministically() {
        let model = ModelSpec::small(6, 13);
        let system = SystemSpec::uniform(
            2,
            model.total_bytes() / 6,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let profile = recshard_stats::DatasetProfiler::profile_model(&model, 1_000, 3);
        let config = recshard_des::ClusterConfig {
            iterations: 100,
            batch_size: 32,
            ..recshard_des::ClusterConfig::default()
        };
        let sharder = RecShard::default();
        let a = sharder
            .simulate_cluster(&model, &profile, &system, config)
            .unwrap();
        let b = sharder
            .simulate_cluster(&model, &profile, &system, config)
            .unwrap();
        assert_eq!(a, b, "same seed must reproduce the same cluster summary");
        assert_eq!(a.completed, 100);
        assert!(a.p99_ms >= a.p50_ms && a.p50_ms > 0.0);
        assert_eq!(a.strategy, "recshard");
    }

    #[test]
    fn simulate_cluster_with_resharding_runs_controller() {
        let model = ModelSpec::small(6, 19);
        let system = SystemSpec::uniform(
            2,
            model.total_bytes() / 6,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let profile = recshard_stats::DatasetProfiler::profile_model(&model, 1_000, 5);
        let config = recshard_des::ClusterConfig {
            iterations: 200,
            batch_size: 32,
            ..recshard_des::ClusterConfig::default()
        };
        let drift = recshard_des::DriftSchedule::paper_like(20);
        let policy = recshard_des::ReshardPolicy {
            check_every_iterations: 50,
            ..recshard_des::ReshardPolicy::default()
        };
        let summary = RecShard::default()
            .simulate_cluster_with_resharding(&model, &profile, &system, config, drift, policy)
            .unwrap();
        assert_eq!(summary.completed, 200);
        // The controller may or may not fire on this workload; either way the
        // run must drain and stay internally consistent.
        assert!(summary.p95_ms >= summary.p50_ms);
    }

    #[test]
    fn resharding_with_scalable_solver_warm_starts_deterministically() {
        // The scalable solver is the warm-startable one: the controller's
        // re-solves seed from the installed plan (and gate against cold), so
        // the run must stay deterministic and drain exactly like any other.
        let model = ModelSpec::small(6, 19);
        let system = SystemSpec::uniform(
            2,
            model.total_bytes() / 6,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let profile = recshard_stats::DatasetProfiler::profile_model(&model, 1_000, 5);
        let config = recshard_des::ClusterConfig {
            iterations: 200,
            batch_size: 32,
            ..recshard_des::ClusterConfig::default()
        };
        let drift = recshard_des::DriftSchedule::paper_like(20);
        let policy = recshard_des::ReshardPolicy {
            check_every_iterations: 50,
            imbalance_threshold: 1.05,
            ..recshard_des::ReshardPolicy::default()
        };
        let sharder = RecShard::new(RecShardConfig::default().with_scalable());
        let run = || {
            sharder
                .simulate_cluster_with_resharding(
                    &model,
                    &profile,
                    &system,
                    config,
                    drift.clone(),
                    policy,
                )
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "warm-started re-solves must stay deterministic");
        assert_eq!(a.completed, 200);
        assert_eq!(a.strategy, "recshard-scalable");
    }

    #[test]
    fn invalid_config_is_reported() {
        let model = ModelSpec::small(3, 1);
        let system = SystemSpec::uniform(2, model.total_bytes(), model.total_bytes(), 1555.0, 16.0);
        let config = RecShardConfig {
            icdf_steps: 0,
            ..RecShardConfig::default()
        };
        let err = RecShard::new(config).run(&model, &system, 100, 1);
        assert!(matches!(err, Err(RecShardError::InvalidConfig(_))));
    }
}
