//! CDF-similarity table bucketing: the formulation-shrinking preprocessor.
//!
//! Production models carry thousands of embedding tables, but the tables are
//! far from unique: many share the same geometry (row bytes, hash size) and
//! near-identical access statistics (coverage, pooling, frequency CDF shape).
//! For the placement problem two such tables are interchangeable — any
//! optimal plan can swap them without changing the objective — so the solver
//! only needs to *decide a split once per equivalence class* and apply it to
//! every member.
//!
//! [`TableBuckets::build`] groups tables whose geometry matches exactly and
//! whose statistics agree within a relative tolerance of a bucket
//! *representative* (the first member seen). Anchoring the comparison at the
//! representative keeps the clustering deterministic and transitive, and —
//! unlike quantisation onto a fixed grid — robust to sampling noise sitting
//! on a grid boundary. The CDF is compared through its *tail mass*
//! `1 - cdf(rows)` at geometrically spaced head fractions, because the tail
//! is what multiplies the ~100× slower UVM bandwidth in the cost model: a
//! small absolute floor on the comparison reflects that tails below ~1% of
//! accesses cannot move the cost at the 1% level regardless.
//!
//! The scalable solver then builds one [`TableCostModel`]
//! (`crate::cost::TableCostModel`) per bucket representative and runs split
//! selection over buckets weighted by member count, collapsing the dominant
//! `O(tables × icdf_steps)` term of formulation time by the bucketing
//! compression ratio (reported by the `solver_scaling` bench).

use recshard_data::ModelSpec;
use recshard_stats::DatasetProfile;
use std::collections::HashMap;

/// Tuning of the bucketing preprocessor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketingConfig {
    /// Relative tolerance for treating two tables' statistics as equal.
    pub tolerance: f64,
    /// Number of CDF probe points (geometrically spaced head fractions
    /// `1/2, 1/4, …, 1/2^probe_points`).
    pub probe_points: usize,
    /// Absolute floor of the tail-mass comparison: tail differences below
    /// `tolerance × floor` never separate tables (sub-percent tails are cost
    /// noise).
    pub tail_floor: f64,
}

impl Default for BucketingConfig {
    fn default() -> Self {
        // Calibrated on the solver_scaling sweep: keeps the final plan cost
        // within 0.5% of the unbucketed structured solver while collapsing
        // skewed production-shaped models by ~1.4–1.8x (looser tolerances
        // compress more but leak past the 1% plan-cost bound).
        Self {
            tolerance: 0.02,
            probe_points: 6,
            tail_floor: 0.005,
        }
    }
}

/// One equivalence class of near-identical tables.
#[derive(Debug, Clone, PartialEq)]
pub struct TableBucket {
    /// The member whose cost model stands in for the whole bucket (the
    /// first member in dense feature order).
    pub representative: usize,
    /// Dense feature indices of every member (ascending; includes the
    /// representative).
    pub members: Vec<usize>,
}

/// The statistics a table is compared on.
#[derive(Debug, Clone)]
struct Signature {
    coverage: f64,
    pooling: f64,
    tails: Vec<f64>,
}

/// The bucketing of a model's tables.
#[derive(Debug, Clone, PartialEq)]
pub struct TableBuckets {
    buckets: Vec<TableBucket>,
    bucket_of_table: Vec<usize>,
}

impl TableBuckets {
    /// Groups `model`'s tables by geometry and statistic similarity.
    ///
    /// # Panics
    ///
    /// Panics if the profile does not cover the model or the configuration
    /// is degenerate (zero probe points, non-positive tolerance).
    pub fn build(model: &ModelSpec, profile: &DatasetProfile, config: &BucketingConfig) -> Self {
        assert_eq!(
            profile.num_features(),
            model.num_features(),
            "profile must cover the model"
        );
        assert!(config.probe_points > 0, "need at least one CDF probe point");
        assert!(config.tolerance > 0.0, "tolerance must be positive");

        // Two quantities are "close" when they differ by at most
        // `tolerance × max(|a|, |b|, floor)`.
        let close = |a: f64, b: f64, floor: f64| -> bool {
            (a - b).abs() <= config.tolerance * a.abs().max(b.abs()).max(floor)
        };

        let mut buckets: Vec<TableBucket> = Vec::new();
        let mut signatures: Vec<Signature> = Vec::new();
        let mut bucket_of_table = vec![0usize; model.num_features()];
        // Exact-geometry strata → bucket lists kept sorted by the finest
        // (most discriminating) tail probe, so candidate matches reduce to a
        // binary-searched range instead of a scan over every bucket in the
        // stratum.
        let mut strata: HashMap<(u64, u64), Vec<(f64, usize)>> = HashMap::new();

        for (t, (spec, prof)) in model.features().iter().zip(profile.profiles()).enumerate() {
            let sig = Signature {
                coverage: prof.coverage,
                pooling: prof.avg_pooling.max(0.0),
                tails: (1..=config.probe_points)
                    .map(|k| {
                        let rows =
                            ((spec.hash_size as f64 / (1u64 << k) as f64).ceil() as u64).max(1);
                        1.0 - prof.cdf.access_fraction(rows)
                    })
                    .collect(),
            };
            let stratum = strata
                .entry((spec.row_bytes(), spec.hash_size))
                .or_default();
            // Conservative superset of the key-probe values close() can
            // accept (the exact check still runs per candidate).
            let a = *sig.tails.last().expect("probes non-empty");
            let (lo_key, hi_key) = if config.tolerance < 1.0 {
                (
                    a * (1.0 - config.tolerance) - config.tolerance * config.tail_floor - 1e-12,
                    (a + config.tolerance * config.tail_floor) / (1.0 - config.tolerance) + 1e-12,
                )
            } else {
                (f64::NEG_INFINITY, f64::INFINITY)
            };
            let start = stratum.partition_point(|&(key, _)| key < lo_key);
            let found = stratum[start..]
                .iter()
                .take_while(|&&(key, _)| key <= hi_key)
                .map(|&(_, b)| b)
                .find(|&b| {
                    let rep = &signatures[b];
                    close(sig.coverage, rep.coverage, 1e-3)
                        && close(sig.pooling, rep.pooling, 1e-3)
                        && sig
                            .tails
                            .iter()
                            .zip(&rep.tails)
                            .all(|(&a, &b)| close(a, b, config.tail_floor))
                });
            let bucket = match found {
                Some(b) => b,
                None => {
                    buckets.push(TableBucket {
                        representative: t,
                        members: Vec::new(),
                    });
                    let idx = buckets.len() - 1;
                    let at = stratum.partition_point(|&(key, _)| key <= a);
                    stratum.insert(at, (a, idx));
                    signatures.push(sig);
                    idx
                }
            };
            buckets[bucket].members.push(t);
            bucket_of_table[t] = bucket;
        }

        Self {
            buckets,
            bucket_of_table,
        }
    }

    /// The equivalence classes, in order of first appearance.
    pub fn buckets(&self) -> &[TableBucket] {
        &self.buckets
    }

    /// Bucket index per table (dense feature order).
    pub fn bucket_of_table(&self) -> &[usize] {
        &self.bucket_of_table
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.bucket_of_table.len()
    }

    /// `tables / buckets` — how much the preprocessor shrank the
    /// formulation (1.0 = no compression).
    pub fn compression_ratio(&self) -> f64 {
        if self.buckets.is_empty() {
            1.0
        } else {
            self.num_tables() as f64 / self.num_buckets() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::ModelSpec;
    use recshard_stats::DatasetProfiler;

    #[test]
    fn buckets_partition_the_tables() {
        let model = ModelSpec::small(10, 3);
        let profile = DatasetProfiler::profile_model(&model, 800, 5);
        let buckets = TableBuckets::build(&model, &profile, &BucketingConfig::default());
        assert_eq!(buckets.num_tables(), 10);
        let mut seen = [false; 10];
        for (b, bucket) in buckets.buckets().iter().enumerate() {
            assert_eq!(bucket.members[0], bucket.representative);
            for &t in &bucket.members {
                assert!(!seen[t], "table {t} in two buckets");
                seen[t] = true;
                assert_eq!(buckets.bucket_of_table()[t], b);
            }
            assert!(bucket.members.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(seen.iter().all(|&s| s));
        assert!(buckets.compression_ratio() >= 1.0);
    }

    #[test]
    fn identical_tables_collapse_into_one_bucket() {
        // A model whose features repeat the same spec shape: the profiles
        // differ only by sampling noise. The default tolerance is tuned for
        // plan-cost fidelity (sub-1% solver deviation) and keeps noisy
        // near-duplicates apart; a compression-oriented tolerance must
        // collapse them aggressively.
        let model = recshard_bucketing_test_model(24);
        let profile = DatasetProfiler::profile_model(&model, 20_000, 11);
        let loose = BucketingConfig {
            tolerance: 0.1,
            tail_floor: 0.02,
            probe_points: 6,
        };
        let buckets = TableBuckets::build(&model, &profile, &loose);
        assert!(
            buckets.compression_ratio() > 4.0,
            "repeating features must compress (got {:.2}: {} buckets for {} tables)",
            buckets.compression_ratio(),
            buckets.num_buckets(),
            buckets.num_tables()
        );
        // The fidelity-first default still finds some of the duplicates.
        let default = TableBuckets::build(&model, &profile, &BucketingConfig::default());
        assert!(default.compression_ratio() > 1.2);
        assert!(default.num_buckets() >= buckets.num_buckets());
    }

    #[test]
    fn different_geometry_never_merges() {
        let model = ModelSpec::small(8, 17);
        let profile = DatasetProfiler::profile_model(&model, 500, 2);
        let buckets = TableBuckets::build(
            &model,
            &profile,
            &BucketingConfig {
                tolerance: 100.0, // merge everything stat-wise
                ..BucketingConfig::default()
            },
        );
        for bucket in buckets.buckets() {
            let rep = &model.features()[bucket.representative];
            for &t in &bucket.members {
                assert_eq!(model.features()[t].hash_size, rep.hash_size);
                assert_eq!(model.features()[t].row_bytes(), rep.row_bytes());
            }
        }
    }

    #[test]
    fn tighter_tolerance_never_compresses_more() {
        let model = recshard_bucketing_test_model(16);
        let profile = DatasetProfiler::profile_model(&model, 1_000, 2);
        let tight = TableBuckets::build(
            &model,
            &profile,
            &BucketingConfig {
                tolerance: 1e-9,
                tail_floor: 1e-9,
                probe_points: 8,
            },
        );
        let loose = TableBuckets::build(&model, &profile, &BucketingConfig::default());
        assert!(tight.num_buckets() >= loose.num_buckets());
    }

    /// A model of `n` tables all sharing one spec shape.
    fn recshard_bucketing_test_model(n: usize) -> ModelSpec {
        use recshard_data::{FeatureClass, FeatureId, FeatureSpec, PoolingSpec, RmKind};
        let features = (0..n)
            .map(|i| FeatureSpec {
                id: FeatureId(i as u32),
                name: format!("rep_{i}"),
                class: FeatureClass::Content,
                cardinality: 4096,
                hash_size: 1024,
                zipf_exponent: 1.2,
                pooling: PoolingSpec::Constant(2),
                coverage: 1.0,
                embedding_dim: 32,
                bytes_per_element: 4,
                hash_seed: 0xBEEF ^ i as u64,
            })
            .collect();
        ModelSpec::new("bucketing-test", RmKind::Custom, features, 128)
    }
}
