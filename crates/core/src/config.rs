//! RecShard configuration.

use serde::{Deserialize, Serialize};

/// Which placement solver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolverKind {
    /// The structured solver: split selection by marginal-cost sweep plus
    /// min-max assignment with local search. Scales to hundreds of tables and
    /// is the default.
    Structured,
    /// The exact MILP formulation of Section 4.2, solved with the
    /// branch-and-bound solver in `recshard-milp`. Only practical for small
    /// instances (a handful of tables and GPUs); used as ground truth in
    /// tests and available for experimentation.
    ExactMilp,
    /// The bucketed scalable solver. Same plan shape as `Structured` within
    /// 1% of its cost at a fraction of the solve time, and the only solver
    /// that accepts a *warm start* from a previous plan — the online
    /// re-sharding controller seeds each re-solve with the outgoing
    /// assignment so drift events migrate as few bytes as possible.
    Scalable,
}

/// Configuration of the RecShard partitioning and placement stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecShardConfig {
    /// Number of uniform steps used for the piece-wise linear ICDF
    /// approximation (the paper uses 100).
    pub icdf_steps: usize,
    /// Whether the per-table average pooling factor participates in the cost
    /// model (disabled in the "CDF only" and "CDF + Coverage" ablations).
    pub use_pooling: bool,
    /// Whether the per-table coverage participates in the cost model
    /// (disabled in the "CDF only" and "CDF + Pooling" ablations).
    pub use_coverage: bool,
    /// Fraction of aggregate HBM deliberately left free during split
    /// selection so the per-GPU assignment has packing slack.
    pub hbm_slack: f64,
    /// Which solver implementation to use.
    pub solver: SolverKind,
    /// Maximum local-search improvement passes during assignment refinement.
    pub refinement_passes: usize,
}

impl Default for RecShardConfig {
    fn default() -> Self {
        Self {
            icdf_steps: 100,
            use_pooling: true,
            use_coverage: true,
            hbm_slack: 0.02,
            solver: SolverKind::Structured,
            refinement_passes: 4,
        }
    }
}

impl RecShardConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.icdf_steps == 0 {
            return Err("icdf_steps must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.hbm_slack) {
            return Err("hbm_slack must be in [0, 1)".into());
        }
        Ok(())
    }

    /// Returns a copy using the exact MILP solver.
    pub fn with_exact_milp(mut self) -> Self {
        self.solver = SolverKind::ExactMilp;
        self
    }

    /// Returns a copy using the bucketed scalable solver (warm-startable).
    pub fn with_scalable(mut self) -> Self {
        self.solver = SolverKind::Scalable;
        self
    }

    /// Returns a copy with a different ICDF step count.
    pub fn with_icdf_steps(mut self, steps: usize) -> Self {
        self.icdf_steps = steps;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = RecShardConfig::default();
        assert_eq!(c.icdf_steps, 100);
        assert!(c.use_pooling && c.use_coverage);
        assert_eq!(c.solver, SolverKind::Structured);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let c = RecShardConfig {
            icdf_steps: 0,
            ..RecShardConfig::default()
        };
        assert!(c.validate().is_err());
        let c = RecShardConfig {
            hbm_slack: 1.5,
            ..RecShardConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_style_overrides() {
        let c = RecShardConfig::default()
            .with_exact_milp()
            .with_icdf_steps(10);
        assert_eq!(c.solver, SolverKind::ExactMilp);
        assert_eq!(c.icdf_steps, 10);
    }
}
