//! The `des_bench` sweep: the repo's tracked DES-throughput trajectory
//! artifact (`BENCH_des.json`).
//!
//! Replays the RecShard plan for the canonical skewed workload through
//! `recshard-des` at 4 and 16 GPUs, once flat and once with the two-level
//! node topology of [`bench_topology`], all under identical seeds and an
//! identical open-loop arrival pace. Every point records the run's
//! event-log fingerprint, event count, virtual-time makespan/throughput
//! and sojourn tails — all pure functions of the seed — plus wall-clock
//! milliseconds and simulator events/sec, which are only written into the
//! JSON under `RECSHARD_BENCH_TIMING=1` (otherwise the [`TIMING_DISABLED`]
//! sentinel keeps the artifact byte-stable, mirroring `BENCH_solver.json`).
//!
//! A `contention` sweep rides along: the uniform flat plan and an incast
//! plan (all tables concentrated on non-receiving nodes), each run under
//! both [`ContentionMode`]s at the smallest GPU count. Its points carry no
//! wall-clock fields at all — every number is a pure function of the seed
//! — and the sweep asserts the shared-rate acceptance criterion in-line:
//! incast p99 under processor sharing strictly exceeds the old
//! split-bandwidth FIFO model's.
//!
//! [`throughput_regressions`] is one CI gate: a generous relative
//! events/sec floor against a previously committed baseline, skipping
//! sentinel/missing points so untimed or trimmed runs never false-positive.
//! [`fingerprint_drift`] is the other: *behavioural* drift (any event-log
//! change) on committed point keys fails `des_bench` unless
//! `RECSHARD_BENCH_ALLOW_DRIFT=1` acknowledges it as intentional.

use crate::solver_bench::{bench_system, bench_topology, field_num, fnv_fold, TIMING_DISABLED};
use crate::{skewed_model, Strategy};
use recshard::{HierarchicalSolver, RecShardConfig};
use recshard_des::{ArrivalProcess, ClusterConfig, ClusterSimulator, ContentionMode, RunSummary};
use recshard_obs::{Collector, ObsBundle};
use recshard_sharding::{NodeTopology, ShardingPlan, SystemSpec, TablePlacement};
use recshard_stats::{DatasetProfile, DatasetProfiler};
use std::time::Instant;

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DesBenchConfig {
    /// Tables in the skewed workload.
    pub tables: usize,
    /// GPU counts swept (each runs flat and hierarchical).
    pub gpu_counts: Vec<usize>,
    /// Training iterations simulated per point.
    pub iterations: u64,
    /// Traced samples per batch.
    pub batch_size: usize,
    /// Synthetic samples profiled before sharding.
    pub profile_samples: usize,
    /// Open-loop arrival interval, ms (identical across points).
    pub arrival_interval_ms: f64,
    /// Iterations per point of the `contention` sweep (shorter than the
    /// main sweep — four scenario × mode runs ride along).
    pub contention_iterations: u64,
    /// Master seed.
    pub seed: u64,
    /// Measure wall-clock times and events/sec into the JSON (breaks
    /// byte-stability across runs; stdout always shows measured rates).
    pub include_timing: bool,
}

impl DesBenchConfig {
    /// The full tracked sweep: 4- and 16-GPU points, flat + hierarchical.
    pub fn full() -> Self {
        Self {
            tables: 48,
            gpu_counts: vec![4, 16],
            iterations: 10_000,
            batch_size: 32,
            profile_samples: 3_000,
            arrival_interval_ms: 2.0,
            contention_iterations: 2_000,
            seed: 0xA5F0,
            include_timing: false,
        }
    }

    /// A seconds-scale sweep for tests and CI smoke runs.
    pub fn tiny() -> Self {
        Self {
            tables: 24,
            gpu_counts: vec![4],
            iterations: 300,
            batch_size: 16,
            profile_samples: 800,
            arrival_interval_ms: 2.0,
            contention_iterations: 150,
            seed: 0xA5F0,
            include_timing: false,
        }
    }

    /// [`full`](Self::full) with environment overrides:
    /// `RECSHARD_DES_MAX_GPUS` truncates the GPU sweep,
    /// `RECSHARD_DES_ITERS` overrides the iteration count, `RECSHARD_SEED`
    /// reseeds, and `RECSHARD_BENCH_TIMING=1` measures wall times into the
    /// JSON.
    pub fn from_env() -> Self {
        let mut cfg = Self::full();
        let get = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
        if let Some(max) = get("RECSHARD_DES_MAX_GPUS") {
            cfg.gpu_counts.retain(|&g| g as u64 <= max);
        }
        if let Some(iters) = get("RECSHARD_DES_ITERS") {
            cfg.iterations = iters.max(1);
        }
        if let Some(seed) = get("RECSHARD_SEED") {
            cfg.seed = seed;
        }
        cfg.include_timing = std::env::var("RECSHARD_BENCH_TIMING").as_deref() == Ok("1");
        cfg
    }

    fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig {
            batch_size: self.batch_size,
            iterations: self.iterations,
            seed: self.seed,
            arrival: ArrivalProcess::FixedRate {
                interval_ms: self.arrival_interval_ms,
            },
            kernel_overhead_us_per_table: 8.0,
            scale_to_batch: None,
            ..ClusterConfig::default()
        }
    }
}

/// One sweep point: one seeded DES run of one plan shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DesBenchPoint {
    /// GPUs simulated.
    pub gpus: usize,
    /// Nodes of the plan's topology (1 = flat).
    pub nodes: usize,
    /// Iterations simulated.
    pub iterations: u64,
    /// Total simulator events processed.
    pub events: u64,
    /// Plan swaps performed by the re-sharding controller.
    pub reshards: u32,
    /// Virtual-time makespan, ms.
    pub makespan_ms: f64,
    /// Sustained throughput in *virtual* time (iterations per virtual
    /// second) — deterministic, unlike the wall-clock rate below.
    pub virtual_iters_per_s: f64,
    /// Median iteration sojourn time, ms.
    pub p50_ms: f64,
    /// 99th-percentile iteration sojourn time, ms.
    pub p99_ms: f64,
    /// Order-sensitive FNV-1a hash of the run's entire event log.
    pub fingerprint: u64,
    /// Best-of-[`TIMING_REPS`] wall-clock run time (ms), or
    /// [`TIMING_DISABLED`].
    pub wall_ms: f64,
    /// Simulator events per wall-clock second (best repetition), or
    /// [`TIMING_DISABLED`].
    pub events_per_sec: f64,
}

/// One `contention`-sweep point: one seeded DES run of one scenario under
/// one [`ContentionMode`]. Everything here is a pure function of the seed
/// (no wall-clock fields), so the section is byte-stable and its
/// fingerprints are drift-gated like the main sweep's.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionPoint {
    /// Exchange traffic shape: `"uniform"` (the flat RecShard plan) or
    /// `"incast"` (every table concentrated on the non-receiving nodes'
    /// GPUs of a two-level topology).
    pub scenario: String,
    /// `"fifo"` or `"shared_rate"`.
    pub mode: String,
    /// GPUs simulated.
    pub gpus: usize,
    /// Nodes of the plan's topology (1 = flat).
    pub nodes: usize,
    /// Iterations simulated.
    pub iterations: u64,
    /// Total simulator events processed.
    pub events: u64,
    /// Virtual-time makespan, ms.
    pub makespan_ms: f64,
    /// Median iteration sojourn time, ms.
    pub p50_ms: f64,
    /// 99th-percentile iteration sojourn time, ms.
    pub p99_ms: f64,
    /// Order-sensitive FNV-1a hash of the run's entire event log.
    pub fingerprint: u64,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct DesBenchReport {
    /// Seed the sweep ran under.
    pub seed: u64,
    /// Whether timing fields hold measurements.
    pub timed: bool,
    /// Per-point results, sweep order (gpus outer; flat before
    /// hierarchical).
    pub points: Vec<DesBenchPoint>,
    /// Contention-sweep results (scenario outer, FIFO before shared-rate).
    pub contention: Vec<ContentionPoint>,
}

/// The flat and hierarchical plans of one sweep GPU count.
fn sweep_plans(
    cfg: &DesBenchConfig,
    profile: &DatasetProfile,
    gpus: usize,
) -> Vec<(usize, ShardingPlan)> {
    let model = skewed_model(cfg.tables);
    let system = bench_system(model.total_bytes(), gpus);
    let flat = Strategy::RecShard.plan(&model, profile, &system);
    let topology = bench_topology(gpus);
    let hier = HierarchicalSolver::new(RecShardConfig::default(), topology)
        .solve(&model, profile, &system)
        .expect("hierarchical solve failed");
    vec![(1, flat), (topology.num_nodes, hier)]
}

/// Wall-clock repetitions per timed point. The simulated run is a pure
/// function of the seed, so every repetition produces the identical
/// summary (asserted) — only the wall time varies with scheduler noise.
/// Best-of-N keeps the recorded events/sec stable enough for the
/// regression gate's 25% margin to mean something.
const TIMING_REPS: usize = 3;

fn simulate(
    cfg: &DesBenchConfig,
    profile: &DatasetProfile,
    system: &SystemSpec,
    plan: &ShardingPlan,
) -> (RunSummary, f64) {
    let model = skewed_model(cfg.tables);
    let reps = if cfg.include_timing { TIMING_REPS } else { 1 };
    let mut best: Option<(RunSummary, f64)> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let summary =
            ClusterSimulator::new(&model, plan, profile, system, cfg.cluster_config()).run();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        best = Some(match best {
            None => (summary, wall_ms),
            Some((prev, prev_ms)) => {
                assert_eq!(
                    prev, summary,
                    "seeded repetitions must replay bit-identically"
                );
                (prev, prev_ms.min(wall_ms))
            }
        });
    }
    best.expect("at least one repetition")
}

/// The incast plan of the contention sweep: every table lives (all-HBM) on
/// a GPU of nodes `1..`, so the inter-node phase converges all sender flows
/// onto each receiving node's fabric port at once.
fn incast_plan(cfg: &DesBenchConfig, topology: NodeTopology) -> ShardingPlan {
    let model = skewed_model(cfg.tables);
    let gpus = topology.num_gpus();
    let senders = gpus - topology.gpus_per_node;
    let placements: Vec<TablePlacement> = model
        .features()
        .iter()
        .map(|f| TablePlacement {
            table: f.id,
            gpu: topology.gpus_per_node + f.id.index() % senders,
            hbm_rows: f.hash_size,
            total_rows: f.hash_size,
            row_bytes: f.row_bytes(),
        })
        .collect();
    ShardingPlan::new("incast", gpus, placements).with_topology(topology)
}

/// Runs the `contention` sweep: the uniform flat plan and the incast plan,
/// each once per [`ContentionMode`], at the smallest sweep GPU count.
///
/// # Panics
///
/// Panics if the incast scenario's shared-rate p99 does not strictly exceed
/// its FIFO p99 — the acceptance criterion of the shared-rate contention
/// model (the old split-bandwidth exchange cannot see incast queueing).
fn run_contention_sweep(cfg: &DesBenchConfig, profile: &DatasetProfile) -> Vec<ContentionPoint> {
    let gpus = *cfg.gpu_counts.first().expect("sweep needs a GPU count");
    let model = skewed_model(cfg.tables);
    let system = bench_system(model.total_bytes(), gpus);
    let uniform = Strategy::RecShard.plan(&model, profile, &system);
    let incast = incast_plan(cfg, bench_topology(gpus));
    let mut points = Vec::new();
    for (scenario, plan) in [("uniform", &uniform), ("incast", &incast)] {
        let mut p99_by_mode = Vec::new();
        for (mode, contention) in [
            ("fifo", ContentionMode::Fifo),
            ("shared_rate", ContentionMode::SharedRate),
        ] {
            let config = ClusterConfig {
                iterations: cfg.contention_iterations,
                contention,
                ..cfg.cluster_config()
            };
            let summary = ClusterSimulator::new(&model, plan, profile, &system, config).run();
            println!(
                "des_bench contention: {scenario}/{mode} on {gpus} GPUs x {} node(s): \
                 {} events, sojourn p50/p99 {:.3}/{:.3} ms, fingerprint {:#018x}",
                plan.effective_topology().num_nodes,
                summary.events,
                summary.p50_ms,
                summary.p99_ms,
                summary.fingerprint,
            );
            p99_by_mode.push(summary.p99_ms);
            points.push(ContentionPoint {
                scenario: scenario.to_string(),
                mode: mode.to_string(),
                gpus,
                nodes: plan.effective_topology().num_nodes,
                iterations: summary.completed,
                events: summary.events,
                makespan_ms: summary.makespan_ms,
                p50_ms: summary.p50_ms,
                p99_ms: summary.p99_ms,
                fingerprint: summary.fingerprint,
            });
        }
        if scenario == "incast" {
            assert!(
                p99_by_mode[1] > p99_by_mode[0],
                "incast shared-rate p99 ({}) must exceed the FIFO model's ({})",
                p99_by_mode[1],
                p99_by_mode[0],
            );
        }
    }
    points
}

/// Runs the sweep.
pub fn run_sweep(cfg: &DesBenchConfig) -> DesBenchReport {
    let model = skewed_model(cfg.tables);
    let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);
    let mut points = Vec::new();
    for &gpus in &cfg.gpu_counts {
        let system = bench_system(model.total_bytes(), gpus);
        for (nodes, plan) in sweep_plans(cfg, &profile, gpus) {
            let (summary, wall_ms) = simulate(cfg, &profile, &system, &plan);
            let events_per_sec = summary.events as f64 / (wall_ms / 1e3).max(1e-12);
            println!(
                "des_bench: {gpus} GPUs x {nodes} node(s): {} events in {wall_ms:.1} ms \
                 ({events_per_sec:.0} events/s wall), virtual {:.1} iters/s, \
                 sojourn p50/p99 {:.3}/{:.3} ms, fingerprint {:#018x}",
                summary.events,
                summary.throughput_iters_per_s,
                summary.p50_ms,
                summary.p99_ms,
                summary.fingerprint,
            );
            let gate = |v: f64| {
                if cfg.include_timing {
                    v
                } else {
                    TIMING_DISABLED
                }
            };
            points.push(DesBenchPoint {
                gpus,
                nodes,
                iterations: summary.completed,
                events: summary.events,
                reshards: summary.reshards,
                makespan_ms: summary.makespan_ms,
                virtual_iters_per_s: summary.throughput_iters_per_s,
                p50_ms: summary.p50_ms,
                p99_ms: summary.p99_ms,
                fingerprint: summary.fingerprint,
                wall_ms: gate(wall_ms),
                events_per_sec: gate(events_per_sec),
            });
        }
    }
    let contention = run_contention_sweep(cfg, &profile);
    DesBenchReport {
        seed: cfg.seed,
        timed: cfg.include_timing,
        points,
        contention,
    }
}

/// Runs the sweep's smallest flat point once with a [`Collector`] attached:
/// the seeded smoke run whose JSONL/Chrome-trace/metrics artifacts CI
/// exports, and the subject of the observability determinism tests.
///
/// # Panics
///
/// Panics if the configuration sweeps no GPU counts.
pub fn traced_smoke(cfg: &DesBenchConfig) -> (RunSummary, ObsBundle) {
    let gpus = *cfg.gpu_counts.first().expect("sweep needs a GPU count");
    let model = skewed_model(cfg.tables);
    let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);
    let system = bench_system(model.total_bytes(), gpus);
    let plan = Strategy::RecShard.plan(&model, &profile, &system);
    let mut collector = Collector::new();
    let summary = ClusterSimulator::new(&model, &plan, &profile, &system, cfg.cluster_config())
        .with_obs(&mut collector)
        .run();
    (summary, collector.finish())
}

impl DesBenchReport {
    /// Canonical JSON serialisation (the `BENCH_des.json` payload): key
    /// order fixed, floats in `{:.9e}`, one point per line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"des_throughput\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"timed\": {},\n", self.timed));
        out.push_str("  \"timing_sentinel\": \"-1 = timing disabled for byte-stable output\",\n");
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let f = |x: f64| format!("{x:.9e}");
            out.push_str(&format!(
                "    {{\"gpus\": {}, \"nodes\": {}, \"iterations\": {}, \
                 \"events\": {}, \"reshards\": {}, \"makespan_ms\": {}, \
                 \"virtual_iters_per_s\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
                 \"fingerprint\": \"{:#018x}\", \
                 \"wall_ms\": {}, \"events_per_sec\": {}}}{}\n",
                p.gpus,
                p.nodes,
                p.iterations,
                p.events,
                p.reshards,
                f(p.makespan_ms),
                f(p.virtual_iters_per_s),
                f(p.p50_ms),
                f(p.p99_ms),
                p.fingerprint,
                f(p.wall_ms),
                f(p.events_per_sec),
                if i + 1 < self.points.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"contention\": [\n");
        for (i, p) in self.contention.iter().enumerate() {
            let f = |x: f64| format!("{x:.9e}");
            out.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"gpus\": {}, \
                 \"nodes\": {}, \"iterations\": {}, \"events\": {}, \
                 \"makespan_ms\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
                 \"fingerprint\": \"{:#018x}\"}}{}\n",
                p.scenario,
                p.mode,
                p.gpus,
                p.nodes,
                p.iterations,
                p.events,
                f(p.makespan_ms),
                f(p.p50_ms),
                f(p.p99_ms),
                p.fingerprint,
                if i + 1 < self.contention.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// FNV-1a fingerprint over the canonical JSON with timing fields
    /// blanked, so the value is identical whether or not timing ran.
    pub fn fingerprint(&self) -> u64 {
        let mut untimed = self.clone();
        untimed.timed = false;
        for p in &mut untimed.points {
            p.wall_ms = TIMING_DISABLED;
            p.events_per_sec = TIMING_DISABLED;
        }
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in untimed.to_json().bytes() {
            fnv_fold(&mut hash, byte as u64);
        }
        hash
    }
}

/// Extracts the hex fingerprint string from one canonical-JSON point line.
fn field_fingerprint(line: &str) -> Option<&str> {
    let key = "\"fingerprint\": \"";
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Extracts a quoted string field from one canonical-JSON point line.
fn field_str<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\": \"");
    let start = line.find(&key)? + key.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Parses the `(scenario, mode, gpus, nodes, iterations)` identity of one
/// baseline point line (the key the gates match on). Main-sweep points —
/// and every line of a baseline predating the contention sweep — carry no
/// scenario/mode fields, which parse as empty strings, so old baselines
/// keep matching the main sweep and never collide with contention keys.
fn point_key(line: &str) -> Option<(String, String, usize, usize, u64)> {
    Some((
        field_str(line, "scenario").unwrap_or("").to_string(),
        field_str(line, "mode").unwrap_or("").to_string(),
        field_num(line, "gpus")? as usize,
        field_num(line, "nodes")? as usize,
        field_num(line, "iterations")? as u64,
    ))
}

/// Compares a freshly computed (timed) report against a previously
/// committed `BENCH_des.json` payload and returns one human-readable line
/// per *throughput regression*: a point (matched on `gpus` × `nodes` ×
/// `iterations`) whose wall-clock events/sec fell below `1 - tolerance`
/// times the baseline's. Points missing on either side, and points whose
/// timing is the [`TIMING_DISABLED`] sentinel on either side, are skipped
/// — untimed runs and trimmed sweeps never false-positive. The default CI
/// tolerance is generous (25%) because wall-clock rates on shared runners
/// are noisy; the gate exists to catch order-of-magnitude instrumentation
/// slowdowns, not scheduler jitter.
pub fn throughput_regressions(
    current: &DesBenchReport,
    baseline_json: &str,
    tolerance: f64,
) -> Vec<String> {
    let mut baseline = Vec::new(); // (key, events_per_sec)
    for line in baseline_json.lines() {
        let (Some(key), Some(rate)) = (point_key(line), field_num(line, "events_per_sec")) else {
            continue;
        };
        baseline.push((key, rate));
    }
    let mut regressions = Vec::new();
    for p in &current.points {
        if p.events_per_sec <= 0.0 {
            continue; // sentinel: this run was untimed
        }
        let key = (String::new(), String::new(), p.gpus, p.nodes, p.iterations);
        let Some(&(_, base)) = baseline.iter().find(|(k, _)| *k == key) else {
            continue;
        };
        if base <= 0.0 {
            continue; // baseline was untimed
        }
        if p.events_per_sec < base * (1.0 - tolerance) {
            regressions.push(format!(
                "{} GPUs x {} node(s) x {} iters: {:.0} events/s is more than {:.0}% below \
                 the baseline's {:.0} events/s",
                p.gpus,
                p.nodes,
                p.iterations,
                p.events_per_sec,
                tolerance * 100.0,
                base,
            ));
        }
    }
    regressions
}

/// Compares event-log fingerprints against a previously committed
/// `BENCH_des.json` payload (matched on `scenario` × `mode` × `gpus` ×
/// `nodes` × `iterations`; main-sweep keys have empty scenario/mode) and
/// returns one line per drifted point, contention sweep included. Drift
/// means the simulated behaviour changed — `des_bench` *fails* on it
/// unless `RECSHARD_BENCH_ALLOW_DRIFT=1` acknowledges an intentional
/// change (e.g. solver work that legitimately moves plans); points missing
/// on either side are skipped, so trimmed sweeps never false-positive.
pub fn fingerprint_drift(current: &DesBenchReport, baseline_json: &str) -> Vec<String> {
    let mut baseline = Vec::new(); // (key, fingerprint string)
    for line in baseline_json.lines() {
        let (Some(key), Some(fp)) = (point_key(line), field_fingerprint(line)) else {
            continue;
        };
        baseline.push((key, fp.to_string()));
    }
    let mut drifted = Vec::new();
    let mut check = |key: (String, String, usize, usize, u64), fingerprint: u64| {
        let Some((_, base)) = baseline.iter().find(|(k, _)| *k == key) else {
            return;
        };
        let fp = format!("{fingerprint:#018x}");
        if &fp != base {
            let (scenario, mode, gpus, nodes, iterations) = key;
            let label = if scenario.is_empty() {
                String::new()
            } else {
                format!("{scenario}/{mode} ")
            };
            drifted.push(format!(
                "{label}{gpus} GPUs x {nodes} node(s) x {iterations} iters: event-log \
                 fingerprint {fp} differs from baseline {base}",
            ));
        }
    };
    for p in &current.points {
        check(
            (String::new(), String::new(), p.gpus, p.nodes, p.iterations),
            p.fingerprint,
        );
    }
    for p in &current.contention {
        check(
            (
                p.scenario.clone(),
                p.mode.clone(),
                p.gpus,
                p.nodes,
                p.iterations,
            ),
            p.fingerprint,
        );
    }
    drifted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_deterministic_and_sound() {
        let cfg = DesBenchConfig::tiny();
        let a = run_sweep(&cfg);
        let b = run_sweep(&cfg);
        assert_eq!(a, b, "same seed must reproduce the same sweep");
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.points.len(), 2, "flat + hierarchical at one GPU count");
        assert_eq!(a.points[0].nodes, 1, "flat point first");
        assert!(a.points[1].nodes > 1, "hierarchical point second");
        for p in &a.points {
            assert_eq!(p.iterations, cfg.iterations);
            assert!(p.events > p.iterations, "every iteration takes >1 event");
            assert!(p.p50_ms > 0.0 && p.p50_ms <= p.p99_ms);
            assert!(p.virtual_iters_per_s > 0.0);
            assert_eq!(p.wall_ms, TIMING_DISABLED);
            assert_eq!(p.events_per_sec, TIMING_DISABLED);
        }
        assert_eq!(
            a.contention.len(),
            4,
            "uniform + incast, each under both contention modes"
        );
        for p in &a.contention {
            assert_eq!(p.iterations, cfg.contention_iterations);
            assert!(p.p50_ms > 0.0 && p.p50_ms <= p.p99_ms);
        }
        let find = |scenario: &str, mode: &str| {
            a.contention
                .iter()
                .find(|p| p.scenario == scenario && p.mode == mode)
                .unwrap_or_else(|| panic!("missing contention point {scenario}/{mode}"))
        };
        // The sweep itself asserts this, but pin the acceptance criterion
        // here too: incast queueing is visible only to the shared-rate model.
        assert!(find("incast", "shared_rate").p99_ms > find("incast", "fifo").p99_ms);
        assert!(find("incast", "fifo").nodes > 1);
        assert_eq!(find("uniform", "fifo").nodes, 1);
    }

    #[test]
    fn timing_mode_changes_json_but_not_fingerprint() {
        let mut cfg = DesBenchConfig::tiny();
        cfg.iterations = 60;
        let untimed = run_sweep(&cfg);
        cfg.include_timing = true;
        let timed = run_sweep(&cfg);
        assert_ne!(untimed.to_json(), timed.to_json());
        assert_eq!(untimed.fingerprint(), timed.fingerprint());
        assert!(timed.points[0].wall_ms >= 0.0);
        assert!(timed.points[0].events_per_sec > 0.0);
    }

    #[test]
    fn throughput_gate_and_drift_report_behave() {
        let mut cfg = DesBenchConfig::tiny();
        cfg.iterations = 60;
        cfg.include_timing = true;
        let report = run_sweep(&cfg);
        let baseline = report.to_json();

        assert!(
            throughput_regressions(&report, &baseline, 0.25).is_empty(),
            "a report can never regress against its own serialisation"
        );
        assert!(fingerprint_drift(&report, &baseline).is_empty());

        // Halving every rate must trip a 25% gate on every matched point.
        let mut slowed = report.clone();
        for p in &mut slowed.points {
            p.events_per_sec *= 0.5;
        }
        let regressions = throughput_regressions(&slowed, &baseline, 0.25);
        assert_eq!(
            regressions.len(),
            report.points.len(),
            "every slowed point must be flagged: {regressions:?}"
        );
        // ... and a very loose gate accepts the same drift.
        assert!(throughput_regressions(&slowed, &baseline, 0.6).is_empty());

        // Sentinel timings on the current side are skipped, not flagged.
        let mut untimed = report.clone();
        for p in &mut untimed.points {
            p.wall_ms = TIMING_DISABLED;
            p.events_per_sec = TIMING_DISABLED;
        }
        assert!(throughput_regressions(&untimed, &baseline, 0.25).is_empty());

        // A mutated fingerprint is reported as drift but never as a
        // throughput regression.
        let mut drifted = report.clone();
        drifted.points[0].fingerprint ^= 1;
        assert_eq!(fingerprint_drift(&drifted, &baseline).len(), 1);
        assert!(throughput_regressions(&drifted, &baseline, 0.25).is_empty());

        // Contention points are drift-gated on their own scenario/mode keys.
        let mut cdrift = report.clone();
        cdrift.contention[0].fingerprint ^= 1;
        let lines = fingerprint_drift(&cdrift, &baseline);
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains(&cdrift.contention[0].scenario),
            "drift line must name the scenario: {lines:?}"
        );

        // Trimming the sweep on either side is ignored.
        let mut trimmed = report.clone();
        trimmed.points.truncate(1);
        assert!(throughput_regressions(&trimmed, &baseline, 0.25).is_empty());
        assert!(fingerprint_drift(&trimmed, &baseline).is_empty());
    }

    #[test]
    fn traced_smoke_matches_untraced_run_and_bundles_everything() {
        let mut cfg = DesBenchConfig::tiny();
        cfg.iterations = 40;
        let (summary, bundle) = traced_smoke(&cfg);
        let plain = run_sweep(&cfg);
        assert_eq!(
            summary.fingerprint, plain.points[0].fingerprint,
            "the traced smoke run must replay the flat sweep point exactly"
        );
        assert!(
            !bundle.trace.is_empty(),
            "the smoke run must record a trace"
        );
        let jsonl = bundle.trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), bundle.trace.len());
        let chrome = bundle.trace.to_chrome();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.trim_end().ends_with("]}"));
    }
}
