//! Quickstart: profile a synthetic model, shard it with RecShard, and compare
//! against the size-based production baseline on a capacity-constrained
//! two-tier system.
//!
//! Run with `cargo run --release -p recshard-bench --example quickstart`.

#![allow(clippy::print_stdout)]
use recshard::{RecShard, RecShardConfig};
use recshard_data::ModelSpec;
use recshard_memsim::{EmbeddingOpSimulator, SimConfig};
use recshard_sharding::{GreedySharder, SizeCost, SystemSpec};
use recshard_stats::DatasetProfiler;

fn main() {
    // 1. A small synthetic DLRM feature universe (32 embedding tables).
    let model = ModelSpec::small(32, 42).with_batch_size(1024);
    println!(
        "model: {} tables, {:.1} MB of embeddings, ~{:.0} lookups per sample",
        model.num_features(),
        model.total_bytes() as f64 / 1e6,
        model.expected_lookups_per_sample()
    );

    // 2. A 4-GPU system whose HBM only fits ~25% of the model; the rest must
    //    live in host DRAM reached over UVM at ~1/100th the bandwidth.
    let system = SystemSpec::uniform(
        4,
        model.total_bytes() / 16,
        model.total_bytes(),
        1555.0,
        16.0,
    );

    // 3. Phase 1 — profile a sample of the training data.
    let profile = DatasetProfiler::profile_model(&model, 5_000, 7);

    // 4. Phase 2+3 — RecShard's row-granular plan vs the size-based baseline.
    let recshard_plan = RecShard::new(RecShardConfig::default())
        .plan(&model, &profile, &system)
        .expect("recshard plan");
    let baseline_plan = GreedySharder::new(SizeCost)
        .shard(&model, &profile, &system)
        .expect("baseline plan");

    // 5. Simulate the embedding operator under both plans.
    let sim_cfg = SimConfig::default();
    let mut recshard_sim =
        EmbeddingOpSimulator::new(&model, &recshard_plan, &profile, &system, sim_cfg);
    let mut baseline_sim =
        EmbeddingOpSimulator::new(&model, &baseline_plan, &profile, &system, sim_cfg);
    let recshard_report = recshard_sim.run(5, 512, 1);
    let baseline_report = baseline_sim.run(5, 512, 1);

    println!();
    println!("strategy   | iter time (ms) | UVM access share | rows on UVM");
    println!(
        "size-based | {:>14.3} | {:>15.2}% | {:>10.1}%",
        baseline_report.iteration_time_ms(),
        baseline_report.uvm_access_fraction() * 100.0,
        baseline_plan.uvm_row_fraction() * 100.0
    );
    println!(
        "recshard   | {:>14.3} | {:>15.2}% | {:>10.1}%",
        recshard_report.iteration_time_ms(),
        recshard_report.uvm_access_fraction() * 100.0,
        recshard_plan.uvm_row_fraction() * 100.0
    );
    println!();
    println!(
        "speedup: {:.2}x — RecShard keeps a similar share of rows in UVM but picks the *cold* \
         rows, so almost no accesses pay the UVM bandwidth penalty.",
        baseline_report.iteration_time_ms() / recshard_report.iteration_time_ms()
    );
}
