//! MILP model builder.

use crate::branch::BranchAndBound;
use crate::error::MilpError;
use crate::solution::Solution;
use serde::{Deserialize, Serialize};

/// Handle to a decision variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable within the model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Whether a variable is continuous or must take integer values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarKind {
    /// Real-valued variable.
    Continuous,
    /// Integer-valued variable.
    Integer,
    /// Integer variable restricted to `{0, 1}` (bounds are forced to `[0, 1]`).
    Binary,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint comparison sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintSense {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// A decision variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    /// Display name.
    pub name: String,
    /// Continuous / integer / binary.
    pub kind: VarKind,
    /// Lower bound (may be 0 or any finite value; negative lower bounds are
    /// supported via an internal shift).
    pub lower: f64,
    /// Upper bound (`f64::INFINITY` when unbounded above).
    pub upper: f64,
    /// Objective coefficient.
    pub objective: f64,
}

/// A linear constraint `sum(coeff * var) sense rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Display name.
    pub name: String,
    /// Sparse coefficient list.
    pub terms: Vec<(VarId, f64)>,
    /// Comparison sense.
    pub sense: ConstraintSense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A mixed-integer linear program under construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    sense: Sense,
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
    node_limit: usize,
}

impl Model {
    /// Creates an empty model with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            variables: Vec::new(),
            constraints: Vec::new(),
            node_limit: 200_000,
        }
    }

    /// Adds a variable and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> VarId {
        assert!(
            !lower.is_nan() && !upper.is_nan(),
            "variable bounds must not be NaN"
        );
        let (lower, upper) = match kind {
            VarKind::Binary => (lower.max(0.0), upper.min(1.0)),
            _ => (lower, upper),
        };
        assert!(lower <= upper, "lower bound must not exceed upper bound");
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            kind,
            lower,
            upper,
            objective,
        });
        id
    }

    /// Adds a binary variable with the given objective coefficient.
    pub fn add_binary(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        self.add_var(name, VarKind::Binary, 0.0, 1.0, objective)
    }

    /// Adds a non-negative continuous variable with the given objective
    /// coefficient.
    pub fn add_continuous(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        self.add_var(name, VarKind::Continuous, 0.0, f64::INFINITY, objective)
    }

    /// Adds a linear constraint.
    ///
    /// # Panics
    ///
    /// Panics if a term references a variable not belonging to this model or
    /// if the right-hand side is not finite.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: Vec<(VarId, f64)>,
        sense: ConstraintSense,
        rhs: f64,
    ) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        for (v, _) in &terms {
            assert!(
                v.index() < self.variables.len(),
                "constraint references unknown variable"
            );
        }
        self.constraints.push(Constraint {
            name: name.into(),
            terms,
            sense,
            rhs,
        });
    }

    /// Sets the branch-and-bound node limit (default 200,000).
    pub fn set_node_limit(&mut self, limit: usize) {
        assert!(limit > 0, "node limit must be positive");
        self.node_limit = limit;
    }

    /// The optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// The model's variables.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// The model's constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Configured branch-and-bound node limit.
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }

    /// Evaluates the objective for a full assignment of variable values.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.variables
            .iter()
            .zip(values)
            .map(|(v, &x)| v.objective * x)
            .sum()
    }

    /// Checks whether an assignment satisfies all constraints and bounds
    /// within tolerance `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.variables.len() {
            return false;
        }
        for (v, &x) in self.variables.iter().zip(values) {
            if x < v.lower - tol || x > v.upper + tol {
                return false;
            }
            if matches!(v.kind, VarKind::Integer | VarKind::Binary) && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c
                .terms
                .iter()
                .map(|&(v, coeff)| coeff * values[v.index()])
                .sum();
            let ok = match c.sense {
                ConstraintSense::Le => lhs <= c.rhs + tol,
                ConstraintSense::Ge => lhs >= c.rhs - tol,
                ConstraintSense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Solves the model to optimality (LP relaxation via simplex, integrality
    /// via branch and bound).
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::Infeasible`], [`MilpError::Unbounded`],
    /// [`MilpError::NodeLimit`] or [`MilpError::InvalidModel`].
    pub fn solve(&self) -> Result<Solution, MilpError> {
        self.solve_with(crate::branch::SolveOptions::default())
    }

    /// Solves the model with explicit branch-and-bound options (e.g. warm
    /// starts disabled, to cross-check the warm-start path).
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve_with(&self, options: crate::branch::SolveOptions) -> Result<Solution, MilpError> {
        self.solve_observed(options, &mut recshard_obs::ObsHandle::noop())
    }

    /// Solves the model, emitting LP-solve / node open / prune / incumbent
    /// trace events into `obs`. The search is observation-independent: the
    /// returned solution is identical for any sink, including the no-op one.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve_observed(
        &self,
        options: crate::branch::SolveOptions,
        obs: &mut recshard_obs::ObsHandle<'_>,
    ) -> Result<Solution, MilpError> {
        if self.variables.is_empty() {
            return Err(MilpError::InvalidModel("model has no variables".into()));
        }
        BranchAndBound::with_options(self, options).solve_observed(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_vars_and_constraints() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_binary("y", 2.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], ConstraintSense::Ge, 1.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.variables()[y.index()].upper, 1.0);
    }

    #[test]
    fn feasibility_checker() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 10.0, 1.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 2.0)], ConstraintSense::Le, 5.0);
        assert!(m.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!m.is_feasible(&[2.0, 2.0], 1e-9)); // violates constraint
        assert!(!m.is_feasible(&[1.0, 2.5], 1e-9)); // fractional integer
        assert!(!m.is_feasible(&[1.0], 1e-9)); // wrong arity
        assert_eq!(m.objective_value(&[1.0, 2.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "constraint references unknown variable")]
    fn foreign_variable_rejected() {
        let mut a = Model::new(Sense::Minimize);
        let _x = a.add_continuous("x", 1.0);
        let mut b = Model::new(Sense::Minimize);
        b.add_constraint("bad", vec![(VarId(5), 1.0)], ConstraintSense::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "lower bound must not exceed upper bound")]
    fn inverted_bounds_rejected() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", VarKind::Continuous, 2.0, 1.0, 0.0);
    }

    #[test]
    fn empty_model_is_invalid() {
        let m = Model::new(Sense::Minimize);
        assert!(matches!(m.solve(), Err(MilpError::InvalidModel(_))));
    }
}
