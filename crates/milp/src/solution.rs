//! Solver output types.

use crate::model::VarId;
use serde::{Deserialize, Serialize};

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// Proven optimal solution.
    Optimal,
    /// Feasible integer solution found, but optimality was not proven before
    /// the node limit was reached.
    Feasible,
}

/// Search statistics of a solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// Simplex pivots performed across all LP relaxations.
    pub simplex_pivots: usize,
    /// Basis refactorisations performed across all sparse LP relaxations.
    pub simplex_refactorizations: usize,
    /// Branch-and-bound nodes pruned by bound or infeasibility.
    pub nodes_pruned: usize,
}

/// A solution to a MILP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    status: Status,
    objective: f64,
    values: Vec<f64>,
    stats: SolveStats,
}

impl Solution {
    pub(crate) fn new(status: Status, objective: f64, values: Vec<f64>, stats: SolveStats) -> Self {
        Self {
            status,
            objective,
            values,
            stats,
        }
    }

    /// Termination status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Objective value in the model's original sense.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of a variable in the solution.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Search statistics.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }
}
