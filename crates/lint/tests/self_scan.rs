//! The self-scan golden: runs the real workspace scan and pins three
//! properties of the committed state — `--check` passes, the committed
//! `lint-baseline.txt` regenerates byte-identically, and the gate actually
//! bites (removing an allow annotation or a baseline entry fails the check).

use recshard_lint::diag::sort;
use recshard_lint::{analyze_source, check, scan_workspace, Baseline, FileKind, BASELINE_FILE};
use std::path::PathBuf;

/// The workspace root, two levels up from this crate's manifest.
fn root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

#[test]
fn check_passes_on_the_committed_workspace() {
    let report = check(&root()).unwrap();
    assert!(
        report.ok(),
        "recshard-lint --check must pass on a committed tree; new: {:#?}, stale: {:#?}",
        report.new,
        report.stale
    );
    assert!(report.stale.is_empty());
}

#[test]
fn committed_baseline_regenerates_byte_identically() {
    let root = root();
    let diags = scan_workspace(&root).unwrap();
    let regenerated = Baseline::render(&diags);
    let committed = std::fs::read_to_string(root.join(BASELINE_FILE)).unwrap();
    assert_eq!(
        regenerated, committed,
        "lint-baseline.txt drifted from `--update-baseline` output"
    );
}

#[test]
fn scan_is_deterministic_across_runs() {
    let root = root();
    let a = scan_workspace(&root).unwrap();
    let b = scan_workspace(&root).unwrap();
    assert_eq!(a, b);
    let mut sorted = a.clone();
    sort(&mut sorted);
    assert_eq!(a, sorted, "scan output must come out sorted");
}

#[test]
fn removing_a_baseline_entry_fails_the_check() {
    let root = root();
    let diags = scan_workspace(&root).unwrap();
    let committed = std::fs::read_to_string(root.join(BASELINE_FILE)).unwrap();
    // Drop the first non-comment entry and re-partition: the diagnostic it
    // covered must resurface as new.
    let victim = committed
        .lines()
        .find(|l| !l.starts_with('#') && !l.trim().is_empty())
        .expect("committed baseline has at least one grandfathered entry");
    let shrunk: String = committed
        .lines()
        .filter(|l| *l != victim)
        .map(|l| format!("{l}\n"))
        .collect();
    let baseline = Baseline::parse(&shrunk).unwrap();
    let (_, new, stale) = baseline.partition(&diags);
    assert_eq!(
        new.len(),
        1,
        "shrinking the baseline by one entry must surface exactly one new violation"
    );
    assert!(stale.is_empty());
}

#[test]
fn removing_an_allow_annotation_fails_the_check() {
    // Strip the allow annotations from a real, committed library file and
    // re-analyze it: suppressed diagnostics must resurface, and none of them
    // may be covered by the committed baseline (annotated sites are fixed
    // sites, not grandfathered ones).
    let root = root();
    let rel = "crates/des/src/time.rs";
    let src = std::fs::read_to_string(root.join(rel)).unwrap();
    assert!(src.contains("recshard-lint: allow("), "fixture went stale");
    let stripped: String = src
        .lines()
        .filter(|l| !l.trim_start().starts_with("// recshard-lint:"))
        .map(|l| format!("{l}\n"))
        .collect();

    let before = analyze_source(rel, FileKind::Lib, &src);
    assert!(
        before.is_empty(),
        "the committed file must scan clean: {before:#?}"
    );
    let after = analyze_source(rel, FileKind::Lib, &stripped);
    assert!(
        !after.is_empty(),
        "deleting the allow annotation must resurface the violation"
    );

    let committed = std::fs::read_to_string(root.join(BASELINE_FILE)).unwrap();
    let baseline = Baseline::parse(&committed).unwrap();
    for d in &after {
        assert_eq!(
            baseline.count(&d.key()),
            0,
            "annotated site must not also be grandfathered: {d:#?}"
        );
    }
}

#[test]
fn committed_tree_has_no_stray_annotation_spellings() {
    // A typo like `recshard_lint:` or `allow (` would silently not suppress;
    // cheap guard that every annotation in the tree parsed as an annotation.
    let root = root();
    for (abs, rel, kind) in recshard_lint::scan::workspace_files(&root).unwrap() {
        let src = std::fs::read_to_string(&abs).unwrap();
        if !src.contains("recshard-lint:") {
            continue;
        }
        let diags = analyze_source(&rel, kind, &src);
        for d in diags {
            assert_ne!(d.rule, "bad-allow", "{rel}:{} {}", d.line, d.message);
        }
    }
}
