//! Golden-fingerprint regression tests for the DES-backed experiment
//! binaries.
//!
//! Every `RunSummary` carries an order-sensitive FNV-1a hash over the entire
//! event log, so a seeded run is fingerprint-stable by construction. These
//! tests commit the fingerprints of fixed, scaled-down versions of the
//! `des_throughput` and `fig13_scaling` (DES backend) configurations and
//! assert bit-for-bit stability: any change to the event engine, the
//! workload sampler, the service-time model, the remap layer or the
//! strategy solvers that alters a single event — its time, order or payload
//! — fails here *loudly* instead of silently shifting published numbers.
//!
//! If a change is *intentional* (e.g. a new event type), re-derive the
//! constants by running the failing test and copying the `actual` values
//! from the assertion message.

use recshard_bench::solver_bench::{run_sweep, SolverBenchConfig};
use recshard_bench::{skewed_model, ExperimentConfig, Strategy};
use recshard_data::RmKind;
use recshard_des::{ArrivalProcess, ClusterConfig, ClusterSimulator, RunSummary};
use recshard_sharding::SystemSpec;
use recshard_stats::DatasetProfiler;

/// Committed fingerprints of the scaled-down `des_throughput` run, in
/// `Strategy::all()` order (SB, LB, SBL, RecShard).
const DES_THROUGHPUT_GOLDEN: [u64; 4] = [
    0x7687_f9c4_1968_5c4b,
    0x695b_6bc5_8bc2_deca,
    0xe817_6674_2fd0_97a0,
    0x8052_8467_260d_8801,
];

/// Committed fingerprint of the `fig13_scaling` DES backend (tiny config,
/// RM1, RecShard plan).
const FIG13_DES_GOLDEN: u64 = 0x088f_5c6b_4ad9_b186;

/// Committed fingerprint of the tiny `solver_scaling` sweep: the FNV-1a hash
/// of the canonical `BENCH_solver.json` payload with timing fields blanked
/// (the payload gained the `hetero_points` section with the heterogeneous
/// hardware model; the uniform sweep points are unchanged — see
/// `SOLVER_SCALING_PLAN_GOLDEN`, which kept its pre-hetero values).
const SOLVER_SCALING_GOLDEN: u64 = 0x5d2c_8486_c7dd_dbce;

/// Committed per-point scalable-plan fingerprints of the tiny sweep
/// (placement-level regression lock, finer than the JSON hash).
const SOLVER_SCALING_PLAN_GOLDEN: [u64; 2] = [0x2fb9_1b57_659d_ddcb, 0x97c4_2462_237c_40fd];

/// Committed scalable-plan fingerprints of the tiny sweep's mixed-cluster
/// `hetero_scaling` points (2 big + 2 small GPUs).
const HETERO_SCALING_PLAN_GOLDEN: [u64; 2] = [0x3a85_a2fe_9293_a897, 0x1695_d4a3_9a86_b9e7];

/// The scaled-down `des_throughput` configuration: same skewed workload
/// shape, same capacity pressure (HBM holds ~1/3 of the model), fixed
/// arrival interval instead of the binary's calibration so the golden value
/// does not depend on floating-point calibration output formatting.
fn des_throughput_run(strategy: Strategy) -> RunSummary {
    let model = skewed_model(24);
    let system = SystemSpec::uniform(
        4,
        model.total_bytes() / 12,
        model.total_bytes(),
        1555.0,
        16.0,
    );
    let profile = DatasetProfiler::profile_model(&model, 3_000, 0xA5F0);
    let plan = strategy.plan(&model, &profile, &system);
    let config = ClusterConfig {
        batch_size: 32,
        iterations: 400,
        seed: 0xA5F0,
        arrival: ArrivalProcess::FixedRate { interval_ms: 2.0 },
        kernel_overhead_us_per_table: 8.0,
        scale_to_batch: Some(model.batch_size()),
        ..ClusterConfig::default()
    };
    ClusterSimulator::new(&model, &plan, &profile, &system, config).run()
}

#[test]
fn des_throughput_fingerprints_are_bit_for_bit_stable() {
    let summaries: Vec<_> = Strategy::all()
        .iter()
        .map(|&s| (s, des_throughput_run(s)))
        .collect();
    for ((strategy, summary), &golden) in summaries.iter().zip(&DES_THROUGHPUT_GOLDEN) {
        assert_eq!(summary.completed, 400);
        assert_eq!(
            summary.fingerprint,
            golden,
            "{}: fingerprint drifted (actual {:#018x}, golden {:#018x}); all actuals: {:?}",
            strategy.label(),
            summary.fingerprint,
            golden,
            summaries
                .iter()
                .map(|(s, r)| format!("{} {:#018x}", s.label(), r.fingerprint))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn des_throughput_replay_reproduces_the_full_summary() {
    let a = des_throughput_run(Strategy::RecShard);
    let b = des_throughput_run(Strategy::RecShard);
    assert_eq!(a, b, "identical seeds must reproduce identical summaries");
}

#[test]
fn solver_scaling_fingerprint_is_bit_for_bit_stable() {
    let report = run_sweep(&SolverBenchConfig::tiny());
    assert_eq!(report.points.len(), SOLVER_SCALING_PLAN_GOLDEN.len());
    for (p, &golden) in report.points.iter().zip(&SOLVER_SCALING_PLAN_GOLDEN) {
        assert_eq!(
            p.scalable_plan_fingerprint,
            golden,
            "{} tables x {} GPUs: scalable plan drifted (actual {:#018x}, golden {:#018x}); \
             all actuals: {:?}",
            p.tables,
            p.gpus,
            p.scalable_plan_fingerprint,
            golden,
            report
                .points
                .iter()
                .map(|p| format!("{:#018x}", p.scalable_plan_fingerprint))
                .collect::<Vec<_>>()
        );
    }
    for (h, &golden) in report.hetero.iter().zip(&HETERO_SCALING_PLAN_GOLDEN) {
        assert!(
            h.scalable_vs_greedy < 1.0,
            "hetero point {} tables: class-aware must beat class-blind greedy (ratio {})",
            h.tables,
            h.scalable_vs_greedy
        );
        assert_eq!(
            h.scalable_plan_fingerprint,
            golden,
            "{} tables mixed cluster: hetero scalable plan drifted              (actual {:#018x}, golden {:#018x}); all actuals: {:?}",
            h.tables,
            h.scalable_plan_fingerprint,
            golden,
            report
                .hetero
                .iter()
                .map(|h| format!("{:#018x}", h.scalable_plan_fingerprint))
                .collect::<Vec<_>>()
        );
    }
    assert_eq!(
        report.fingerprint(),
        SOLVER_SCALING_GOLDEN,
        "solver_scaling JSON drifted (actual {:#018x}, golden {:#018x})",
        report.fingerprint(),
        SOLVER_SCALING_GOLDEN
    );
}

#[test]
fn solver_scaling_json_is_byte_identical_across_runs() {
    let cfg = SolverBenchConfig::tiny();
    let a = run_sweep(&cfg);
    let b = run_sweep(&cfg);
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "identical seeds must emit byte-identical BENCH_solver.json payloads"
    );
}

#[test]
fn fig13_des_backend_fingerprint_is_bit_for_bit_stable() {
    // Exactly the fig13_scaling DES-backend path at the tiny test scale:
    // analytical arrival calibration at 3x headroom, 50 iterations.
    let cfg = ExperimentConfig::tiny();
    let setup = cfg.setup(RmKind::Rm1);
    let plan = setup.plan(Strategy::RecShard);
    let interval = setup.arrival_interval_ms(&plan, 3.0);
    let summary = setup.des_summary(
        &plan,
        cfg.des_config(
            50,
            ArrivalProcess::FixedRate {
                interval_ms: interval,
            },
        ),
    );
    assert_eq!(summary.completed, 50);
    assert_eq!(
        summary.fingerprint, FIG13_DES_GOLDEN,
        "fig13 DES backend: fingerprint drifted (actual {:#018x}, golden {:#018x})",
        summary.fingerprint, FIG13_DES_GOLDEN
    );
}
