//! Temporal drift of sparse-feature statistics.
//!
//! Section 3.5 / Figure 9 of the paper shows that the average pooling factor
//! of both user and content features drifts over a 20-month window — user
//! features grow by up to ~10% while content features oscillate — which is
//! why re-sharding has to be re-evaluated as training data evolves.
//!
//! [`DriftModel`] reproduces that behaviour: it maps a month index to a
//! multiplicative adjustment of every feature's mean pooling factor, with the
//! two feature classes following different trajectories.

use crate::feature::FeatureClass;
use crate::model::ModelSpec;
use serde::{Deserialize, Serialize};

/// One point of the drift trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftPoint {
    /// Month index (0-based).
    pub month: u32,
    /// Percent change of the average pooling factor of user features
    /// relative to month 0.
    pub user_pct_change: f64,
    /// Percent change of the average pooling factor of content features
    /// relative to month 0.
    pub content_pct_change: f64,
}

/// Deterministic model of how per-class average pooling factors evolve over a
/// multi-month training window (Figure 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftModel {
    months: u32,
    user_growth_per_month: f64,
    content_amplitude: f64,
    content_period_months: f64,
}

impl Default for DriftModel {
    fn default() -> Self {
        Self::paper_like()
    }
}

impl DriftModel {
    /// A drift model shaped like Figure 9: user features grow roughly
    /// linearly to ~+10% over 20 months, content features oscillate within
    /// about ±5%.
    pub fn paper_like() -> Self {
        Self {
            months: 20,
            user_growth_per_month: 0.005,
            content_amplitude: 0.05,
            content_period_months: 9.0,
        }
    }

    /// A custom drift model.
    ///
    /// # Panics
    ///
    /// Panics if `months == 0` or `content_period_months <= 0`.
    pub fn new(
        months: u32,
        user_growth_per_month: f64,
        content_amplitude: f64,
        content_period_months: f64,
    ) -> Self {
        assert!(months > 0, "drift window must cover at least one month");
        assert!(
            content_period_months > 0.0,
            "oscillation period must be positive"
        );
        Self {
            months,
            user_growth_per_month,
            content_amplitude,
            content_period_months,
        }
    }

    /// Number of months covered by the model.
    pub fn months(&self) -> u32 {
        self.months
    }

    /// Multiplicative factor applied to the mean pooling of the given feature
    /// class at the given month (month 0 ⇒ 1.0).
    pub fn factor(&self, class: FeatureClass, month: u32) -> f64 {
        let m = month as f64;
        match class {
            FeatureClass::User => 1.0 + self.user_growth_per_month * m,
            FeatureClass::Content => {
                1.0 + self.content_amplitude
                    * (2.0 * std::f64::consts::PI * m / self.content_period_months).sin()
            }
        }
    }

    /// Percent change relative to month 0 for the given class and month.
    pub fn pct_change(&self, class: FeatureClass, month: u32) -> f64 {
        (self.factor(class, month) - 1.0) * 100.0
    }

    /// The full drift trajectory, one point per month (Figure 9's series).
    pub fn trajectory(&self) -> Vec<DriftPoint> {
        (0..=self.months)
            .map(|month| DriftPoint {
                month,
                user_pct_change: self.pct_change(FeatureClass::User, month),
                content_pct_change: self.pct_change(FeatureClass::Content, month),
            })
            .collect()
    }

    /// Returns a copy of `model` with every feature's pooling mean adjusted to
    /// the given month, e.g. to evaluate how stale a sharding plan becomes as
    /// the data distribution shifts.
    pub fn model_at_month(&self, model: &ModelSpec, month: u32) -> ModelSpec {
        let features = model
            .features()
            .iter()
            .map(|f| {
                let mut f = f.clone();
                f.pooling = f.pooling.with_mean_scaled(self.factor(f.class, month));
                f
            })
            .collect();
        ModelSpec::new(
            format!("{}@month{}", model.name(), month),
            model.kind(),
            features,
            model.batch_size(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_zero_is_identity() {
        let d = DriftModel::paper_like();
        assert_eq!(d.factor(FeatureClass::User, 0), 1.0);
        assert_eq!(d.factor(FeatureClass::Content, 0), 1.0);
    }

    #[test]
    fn user_features_grow_monotonically() {
        let d = DriftModel::paper_like();
        let mut prev = 0.0;
        for m in 0..=20 {
            let pct = d.pct_change(FeatureClass::User, m);
            assert!(pct >= prev);
            prev = pct;
        }
        // Roughly +10% at month 20, as in Figure 9.
        assert!((d.pct_change(FeatureClass::User, 20) - 10.0).abs() < 1.0);
    }

    #[test]
    fn content_features_oscillate_within_amplitude() {
        let d = DriftModel::paper_like();
        let mut saw_negative = false;
        for m in 0..=20 {
            let pct = d.pct_change(FeatureClass::Content, m);
            assert!(pct.abs() <= 5.0 + 1e-9);
            if pct < -0.5 {
                saw_negative = true;
            }
        }
        assert!(
            saw_negative,
            "content drift should dip below zero at some month"
        );
    }

    #[test]
    fn trajectory_has_one_point_per_month() {
        let d = DriftModel::paper_like();
        let t = d.trajectory();
        assert_eq!(t.len(), 21);
        assert_eq!(t[0].month, 0);
        assert_eq!(t[20].month, 20);
    }

    #[test]
    fn model_at_month_rescales_pooling() {
        let model = ModelSpec::small(6, 3);
        let d = DriftModel::paper_like();
        let drifted = d.model_at_month(&model, 20);
        for (orig, new) in model.features().iter().zip(drifted.features()) {
            let expected = d.factor(orig.class, 20);
            let ratio = new.avg_pooling() / orig.avg_pooling();
            // Constant(1)/OneHot poolings cannot shrink below 1 and round to integers.
            if orig.avg_pooling() > 1.5 {
                assert!(
                    (ratio - expected).abs() < 0.2,
                    "ratio {ratio} expected {expected}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "drift window must cover at least one month")]
    fn zero_month_window_rejected() {
        let _ = DriftModel::new(0, 0.01, 0.05, 9.0);
    }
}
