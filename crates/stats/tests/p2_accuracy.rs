//! Accuracy tests of the P² streaming quantile estimator against exact
//! sorted quantiles on seeded random streams.
//!
//! The DES trainer and the serving layer both quote p50/p95/p99 numbers
//! straight out of [`P2Quantile`]/[`StreamingCdf`], so the estimator's error
//! must be characterised, not assumed. These tests document the bounds the
//! workspace relies on, per distribution shape:
//!
//! | stream   | shape                         | documented bound            |
//! |----------|-------------------------------|-----------------------------|
//! | uniform  | flat on `[0, 10)`             | absolute error < 0.05 (0.5% of range) |
//! | Zipf     | discrete power law (s = 1.1)  | relative error < 10%        |
//! | bimodal  | 70/30 mix of two bands        | estimate lands in the correct band, < 5% relative within it |
//!
//! All streams are seeded (`StdRng`) and 50,000 observations long; the
//! estimator is additionally required to be insensitive to the arrival
//! order of an adversarially sorted stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recshard_stats::{P2Quantile, StreamingCdf};

const STREAM_LEN: usize = 50_000;
const QUANTILES: [f64; 3] = [0.50, 0.95, 0.99];

fn exact_quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

fn p2_estimate(values: &[f64], q: f64) -> f64 {
    let mut est = P2Quantile::new(q);
    for &v in values {
        est.push(v);
    }
    est.estimate().expect("non-empty stream")
}

fn uniform_stream(seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..STREAM_LEN).map(|_| rng.gen::<f64>() * 10.0).collect()
}

/// A discrete Zipf-like stream: ranks drawn by inverse-CDF over a harmonic
/// tail (s = 1.1, support 10,000) — the shape of per-row access counts and
/// of queueing delays on a skewed table.
fn zipf_stream(seed: u64) -> Vec<f64> {
    let s = 1.1f64;
    let n = 10_000usize;
    let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(n);
    let mut running = 0.0;
    for w in &weights {
        running += w / total;
        cumulative.push(running);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..STREAM_LEN)
        .map(|_| {
            let u: f64 = rng.gen();
            let rank = cumulative.partition_point(|&c| c < u);
            (rank + 1) as f64
        })
        .collect()
}

/// 70% of mass in `[0, 1)`, 30% in `[9, 10)` — a latency distribution with a
/// fast path and a slow path (e.g. HBM hits vs UVM misses).
fn bimodal_stream(seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..STREAM_LEN)
        .map(|_| {
            if rng.gen_bool(0.7) {
                rng.gen::<f64>()
            } else {
                9.0 + rng.gen::<f64>()
            }
        })
        .collect()
}

#[test]
fn p2_tracks_uniform_within_half_percent_of_range() {
    let values = uniform_stream(0xA11);
    for q in QUANTILES {
        let got = p2_estimate(&values, q);
        let want = exact_quantile(&values, q);
        assert!(
            (got - want).abs() < 0.05,
            "uniform q={q}: P² {got:.4} vs exact {want:.4}"
        );
    }
}

#[test]
fn p2_tracks_zipf_within_ten_percent() {
    let values = zipf_stream(0xB22);
    for q in QUANTILES {
        let got = p2_estimate(&values, q);
        let want = exact_quantile(&values, q);
        let rel = (got - want).abs() / want.max(1.0);
        assert!(
            rel < 0.10,
            "zipf q={q}: P² {got:.2} vs exact {want:.2} ({:.1}% off)",
            rel * 100.0
        );
    }
}

#[test]
fn p2_lands_in_the_correct_band_on_bimodal_streams() {
    let values = bimodal_stream(0xC33);
    // p50 sits in the fast band, p95/p99 in the slow band.
    let p50 = p2_estimate(&values, 0.50);
    assert!(
        (0.0..1.0).contains(&p50),
        "p50 {p50:.3} must land in the fast band"
    );
    for q in [0.95, 0.99] {
        let got = p2_estimate(&values, q);
        let want = exact_quantile(&values, q);
        assert!(
            (9.0..10.0).contains(&got),
            "q={q}: P² {got:.3} must land in the slow band"
        );
        assert!(
            (got - want).abs() / want < 0.05,
            "q={q}: P² {got:.3} vs exact {want:.3}"
        );
    }
}

#[test]
fn p2_is_insensitive_to_adversarial_arrival_order() {
    // The same multiset, delivered sorted ascending vs shuffled: estimates
    // must agree with the exact quantile within the uniform bound either
    // way (a naive reservoir would fail the sorted case badly).
    let shuffled = uniform_stream(0xD44);
    let mut sorted = shuffled.clone();
    sorted.sort_by(f64::total_cmp);
    for q in [0.5, 0.95] {
        let want = exact_quantile(&shuffled, q);
        for stream in [&shuffled, &sorted] {
            let got = p2_estimate(stream, q);
            assert!(
                (got - want).abs() < 0.1,
                "q={q}: P² {got:.4} vs exact {want:.4} on reordered stream"
            );
        }
    }
}

#[test]
fn streaming_cdf_matches_exact_quantiles_on_all_shapes() {
    for (name, values) in [
        ("uniform", uniform_stream(1)),
        ("zipf", zipf_stream(2)),
        ("bimodal", bimodal_stream(3)),
    ] {
        let mut cdf = StreamingCdf::latency_defaults();
        for &v in &values {
            cdf.push(v);
        }
        assert_eq!(cdf.count(), STREAM_LEN as u64);
        // Monotone percentiles bounded by the exact extrema.
        assert!(cdf.p50() <= cdf.p95() && cdf.p95() <= cdf.p99(), "{name}");
        let summary = cdf.summary();
        assert!(
            summary.min <= cdf.p50() && cdf.p99() <= summary.max,
            "{name}"
        );
        // The aggregate view inherits the per-quantile bounds (loosest: 10%
        // relative, as documented above, with an absolute floor for the
        // near-zero uniform/bimodal medians).
        for q in QUANTILES {
            let got = cdf.quantile(q);
            let want = exact_quantile(&values, q);
            let err = (got - want).abs();
            assert!(
                err < 0.1 + want.abs() * 0.10,
                "{name} q={q}: StreamingCdf {got:.3} vs exact {want:.3}"
            );
        }
    }
}

#[test]
fn p2_error_shrinks_with_stream_length() {
    // The estimator converges: the error at 50k observations is no worse
    // than at 500 on the same generator (seeded identically).
    let values = uniform_stream(0xE55);
    let q = 0.95;
    let short_err = {
        let got = p2_estimate(&values[..500], q);
        (got - exact_quantile(&values[..500], q)).abs()
    };
    let long_err = {
        let got = p2_estimate(&values, q);
        (got - exact_quantile(&values, q)).abs()
    };
    assert!(
        long_err <= short_err + 0.01,
        "error grew with stream length: {short_err:.4} -> {long_err:.4}"
    );
}
