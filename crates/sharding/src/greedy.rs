//! The greedy baseline sharding heuristic (Section 5, Step II).
//!
//! After assigning each table a fixed cost, the production baseline sorts
//! tables by descending cost and assigns each one to the GPU with the lowest
//! accumulated cost so far, placing the *whole* table in that GPU's HBM while
//! it fits; once HBM is saturated the remaining tables are allocated wholly
//! in UVM (host DRAM).

use crate::cost::CostFunction;
use crate::error::ShardingError;
use crate::plan::{ShardingPlan, TablePlacement};
use crate::system::SystemSpec;
use recshard_data::ModelSpec;
use recshard_stats::DatasetProfile;

/// Greedy cost-ordered sharder parameterised by a [`CostFunction`].
#[derive(Debug, Clone, Copy)]
pub struct GreedySharder<C> {
    cost_fn: C,
}

impl<C: CostFunction> GreedySharder<C> {
    /// Creates a sharder with the given cost function.
    pub fn new(cost_fn: C) -> Self {
        Self { cost_fn }
    }

    /// Produces a sharding plan for `model` on `system` using the profiled
    /// statistics in `profile`.
    ///
    /// # Errors
    ///
    /// Returns [`ShardingError::ProfileMismatch`] if the profile does not
    /// cover the model, [`ShardingError::SystemTooSmall`] if the model cannot
    /// fit in the system at all, and [`ShardingError::CapacityExceeded`] if a
    /// single table cannot be placed anywhere.
    pub fn shard(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> Result<ShardingPlan, ShardingError> {
        if profile.num_features() != model.num_features() {
            return Err(ShardingError::ProfileMismatch(format!(
                "profile covers {} features but the model has {}",
                profile.num_features(),
                model.num_features()
            )));
        }
        if model.total_bytes() > system.total_capacity() {
            return Err(ShardingError::SystemTooSmall {
                required_bytes: model.total_bytes(),
                available_bytes: system.total_capacity(),
            });
        }

        // Step I: fixed per-table costs.
        let mut order: Vec<(usize, f64)> = model
            .features()
            .iter()
            .zip(profile.profiles())
            .map(|(spec, prof)| (spec.id.index(), self.cost_fn.cost(spec, prof)))
            .collect();
        // Descending cost, deterministic tie-break on feature id.
        order.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });

        // Step II: greedy assignment to the GPU with the lowest accumulated
        // cost that still has room. The accumulated cost is *class-blind*
        // (the production baselines predate heterogeneous fleets and charge
        // the same fixed table cost on every GPU); only the capacity checks
        // read per-GPU limits. The class-aware RecShard solvers exploit
        // exactly this blindness on mixed clusters (`hetero_scaling` bench).
        let m = system.num_gpus();
        let mut gpu_cost = vec![0.0f64; m];
        let mut hbm_free: Vec<u64> = (0..m).map(|g| system.hbm_capacity(g)).collect();
        let mut dram_free: Vec<u64> = (0..m).map(|g| system.dram_capacity(g)).collect();
        let mut placements: Vec<Option<TablePlacement>> = vec![None; model.num_features()];

        for (idx, cost) in order {
            let spec = &model.features()[idx];
            let bytes = spec.table_bytes();

            // GPUs ordered by accumulated cost (cheapest first).
            let mut gpus: Vec<usize> = (0..m).collect();
            gpus.sort_by(|&a, &b| {
                gpu_cost[a]
                    .partial_cmp(&gpu_cost[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });

            // Prefer placing the whole table in HBM on the cheapest GPU with room.
            let hbm_target = gpus.iter().copied().find(|&g| hbm_free[g] >= bytes);
            let placement = if let Some(g) = hbm_target {
                hbm_free[g] -= bytes;
                gpu_cost[g] += cost;
                TablePlacement {
                    table: spec.id,
                    gpu: g,
                    hbm_rows: spec.hash_size,
                    total_rows: spec.hash_size,
                    row_bytes: spec.row_bytes(),
                }
            } else {
                // HBM saturated for this table: allocate it wholly in UVM on
                // the cheapest GPU with DRAM room. UVM accesses are slow, so
                // the accumulated cost is scaled by the bandwidth ratio.
                let uvm_target = gpus.iter().copied().find(|&g| dram_free[g] >= bytes);
                let Some(g) = uvm_target else {
                    return Err(ShardingError::CapacityExceeded {
                        table: spec.id,
                        overflow_bytes: bytes,
                    });
                };
                dram_free[g] -= bytes;
                // Reference-class ratio, not the target GPU's: the baseline
                // stays class-blind in its cost accounting (identical on
                // uniform clusters, where there is only one class).
                gpu_cost[g] += cost * system.reference_class().bandwidth_ratio();
                TablePlacement {
                    table: spec.id,
                    gpu: g,
                    hbm_rows: 0,
                    total_rows: spec.hash_size,
                    row_bytes: spec.row_bytes(),
                }
            };
            placements[idx] = Some(placement);
        }

        let placements = placements
            .into_iter()
            .map(|p| p.expect("every table placed"))
            .collect();
        Ok(ShardingPlan::new(self.cost_fn.name(), m, placements))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LookupCost, SizeCost, SizeLookupCost};
    use recshard_data::ModelSpec;
    use recshard_stats::DatasetProfiler;

    fn setup(n: usize) -> (ModelSpec, recshard_stats::DatasetProfile) {
        let model = ModelSpec::small(n, 11);
        let profile = DatasetProfiler::profile_model(&model, 1_000, 7);
        (model, profile)
    }

    #[test]
    fn all_in_hbm_when_capacity_ample() {
        let (model, profile) = setup(10);
        let system = SystemSpec::uniform(4, model.total_bytes(), model.total_bytes(), 1555.0, 16.0);
        let plan = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        plan.validate(&model, &system).unwrap();
        assert_eq!(plan.total_uvm_rows(), 0);
        assert_eq!(plan.strategy(), "size");
    }

    #[test]
    fn spills_whole_tables_to_uvm_under_pressure() {
        let (model, profile) = setup(12);
        // HBM only fits about half the model.
        let per_gpu_hbm = model.total_bytes() / 8;
        let system = SystemSpec::uniform(4, per_gpu_hbm, model.total_bytes(), 1555.0, 16.0);
        let plan = GreedySharder::new(LookupCost)
            .shard(&model, &profile, &system)
            .unwrap();
        plan.validate(&model, &system).unwrap();
        assert!(plan.total_uvm_rows() > 0, "some tables must spill");
        // The baseline never splits a table: each table is fully in one tier.
        for p in plan.placements() {
            assert!(p.hbm_rows == 0 || p.hbm_rows == p.total_rows);
        }
    }

    #[test]
    fn load_is_spread_across_gpus() {
        let (model, profile) = setup(16);
        let system = SystemSpec::uniform(4, model.total_bytes(), model.total_bytes(), 1555.0, 16.0);
        let plan = GreedySharder::new(SizeLookupCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let mut counts = vec![0usize; 4];
        for p in plan.placements() {
            counts[p.gpu] += 1;
        }
        assert!(
            counts.iter().all(|&c| c >= 1),
            "every GPU should receive tables: {counts:?}"
        );
    }

    #[test]
    fn rejects_model_larger_than_system() {
        let (model, profile) = setup(6);
        let system = SystemSpec::uniform(2, 64, 64, 1555.0, 16.0);
        match GreedySharder::new(SizeCost).shard(&model, &profile, &system) {
            Err(ShardingError::SystemTooSmall { .. }) => {}
            other => panic!("expected SystemTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn rejects_mismatched_profile() {
        let (model, _) = setup(6);
        let other_profile = DatasetProfiler::profile_model(&ModelSpec::small(3, 1), 100, 1);
        let system = SystemSpec::uniform(2, u64::MAX / 4, u64::MAX / 4, 1555.0, 16.0);
        assert!(matches!(
            GreedySharder::new(SizeCost).shard(&model, &other_profile, &system),
            Err(ShardingError::ProfileMismatch(_))
        ));
    }

    #[test]
    fn deterministic_output() {
        let (model, profile) = setup(10);
        let system = SystemSpec::uniform(
            4,
            model.total_bytes() / 4,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let a = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let b = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_cost_functions_can_disagree() {
        let (model, profile) = setup(14);
        let system = SystemSpec::uniform(
            4,
            model.total_bytes() / 6,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let size = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let lookup = GreedySharder::new(LookupCost)
            .shard(&model, &profile, &system)
            .unwrap();
        // They may or may not differ on tiny models, but strategies must be labelled.
        assert_eq!(size.strategy(), "size");
        assert_eq!(lookup.strategy(), "lookup");
    }
}
