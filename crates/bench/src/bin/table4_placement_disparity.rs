//! Table 4: how RecShard's row placement differs from each baseline —
//! the fraction of rows a baseline put in UVM that RecShard promotes to HBM,
//! and vice versa (RM2 and RM3, which need UVM on 16 GPUs).

#![allow(clippy::print_stdout)]
use recshard::analysis::PlanComparison;
use recshard_bench::{compare_strategies, ExperimentConfig, Strategy};
use recshard_data::RmKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("# Table 4: placement disparity of RecShard vs the baselines");
    println!("| model | disparity | Size-Based | Lookup-Based | Size-Based-Lookup |");
    println!("|-------|-----------|------------|--------------|-------------------|");
    for kind in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
        let cmp = compare_strategies(kind, &cfg);
        let recshard_plan = &cmp.result(Strategy::RecShard).1;
        let baselines = [
            Strategy::SizeBased,
            Strategy::LookupBased,
            Strategy::SizeLookupBased,
        ];
        let comparisons: Vec<PlanComparison> = baselines
            .iter()
            .map(|&b| PlanComparison::between(recshard_plan, &cmp.result(b).1))
            .collect();
        let uses_uvm = cmp.results.iter().any(|(_, p, _)| p.total_uvm_rows() > 0);
        if !uses_uvm {
            println!("| {kind} | UVM->HBM | N/A | N/A | N/A |");
            println!("| {kind} | HBM->UVM | N/A | N/A | N/A |");
            continue;
        }
        println!(
            "| {kind} | UVM->HBM | {:.2}% | {:.2}% | {:.2}% |",
            comparisons[0].uvm_to_hbm * 100.0,
            comparisons[1].uvm_to_hbm * 100.0,
            comparisons[2].uvm_to_hbm * 100.0
        );
        println!(
            "| {kind} | HBM->UVM | {:.2}% | {:.2}% | {:.2}% |",
            comparisons[0].hbm_to_uvm * 100.0,
            comparisons[1].hbm_to_uvm * 100.0,
            comparisons[2].hbm_to_uvm * 100.0
        );
    }
    println!();
    println!(
        "Paper reference (RM2): RecShard promotes ~28% of the rows the baselines leave in UVM \
         and demotes ~40% of the rows they keep in HBM; RM1 needs no UVM at all (N/A rows)."
    );
}
