//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest's API the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! range and [`collection::vec`] strategies, [`any`], and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream are intentional and small:
//!
//! * inputs are drawn from a generator seeded by the test's name, so runs are
//!   fully deterministic (upstream persists failing seeds instead), and
//! * there is no shrinking — a failing case reports the assertion directly.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (subset of proptest's).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u64, u32, u16, u8, usize, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Numeric strategies (subset of `proptest::num`).
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Full-bit-domain `f64` strategy: unlike upstream (which composes
        /// value classes), this draws a uniform bit pattern, so normals,
        /// subnormals, zeros, infinities and NaNs all occur.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Strategy producing any `f64` bit pattern.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut StdRng) -> f64 {
                f64::from_bits(rng.gen::<u64>())
            }
        }
    }
}

/// Types with a canonical full-domain strategy (subset of proptest's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

/// The full-domain strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy covering a type's full domain, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// The number of elements a [`vec`] strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range must be non-empty");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a strategy producing vectors of `element`-strategy values with a
    /// length in `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Support machinery used by the [`proptest!`] expansion (not part of the
/// public proptest API surface).
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds the deterministic per-test generator (FNV-1a over the name).
    pub fn new_rng(test_name: &str) -> StdRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` runs
/// `body` for every drawn input tuple.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::new_rng(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test (maps to [`assert!`]).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test (maps to [`assert_eq!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Mirrors the `prop` module alias from proptest's prelude.
    pub mod prop {
        pub use crate::{collection, num};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3u64..10, y in 0.5f64..1.5, z in 1usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&y));
            prop_assert!((1..4).contains(&z));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn nested_vec_and_exact_size(m in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 3), 1..4)) {
            prop_assert!(!m.is_empty() && m.len() < 4);
            for row in &m {
                prop_assert_eq!(row.len(), 3);
            }
        }

        #[test]
        fn any_u64_works(x in any::<u64>()) {
            let _ = x;
        }

        #[test]
        fn tuple_strategies_draw_componentwise(pair in (0u64..4, 10u64..14)) {
            prop_assert!((0..4).contains(&pair.0));
            prop_assert!((10..14).contains(&pair.1));
        }

        #[test]
        fn full_domain_f64_is_drawable(x in prop::num::f64::ANY) {
            // Any bit pattern is legal; the strategy must simply produce one.
            let _ = x.to_bits();
        }
    }

    #[test]
    fn deterministic_rng_per_test_name() {
        use rand::Rng;
        let mut a = crate::test_runner::new_rng("alpha");
        let mut b = crate::test_runner::new_rng("alpha");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = crate::test_runner::new_rng("beta");
        assert_ne!(
            crate::test_runner::new_rng("alpha").gen::<u64>(),
            c.gen::<u64>()
        );
    }
}
