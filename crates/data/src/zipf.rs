//! Zipf (power-law) sampling over categorical value spaces.
//!
//! Section 3.1 of the paper observes that the vast majority of sparse features
//! have value frequency distributions that follow a power law with a
//! per-feature strength. The [`Zipf`] sampler draws categorical value ranks
//! from a Zipf distribution with configurable exponent and support size using
//! rejection-inversion sampling (Hörmann & Derflinger), which is `O(1)` per
//! sample even for supports in the hundreds of millions.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Zipf distribution over ranks `1..=n` with exponent `s >= 0`.
///
/// `s == 0` degenerates to the uniform distribution over `1..=n`; larger `s`
/// concentrates mass on the low ranks. Sampled ranks are returned 0-based
/// (`0..n`) for convenient use as categorical value identifiers.
///
/// ```
/// use recshard_data::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(1_000_000, 1.1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let v = zipf.sample(&mut rng);
/// assert!(v < 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants for rejection-inversion sampling.
    h_x1: f64,
    h_n: f64,
    dense_threshold: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` categories with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `s < 0` or `s` is not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "support size must be non-zero");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and non-negative"
        );
        let h_x1 = Self::h_static(1.5, s) - 1.0;
        let h_n = Self::h_static(n as f64 + 0.5, s);
        let dense_threshold =
            2.0 - Self::h_inv_static(Self::h_static(2.5, s) - Self::pow_neg(2.0, s), s);
        Self {
            n,
            s,
            h_x1,
            h_n,
            dense_threshold,
        }
    }

    /// The number of categories in the support.
    pub fn support(&self) -> u64 {
        self.n
    }

    /// The Zipf exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    #[inline]
    fn pow_neg(x: f64, s: f64) -> f64 {
        (-s * x.ln()).exp()
    }

    /// H(x) = ((x)^(1-s) - 1) / (1 - s), with the s->1 limit ln(x).
    #[inline]
    fn h_static(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    }

    #[inline]
    fn h_inv_static(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + (1.0 - s) * x).powf(1.0 / (1.0 - s))
        }
    }

    /// Draws one 0-based categorical value, with rank 0 being the most likely.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.s == 0.0 {
            return rng.gen_range(0..self.n);
        }
        // Rejection-inversion sampling (Hörmann & Derflinger 1996).
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = Self::h_inv_static(u, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.dense_threshold
                || u >= Self::h_static(k + 0.5, self.s) - Self::pow_neg(k, self.s)
            {
                return k as u64 - 1;
            }
        }
    }

    /// Draws `count` 0-based categorical values.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Exact probability mass of the 0-based rank `k` (expensive for large
    /// `n` on first use: requires the harmonic normalizer).
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k < self.n, "rank out of support");
        let z: f64 = (1..=self.n).map(|i| 1.0 / (i as f64).powf(self.s)).sum();
        (1.0 / ((k + 1) as f64).powf(self.s)) / z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn seeded() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn samples_within_support() {
        let zipf = Zipf::new(1000, 1.2);
        let mut rng = seeded();
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let zipf = Zipf::new(100, 0.0);
        let mut rng = seeded();
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(
            max / min < 1.5,
            "uniform sampling should be flat, got {min}..{max}"
        );
    }

    #[test]
    fn skew_concentrates_head() {
        let zipf = Zipf::new(1_000_000, 1.1);
        let mut rng = seeded();
        let samples = zipf.sample_many(&mut rng, 50_000);
        let head = samples.iter().filter(|&&v| v < 100).count() as f64 / samples.len() as f64;
        // With s=1.1 and n=1e6 the top-100 ranks carry well over a third of the mass.
        assert!(head > 0.3, "head mass too small: {head}");
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let mut rng = seeded();
        let weak = Zipf::new(100_000, 0.6);
        let strong = Zipf::new(100_000, 1.4);
        let head_mass = |z: &Zipf, rng: &mut rand::rngs::StdRng| {
            let s = z.sample_many(rng, 20_000);
            s.iter().filter(|&&v| v < 10).count() as f64 / s.len() as f64
        };
        let weak_head = head_mass(&weak, &mut rng);
        let strong_head = head_mass(&strong, &mut rng);
        assert!(strong_head > weak_head);
    }

    #[test]
    fn pmf_sums_to_one_small_support() {
        let zipf = Zipf::new(50, 0.9);
        let total: f64 = (0..50).map(|k| zipf.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_matches_pmf_for_head() {
        let zipf = Zipf::new(1_000, 1.0);
        let mut rng = seeded();
        let n = 200_000;
        let samples = zipf.sample_many(&mut rng, n);
        for k in 0..5u64 {
            let expected = zipf.pmf(k);
            let got = samples.iter().filter(|&&v| v == k).count() as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01 + expected * 0.15,
                "rank {k}: expected {expected}, got {got}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "support size must be non-zero")]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn exponent_one_exact_limit_handling() {
        // s = 1.0 exercises the logarithmic branch of H.
        let zipf = Zipf::new(10_000, 1.0);
        let mut rng = seeded();
        for _ in 0..5000 {
            assert!(zipf.sample(&mut rng) < 10_000);
        }
    }
}
