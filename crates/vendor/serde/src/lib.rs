//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no crates.io access. The workspace only *derives*
//! `Serialize`/`Deserialize` (marking types as serialization-ready); nothing
//! serializes data yet, so the derives are no-ops from
//! [`serde_derive`](../serde_derive/index.html) and no trait machinery is
//! needed. Swapping in the real serde later requires no source changes in the
//! dependent crates.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
