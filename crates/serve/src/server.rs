//! The concurrent inference server.
//!
//! [`InferenceServer::run`] serves a seeded [`RequestStream`] with one
//! worker thread per GPU shard. Each worker owns its shard's slice of every
//! query (the tables the plan routed to that GPU), drives the shard's
//! [`ShardedCache`], and advances a per-shard virtual clock: lookups served
//! from HBM cost HBM bandwidth, misses cost UVM bandwidth plus a per-row
//! fetch latency, and requests queue FIFO behind the shard when they arrive
//! faster than it drains — the open-loop behaviour that makes a poorly
//! balanced placement's p99 diverge.
//!
//! A query completes when its slowest shard finishes (fan-out/fan-in), so
//! per-query latency is `max` over shard completions minus the arrival time.
//! Measured latencies stream into a constant-space P² CDF
//! ([`StreamingCdf`](recshard_stats::StreamingCdf)) exactly as the
//! discrete-event trainer reports its sojourn times.
//!
//! Determinism: the stream is seeded, each worker processes its tasks in
//! query order against state only it mutates, and the merge is a pure fold —
//! so wall-clock scheduling of the threads cannot change any reported
//! number, and reports carry a fingerprint to prove it.

use crate::cache::{CacheConfig, CacheStats, Lookup, ShardedCache};
use crate::policy::{PolicyKind, StatGuide, StatGuidedConfig};
use crate::report::ServeReport;
use crate::request::{ArrivalModel, RequestStream, ShardTask};
use recshard_data::{ModelSpec, ScenarioSpec};
use recshard_obs::{Collector, MetricsRegistry, ObsBundle, ObsSink, TraceBuffer, TraceEvent};
use recshard_sharding::{ShardingPlan, SystemSpec};
use recshard_stats::DatasetProfile;
use serde::{Deserialize, Serialize};

/// Configuration of a serving run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Measured queries.
    pub queries: u32,
    /// Warmup queries served first and excluded from every measured number
    /// (gives recency/frequency policies a filled cache to be judged on).
    pub warmup: u32,
    /// Samples per query.
    pub batch_size: usize,
    /// Master seed; the request stream and arrivals derive from it.
    pub seed: u64,
    /// How queries arrive (open loop).
    pub arrival: ArrivalModel,
    /// The cache policy every shard runs.
    pub policy: PolicyKind,
    /// Tunables of the stat-guided policy (ignored by LRU/LFU).
    pub stat_guided: StatGuidedConfig,
    /// HBM cache bytes per shard; defaults to the system's per-GPU HBM.
    pub capacity_per_shard: Option<u64>,
    /// Lock stripes per shard cache.
    pub stripes: usize,
    /// Fixed overhead per distinct table touched by a query on a shard, in
    /// nanoseconds (kernel launch + pooling, as in the training simulators).
    pub table_overhead_ns: u64,
    /// Extra latency per row fetched from UVM, in nanoseconds (page-fault /
    /// random-access cost on top of the bandwidth term).
    pub miss_latency_ns: u64,
    /// One-way network hop latency for fan-in from a shard on a *different
    /// node* than the front-end, in nanoseconds. Only exercised when the plan
    /// carries a multi-node topology (the front-end sits on node 0); flat
    /// plans and the default of 0 reproduce the single-host behaviour
    /// exactly.
    pub internode_hop_ns: u64,
}

impl ServeConfig {
    /// Prices the remote fan-in hop off a shared
    /// [`FabricSpec`](recshard_sharding::FabricSpec): one response of
    /// `response_bytes` crossing the inter-node fabric costs its base
    /// latency plus the serialisation time at the fabric rate — the same
    /// per-byte rate the training simulators charge for inter-node
    /// transfers, so serving and training price the fabric identically.
    pub fn with_fabric(
        mut self,
        fabric: recshard_sharding::FabricSpec,
        response_bytes: f64,
    ) -> Self {
        self.internode_hop_ns = fabric.hop_ns(response_bytes);
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queries: 2_000,
            warmup: 500,
            batch_size: 8,
            seed: 0x5E21,
            arrival: ArrivalModel::FixedRate { interval_us: 200.0 },
            policy: PolicyKind::Lru,
            stat_guided: StatGuidedConfig::default(),
            capacity_per_shard: None,
            stripes: 8,
            table_overhead_ns: 2_000,
            miss_latency_ns: 1_000,
            internode_hop_ns: 0,
        }
    }
}

/// Per-worker results returned from a shard thread.
struct ShardRun {
    /// `(query, completion_ns)` in query order.
    completions: Vec<(u32, u64)>,
    /// Measured lookup outcomes.
    hits: u64,
    misses: u64,
    bypasses: u64,
    /// Total busy nanoseconds (warmup included).
    busy_ns: u64,
    /// Trace records of this shard's serving loop (traced runs only).
    trace: Option<TraceBuffer>,
}

/// The online embedding-lookup service.
///
/// ```
/// use recshard_data::ModelSpec;
/// use recshard_serve::{hash_placement, InferenceServer, PolicyKind, ServeConfig};
/// use recshard_sharding::SystemSpec;
/// use recshard_stats::DatasetProfiler;
///
/// let model = ModelSpec::small(6, 3);
/// let profile = DatasetProfiler::profile_model(&model, 1_000, 7);
/// let system = SystemSpec::uniform(2, 1 << 14, 1 << 30, 1555.0, 16.0);
/// let plan = hash_placement(&model, 2);
/// let config = ServeConfig {
///     queries: 200,
///     warmup: 50,
///     policy: PolicyKind::Lru,
///     ..ServeConfig::default()
/// };
/// let report = InferenceServer::run(&model, &plan, &profile, &system, config);
/// assert_eq!(report.queries, 200);
/// assert!(report.p50_ms <= report.p99_ms);
/// ```
#[derive(Debug)]
pub struct InferenceServer;

impl InferenceServer {
    /// Serves the seeded stream and returns the measured report.
    ///
    /// # Panics
    ///
    /// Panics if the plan and system disagree on the shard count, or the
    /// configuration requests zero queries or an empty batch.
    pub fn run(
        model: &ModelSpec,
        plan: &ShardingPlan,
        profile: &DatasetProfile,
        system: &SystemSpec,
        config: ServeConfig,
    ) -> ServeReport {
        Self::run_impl(model, plan, profile, system, config, None, None)
    }

    /// Like [`run`](Self::run), but serving a scenario-modulated stream:
    /// arrival gaps follow the spec's rate curves and distribution shifts
    /// re-derive the sampled traffic mid-run
    /// (see [`RequestStream::generate_scenario`]). A stationary scenario
    /// reproduces [`run`](Self::run) bit-for-bit.
    ///
    /// # Panics
    ///
    /// As [`run`](Self::run), plus if the spec fails
    /// [`ScenarioSpec::validate`].
    pub fn run_scenario(
        model: &ModelSpec,
        plan: &ShardingPlan,
        profile: &DatasetProfile,
        system: &SystemSpec,
        config: ServeConfig,
        scenario: &ScenarioSpec,
    ) -> ServeReport {
        Self::run_impl(model, plan, profile, system, config, Some(scenario), None)
    }

    /// [`run_scenario`](Self::run_scenario) with observation: the bundle
    /// additionally carries one `scenario_phase` trace event per rate-curve
    /// boundary crossed, plus `scenario.*` metrics. The report is identical
    /// to the untraced [`run_scenario`](Self::run_scenario).
    ///
    /// # Panics
    ///
    /// As [`run_scenario`](Self::run_scenario).
    pub fn run_scenario_traced(
        model: &ModelSpec,
        plan: &ShardingPlan,
        profile: &DatasetProfile,
        system: &SystemSpec,
        config: ServeConfig,
        scenario: &ScenarioSpec,
    ) -> (ServeReport, ObsBundle) {
        let mut collector = Collector::new();
        let report = Self::run_impl(
            model,
            plan,
            profile,
            system,
            config,
            Some(scenario),
            Some(&mut collector),
        );
        (report, collector.finish())
    }

    /// Like [`run`](Self::run), additionally collecting a structured trace
    /// (per-task `query_served` spans, per-query `query_latency` instants,
    /// per-shard end-state `cache_shard` records) and a metrics snapshot.
    /// The report is identical to the untraced [`run`](Self::run) —
    /// observation never perturbs the measured numbers.
    ///
    /// # Panics
    ///
    /// As [`run`](Self::run).
    pub fn run_traced(
        model: &ModelSpec,
        plan: &ShardingPlan,
        profile: &DatasetProfile,
        system: &SystemSpec,
        config: ServeConfig,
    ) -> (ServeReport, ObsBundle) {
        let mut collector = Collector::new();
        let report = Self::run_impl(
            model,
            plan,
            profile,
            system,
            config,
            None,
            Some(&mut collector),
        );
        (report, collector.finish())
    }

    fn run_impl(
        model: &ModelSpec,
        plan: &ShardingPlan,
        profile: &DatasetProfile,
        system: &SystemSpec,
        config: ServeConfig,
        scenario: Option<&ScenarioSpec>,
        mut obs: Option<&mut Collector>,
    ) -> ServeReport {
        assert!(config.queries > 0, "must serve at least one query");
        assert_eq!(
            plan.num_gpus(),
            system.num_gpus(),
            "plan/system shard count mismatch"
        );
        let shards = plan.num_gpus();
        let gpu_of = plan.gpu_assignments();
        // Each shard's HBM cache is sized to *its* GPU's HBM (per device
        // class); an explicit `capacity_per_shard` overrides every shard.
        let capacity_of: Vec<u64> = (0..shards)
            .map(|gpu| {
                config
                    .capacity_per_shard
                    .unwrap_or_else(|| system.hbm_capacity(gpu))
            })
            .collect();

        let caches: Vec<ShardedCache> = (0..shards)
            .map(|gpu| {
                let capacity = capacity_of[gpu];
                let cache_config = CacheConfig::new(capacity).with_stripes(config.stripes);
                match config.policy {
                    PolicyKind::Lru | PolicyKind::Lfu => {
                        ShardedCache::new(config.policy, cache_config)
                    }
                    PolicyKind::StatGuided => ShardedCache::with_guide(
                        StatGuide::for_gpu(gpu, &gpu_of, profile, capacity, &config.stat_guided),
                        cache_config,
                    ),
                }
            })
            .collect();

        let total_queries = config.warmup + config.queries;
        let stream = match scenario {
            None => RequestStream::generate(
                model,
                &gpu_of,
                shards,
                total_queries,
                config.batch_size,
                config.arrival,
                config.seed,
            ),
            Some(spec) => {
                let (stream, phase_changes) = RequestStream::generate_scenario(
                    model,
                    &gpu_of,
                    shards,
                    total_queries,
                    config.batch_size,
                    config.arrival,
                    config.seed,
                    spec,
                );
                if let Some(c) = obs.as_deref_mut() {
                    for pc in &phase_changes {
                        c.record(
                            pc.at_ns,
                            TraceEvent::ScenarioPhase {
                                phase: pc.phase,
                                rate_multiplier: pc.rate_multiplier,
                                shifts_applied: pc.shifts_applied,
                            },
                        );
                    }
                }
                stream
            }
        };
        let row_bytes: Vec<u64> = model.features().iter().map(|f| f.row_bytes()).collect();

        // Shards on nodes other than the front-end's (node 0) pay one
        // network hop on fan-in; flat plans put every shard on node 0.
        let topology = plan.effective_topology();
        let hop_of: Vec<u64> = (0..shards)
            .map(|gpu| {
                if topology.node_of_gpu(gpu) == 0 {
                    0
                } else {
                    config.internode_hop_ns
                }
            })
            .collect();

        // One worker thread per GPU shard; each mutates only its own cache
        // and clock, so the merged result is schedule-independent. Traced
        // runs buffer per-shard records privately and merge them in shard
        // order afterwards, keeping the trace deterministic too.
        let traced = obs.is_some();
        let mut runs: Vec<ShardRun> = Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            let handles: Vec<_> = stream
                .shard_tasks
                .iter()
                .zip(&caches)
                .zip(&hop_of)
                .enumerate()
                .map(|(gpu, ((tasks, cache), &hop_ns))| {
                    let arrivals = &stream.arrivals_ns;
                    let row_bytes = &row_bytes;
                    // recshard-lint: allow(thread-fanin) -- workers share no
                    // mutable state and are joined in shard-index order below.
                    scope.spawn(move || {
                        Self::run_shard(
                            tasks, cache, arrivals, row_bytes, system, gpu, &config, hop_ns, traced,
                        )
                    })
                })
                .collect();
            for h in handles {
                // recshard-lint: allow(unwrap) -- a panicked worker already
                // aborted the simulation; propagating it is the only option.
                runs.push(h.join().expect("shard worker panicked"));
            }
        });

        let reported_capacity = capacity_of.iter().copied().max().unwrap_or(0);
        Self::merge(
            plan,
            &stream,
            &caches,
            runs,
            reported_capacity,
            &config,
            obs,
        )
    }

    /// One shard's serving loop: FIFO virtual-time queueing over its tasks.
    /// `hop_ns` delays each completion on the fan-in path (remote-node
    /// shards) without occupying the shard itself. Lookup service times use
    /// *this shard's* GPU bandwidths (its device class on a heterogeneous
    /// cluster).
    #[allow(clippy::too_many_arguments)]
    fn run_shard(
        tasks: &[ShardTask],
        cache: &ShardedCache,
        arrivals_ns: &[u64],
        row_bytes: &[u64],
        system: &SystemSpec,
        gpu: usize,
        config: &ServeConfig,
        hop_ns: u64,
        traced: bool,
    ) -> ShardRun {
        let mut trace = traced.then(|| TraceBuffer::new(gpu as u32));
        let hbm_ns_per_byte = 1e9 / (system.hbm_bandwidth_gbps(gpu) * 1e9);
        let uvm_ns_per_byte = 1e9 / (system.uvm_bandwidth_gbps(gpu) * 1e9);
        // Scratch for counting distinct tables without a per-task set.
        let mut touched_epoch = vec![0u32; row_bytes.len()];
        let mut epoch = 0u32;

        let mut free_at = 0u64;
        let mut completions = Vec::with_capacity(tasks.len());
        let (mut hits, mut misses, mut bypasses, mut busy_ns) = (0u64, 0u64, 0u64, 0u64);
        for task in tasks {
            epoch += 1;
            let mut hbm_bytes = 0u64;
            let mut uvm_bytes = 0u64;
            let mut uvm_rows = 0u64;
            let mut tables = 0u64;
            let (mut h, mut m, mut b) = (0u64, 0u64, 0u64);
            for &(table, row) in &task.lookups {
                let bytes = row_bytes[table as usize];
                if touched_epoch[table as usize] != epoch {
                    touched_epoch[table as usize] = epoch;
                    tables += 1;
                }
                match cache.access(table, row, bytes) {
                    Lookup::Hit => {
                        hbm_bytes += bytes;
                        h += 1;
                    }
                    Lookup::MissInserted => {
                        uvm_bytes += bytes;
                        uvm_rows += 1;
                        m += 1;
                    }
                    Lookup::MissBypassed => {
                        uvm_bytes += bytes;
                        uvm_rows += 1;
                        b += 1;
                    }
                }
            }
            let service_ns = (hbm_bytes as f64 * hbm_ns_per_byte
                + uvm_bytes as f64 * uvm_ns_per_byte)
                .round() as u64
                + tables * config.table_overhead_ns
                + uvm_rows * config.miss_latency_ns;
            let arrival_ns = arrivals_ns[task.query as usize];
            let start = free_at.max(arrival_ns);
            let done = start + service_ns;
            free_at = done;
            busy_ns += service_ns;
            if task.query >= config.warmup {
                hits += h;
                misses += m;
                bypasses += b;
            }
            if let Some(trace) = &mut trace {
                trace.record(
                    arrival_ns,
                    TraceEvent::QueryServed {
                        shard: gpu as u32,
                        query: task.query as u64,
                        start_ns: start,
                        service_ns,
                        wait_ns: start - arrival_ns,
                        hits: h,
                        misses: m,
                        bypasses: b,
                    },
                );
            }
            completions.push((task.query, done + hop_ns));
        }
        if let Some(trace) = &mut trace {
            let stats = cache.stats();
            trace.record(
                free_at,
                TraceEvent::CacheShard {
                    shard: gpu as u32,
                    hits: stats.hits,
                    misses: stats.misses,
                    bypasses: stats.bypasses,
                    evictions: stats.evictions,
                    used_bytes: stats.used_bytes,
                    pinned_bytes: stats.pinned_bytes,
                },
            );
        }
        ShardRun {
            completions,
            hits,
            misses,
            bypasses,
            busy_ns,
            trace,
        }
    }

    /// Fan-in: per-query latency, CDFs, hit rates, fingerprint.
    ///
    /// Latency quantiles live in a [`MetricsRegistry`] (`serve.latency_ms`)
    /// rather than a hand-rolled CDF; traced runs share the collector's
    /// registry (events routed through it push the very same sink), so the
    /// exported snapshot and the report agree by construction.
    fn merge(
        plan: &ShardingPlan,
        stream: &RequestStream,
        caches: &[ShardedCache],
        mut runs: Vec<ShardRun>,
        capacity: u64,
        config: &ServeConfig,
        mut obs: Option<&mut Collector>,
    ) -> ServeReport {
        let total_queries = (config.warmup + config.queries) as usize;
        let mut done_ns = vec![0u64; total_queries];
        let mut makespan_ns = 0u64;
        for run in &runs {
            for &(q, done) in &run.completions {
                let slot = &mut done_ns[q as usize];
                *slot = (*slot).max(done);
                makespan_ns = makespan_ns.max(done);
            }
        }
        // Shard-order ingestion keeps quantile push order deterministic.
        if let Some(c) = obs.as_deref_mut() {
            for run in &mut runs {
                if let Some(buffer) = run.trace.take() {
                    c.ingest_buffer(buffer);
                }
            }
        }

        let mut own_registry = MetricsRegistry::new();
        let latency_q = own_registry.quantile("serve.latency_ms");
        let mut fingerprint: u64 = 0xCBF2_9CE4_8422_2325;
        let mut fold = |word: u64| {
            fingerprint ^= word;
            fingerprint = fingerprint.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for q in config.warmup as usize..total_queries {
            let latency_ns = done_ns[q].saturating_sub(stream.arrivals_ns[q]);
            match obs.as_deref_mut() {
                // The collector routes the event into its own
                // `serve.latency_ms` quantile — exactly one push per
                // measured query either way, in query order.
                Some(c) => c.record(
                    done_ns[q],
                    TraceEvent::QueryLatency {
                        query: q as u64,
                        latency_ns,
                    },
                ),
                None => own_registry.record(latency_q, latency_ns as f64 / 1e6),
            }
            fold(q as u64);
            fold(latency_ns);
        }
        let latency_stats = match obs {
            Some(c) => {
                let q = c.registry_mut().quantile("serve.latency_ms");
                c.registry().quantile_stats(q)
            }
            None => own_registry.quantile_stats(latency_q),
        };
        let (hits, misses, bypasses) = runs.iter().fold((0, 0, 0), |(h, m, b), r| {
            (h + r.hits, m + r.misses, b + r.bypasses)
        });
        for word in [hits, misses, bypasses] {
            fold(word);
        }

        let lookups = (hits + misses + bypasses).max(1);
        let mut cache_stats = CacheStats::default();
        for c in caches {
            cache_stats.merge(&c.stats());
        }
        ServeReport {
            placement: plan.strategy().to_string(),
            policy: config.policy,
            shards: plan.num_gpus(),
            queries: config.queries,
            warmup: config.warmup,
            batch_size: config.batch_size,
            capacity_per_shard_bytes: capacity,
            hits,
            misses,
            bypasses,
            hit_rate: hits as f64 / lookups as f64,
            per_shard_hit_rate: runs
                .iter()
                .map(|r| {
                    let total = r.hits + r.misses + r.bypasses;
                    if total == 0 {
                        0.0
                    } else {
                        r.hits as f64 / total as f64
                    }
                })
                .collect(),
            busy_fraction: runs
                .iter()
                .map(|r| r.busy_ns as f64 / makespan_ns.max(1) as f64)
                .collect(),
            p50_ms: latency_stats.p50,
            p95_ms: latency_stats.p95,
            p99_ms: latency_stats.p99,
            latency: latency_stats.summary,
            makespan_ms: makespan_ns as f64 / 1e6,
            throughput_qps: if makespan_ns > 0 {
                total_queries as f64 / (makespan_ns as f64 / 1e9)
            } else {
                0.0
            },
            cache: cache_stats,
            fingerprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::hash_placement;
    use recshard_stats::DatasetProfiler;

    fn setup() -> (ModelSpec, DatasetProfile, SystemSpec) {
        let model = ModelSpec::small(8, 5);
        let profile = DatasetProfiler::profile_model(&model, 2_000, 3);
        // A cache that holds ~1/8 of the model per shard.
        let system = SystemSpec::uniform(
            2,
            (model.total_bytes() / 16).max(1),
            model.total_bytes(),
            1555.0,
            16.0,
        );
        (model, profile, system)
    }

    fn config(policy: PolicyKind) -> ServeConfig {
        ServeConfig {
            queries: 400,
            warmup: 100,
            batch_size: 4,
            policy,
            arrival: ArrivalModel::FixedRate { interval_us: 50.0 },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn identical_seeds_reproduce_identical_reports() {
        let (model, profile, system) = setup();
        let plan = hash_placement(&model, 2);
        let run = |seed| {
            InferenceServer::run(
                &model,
                &plan,
                &profile,
                &system,
                ServeConfig {
                    seed,
                    ..config(PolicyKind::StatGuided)
                },
            )
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a, b, "same seed must reproduce the identical report");
        let c = run(10);
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn traced_run_matches_untraced_report() {
        let (model, profile, system) = setup();
        let plan = hash_placement(&model, 2);
        let cfg = config(PolicyKind::StatGuided);
        let plain = InferenceServer::run(&model, &plan, &profile, &system, cfg);
        let (traced, bundle) = InferenceServer::run_traced(&model, &plan, &profile, &system, cfg);
        assert_eq!(plain, traced, "tracing must not perturb the report");
        // At least one query_served span per measured query, one
        // query_latency instant each, and one cache_shard record per shard.
        assert!(bundle.trace.len() as u32 >= 2 * cfg.queries + 2);
        let latency = bundle
            .metrics
            .entries
            .iter()
            .find(|(n, _)| n == "serve.latency_ms")
            .map(|(_, v)| v.clone());
        match latency {
            Some(recshard_obs::MetricValue::Quantile(q)) => {
                assert_eq!(q.count, cfg.queries as u64);
                assert_eq!(q.p50, traced.p50_ms, "snapshot and report must agree");
                assert_eq!(q.summary, traced.latency);
            }
            other => panic!("expected serve.latency_ms quantile, got {other:?}"),
        }
    }

    #[test]
    fn percentiles_are_ordered_and_counts_conserve() {
        let (model, profile, system) = setup();
        let plan = hash_placement(&model, 2);
        for policy in PolicyKind::all() {
            let r = InferenceServer::run(&model, &plan, &profile, &system, config(policy));
            assert_eq!(r.queries, 400);
            assert!(r.p50_ms <= r.p95_ms && r.p95_ms <= r.p99_ms, "{policy}");
            assert!(r.latency.min <= r.p50_ms && r.p99_ms <= r.latency.max);
            assert!(r.hits + r.misses + r.bypasses > 0);
            assert!((0.0..=1.0).contains(&r.hit_rate));
            assert!(r.throughput_qps > 0.0);
            for &f in &r.busy_fraction {
                assert!((0.0..=1.0).contains(&f));
            }
        }
    }

    #[test]
    fn larger_cache_never_lowers_hit_rate() {
        let (model, profile, system) = setup();
        let plan = hash_placement(&model, 2);
        let mut prev = -1.0f64;
        for shift in [4u32, 2, 0] {
            let r = InferenceServer::run(
                &model,
                &plan,
                &profile,
                &system,
                ServeConfig {
                    capacity_per_shard: Some((model.total_bytes() >> shift).max(64)),
                    ..config(PolicyKind::Lru)
                },
            );
            assert!(
                r.hit_rate >= prev - 1e-9,
                "hit rate fell from {prev} to {} as capacity grew",
                r.hit_rate
            );
            prev = r.hit_rate;
        }
        // A cache holding the entire model misses each row at most once.
        assert!(prev > 0.5);
    }

    #[test]
    fn saturating_arrivals_inflate_tail_latency() {
        let (model, profile, system) = setup();
        let plan = hash_placement(&model, 2);
        let slow = InferenceServer::run(
            &model,
            &plan,
            &profile,
            &system,
            ServeConfig {
                arrival: ArrivalModel::FixedRate {
                    interval_us: 100_000.0,
                },
                ..config(PolicyKind::Lru)
            },
        );
        let fast = InferenceServer::run(
            &model,
            &plan,
            &profile,
            &system,
            ServeConfig {
                arrival: ArrivalModel::FixedRate { interval_us: 0.1 },
                ..config(PolicyKind::Lru)
            },
        );
        assert!(
            fast.p99_ms > slow.p99_ms * 5.0,
            "saturation must inflate p99 ({} vs {})",
            fast.p99_ms,
            slow.p99_ms
        );
    }

    #[test]
    fn remote_node_shards_pay_the_fan_in_hop() {
        use recshard_sharding::NodeTopology;
        let (model, profile, system) = setup();
        let plan = hash_placement(&model, 2);
        let base = config(PolicyKind::Lru);
        let flat = InferenceServer::run(&model, &plan, &profile, &system, base);
        // Same placement, but shard 1 now lives on a second node 50 µs away.
        let two_node = plan.clone().with_topology(NodeTopology::new(2, 1));
        let remote = InferenceServer::run(
            &model,
            &two_node,
            &profile,
            &system,
            ServeConfig {
                internode_hop_ns: 50_000,
                ..base
            },
        );
        assert!(
            remote.p50_ms > flat.p50_ms,
            "remote fan-in hop must inflate latency ({} vs {})",
            remote.p50_ms,
            flat.p50_ms
        );
        // Hop of zero reproduces the flat run bit-for-bit even with a
        // multi-node annotation.
        let same = InferenceServer::run(&model, &two_node, &profile, &system, base);
        assert_eq!(same.fingerprint, flat.fingerprint);
    }

    #[test]
    fn fabric_spec_prices_the_fan_in_hop() {
        use recshard_sharding::{FabricSpec, NodeTopology};
        let (model, profile, system) = setup();
        let plan = hash_placement(&model, 2).with_topology(NodeTopology::new(2, 1));
        let fabric = FabricSpec::hgx();
        let response_bytes = 4096.0;
        let cfg = config(PolicyKind::Lru).with_fabric(fabric, response_bytes);
        assert_eq!(cfg.internode_hop_ns, fabric.hop_ns(response_bytes));
        // The fabric-priced hop behaves like any explicit hop of the same
        // size: identical run, fingerprint included.
        let explicit = ServeConfig {
            internode_hop_ns: fabric.hop_ns(response_bytes),
            ..config(PolicyKind::Lru)
        };
        let a = InferenceServer::run(&model, &plan, &profile, &system, cfg);
        let b = InferenceServer::run(&model, &plan, &profile, &system, explicit);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(a.p50_ms > 0.0);
    }

    #[test]
    fn stationary_scenario_reproduces_the_plain_run() {
        let (model, profile, system) = setup();
        let plan = hash_placement(&model, 2);
        let cfg = config(PolicyKind::StatGuided);
        let plain = InferenceServer::run(&model, &plan, &profile, &system, cfg);
        let stationary = InferenceServer::run_scenario(
            &model,
            &plan,
            &profile,
            &system,
            cfg,
            &ScenarioSpec::stationary(),
        );
        assert_eq!(
            plain, stationary,
            "a stationary scenario must replay the plain run bit-identically"
        );
    }

    #[test]
    fn flash_crowd_scenario_is_deterministic_and_observable() {
        let (model, profile, system) = setup();
        let plan = hash_placement(&model, 2);
        let cfg = config(PolicyKind::StatGuided);
        // 500 total queries at 50 µs span 25 ms; 2x flash over [5 ms, 10 ms).
        let spec = ScenarioSpec::flash_crowd(5e-3, 5e-3, 2.0);
        let a = InferenceServer::run_scenario(&model, &plan, &profile, &system, cfg, &spec);
        let b = InferenceServer::run_scenario(&model, &plan, &profile, &system, cfg, &spec);
        assert_eq!(a, b, "same seed and spec must reproduce the report");
        let plain = InferenceServer::run(&model, &plan, &profile, &system, cfg);
        assert_ne!(a.fingerprint, plain.fingerprint);

        let (traced, bundle) =
            InferenceServer::run_scenario_traced(&model, &plan, &profile, &system, cfg, &spec);
        assert_eq!(a, traced, "tracing must not perturb the scenario run");
        let phases: Vec<_> = bundle
            .trace
            .records()
            .iter()
            .filter(|r| r.event.name() == "scenario_phase")
            .collect();
        assert_eq!(phases.len(), 2, "both flash boundaries must be traced");
        let counter = bundle
            .metrics
            .entries
            .iter()
            .find(|(n, _)| n == "scenario.phases")
            .map(|(_, v)| v.clone());
        assert_eq!(counter, Some(recshard_obs::MetricValue::Counter(2)));
    }

    #[test]
    fn stat_guided_beats_lru_on_hit_rate_under_skew() {
        let (model, profile, system) = setup();
        let plan = hash_placement(&model, 2);
        let lru = InferenceServer::run(&model, &plan, &profile, &system, config(PolicyKind::Lru));
        let sg = InferenceServer::run(
            &model,
            &plan,
            &profile,
            &system,
            config(PolicyKind::StatGuided),
        );
        assert!(
            sg.hit_rate > lru.hit_rate,
            "stat-guided {} must beat LRU {}",
            sg.hit_rate,
            lru.hit_rate
        );
        assert!(sg.cache.pinned_bytes > 0, "knee rows must be pinned");
    }
}
