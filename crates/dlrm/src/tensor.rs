//! Minimal dense matrix type used by the MLP layers.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A row-major `rows x cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix with Xavier/Glorot-uniform initialised entries.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let mut m = Self::zeros(rows, cols);
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        for v in &mut m.data {
            *v = rng.gen_range(-bound..bound);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// `y = W x` for a column vector `x` of length `cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = row.iter().zip(x).map(|(&w, &v)| w * v).sum();
        }
        y
    }

    /// `y = W^T x` for a column vector `x` of length `rows`.
    pub fn matvec_transposed(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "dimension mismatch");
        let mut y = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, &w) in row.iter().enumerate() {
                y[c] += w * x[r];
            }
        }
        y
    }

    /// Rank-1 SGD update: `W -= lr * g x^T` where `g` has length `rows` and
    /// `x` has length `cols`.
    pub fn sgd_outer_update(&mut self, g: &[f32], x: &[f32], lr: f32) {
        assert_eq!(g.len(), self.rows);
        assert_eq!(x.len(), self.cols);
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (c, w) in row.iter_mut().enumerate() {
                *w -= lr * g[r] * x[c];
            }
        }
    }

    /// Frobenius norm (for tests and debugging).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_matches_manual() {
        let mut m = Matrix::zeros(2, 3);
        *m.get_mut(0, 0) = 1.0;
        *m.get_mut(0, 1) = 2.0;
        *m.get_mut(0, 2) = 3.0;
        *m.get_mut(1, 0) = 4.0;
        *m.get_mut(1, 1) = 5.0;
        *m.get_mut(1, 2) = 6.0;
        let y = m.matvec(&[1.0, 0.5, 2.0]);
        assert_eq!(y, vec![1.0 + 1.0 + 6.0, 4.0 + 2.5 + 12.0]);
        let yt = m.matvec_transposed(&[1.0, 1.0]);
        assert_eq!(yt, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn sgd_update_moves_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut m = Matrix::xavier(3, 2, &mut rng);
        let before = m.norm();
        m.sgd_outer_update(&[1.0, 1.0, 1.0], &[1.0, 1.0], 0.1);
        assert_ne!(before, m.norm());
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = Matrix::xavier(10, 10, &mut rng);
        let bound = (6.0 / 20.0f32).sqrt();
        for r in 0..10 {
            for c in 0..10 {
                assert!(m.get(r, c).abs() <= bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }
}
