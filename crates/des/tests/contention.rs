//! Integration tests of [`ContentionMode::SharedRate`]: the shared-rate
//! link fabric, the incast acceptance scenario, typed construction errors,
//! and the determinism/observation contracts in contention mode.

use recshard_data::ModelSpec;
use recshard_des::{
    ArrivalProcess, ClusterConfig, ClusterSimulator, ContentionMode, DesError, DriftSchedule,
    ReshardController, ReshardPolicy,
};
use recshard_sharding::{
    FabricSpec, GreedySharder, NodeTopology, ShardingPlan, SizeCost, SystemSpec, TablePlacement,
};
use recshard_stats::{DatasetProfile, DatasetProfiler};

fn setup(gpus: usize) -> (ModelSpec, DatasetProfile, SystemSpec, ShardingPlan) {
    let model = ModelSpec::small(8, 5);
    let profile = DatasetProfiler::profile_model(&model, 1_000, 2);
    let system = SystemSpec::uniform(gpus, u64::MAX / 8, u64::MAX / 8, 1555.0, 16.0);
    let plan = GreedySharder::new(SizeCost)
        .shard(&model, &profile, &system)
        .unwrap();
    (model, profile, system, plan)
}

fn config(iterations: u64) -> ClusterConfig {
    ClusterConfig {
        iterations,
        batch_size: 32,
        ..ClusterConfig::default()
    }
}

/// A plan concentrating every table on the GPUs of nodes `1..`, so the
/// exchange becomes an incast: all sender nodes converge on each receiver's
/// fabric port at once, and node 0 contributes nothing of its own.
fn incast_plan(model: &ModelSpec, topology: NodeTopology) -> ShardingPlan {
    let gpus = topology.num_gpus();
    let p = topology.gpus_per_node;
    let senders = gpus - p;
    let placements: Vec<TablePlacement> = model
        .features()
        .iter()
        .map(|f| TablePlacement {
            table: f.id,
            gpu: p + f.id.index() % senders,
            hbm_rows: f.hash_size,
            total_rows: f.hash_size,
            row_bytes: f.row_bytes(),
        })
        .collect();
    ShardingPlan::new("incast", gpus, placements).with_topology(topology)
}

#[test]
fn shared_rate_run_completes_with_ordered_percentiles() {
    let (model, profile, system, plan) = setup(4);
    let cfg = ClusterConfig {
        contention: ContentionMode::SharedRate,
        ..config(200)
    };
    let s = ClusterSimulator::new(&model, &plan, &profile, &system, cfg).run();
    assert_eq!(s.completed, 200);
    assert!(s.p50_ms > 0.0);
    assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
    assert!(s.throughput_iters_per_s > 0.0);
}

#[test]
fn shared_rate_replays_bit_identically_per_seed() {
    let (model, profile, system, plan) = setup(4);
    let two_level = plan.with_topology(NodeTopology::new(2, 2));
    let cfg = ClusterConfig {
        contention: ContentionMode::SharedRate,
        arrival: ArrivalProcess::Poisson {
            mean_interval_ms: 0.5,
        },
        ..config(300)
    };
    let run = || ClusterSimulator::new(&model, &two_level, &profile, &system, cfg).run();
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds must replay identical summaries");
    let c = ClusterSimulator::new(
        &model,
        &two_level,
        &profile,
        &system,
        ClusterConfig { seed: 99, ..cfg },
    )
    .run();
    assert_ne!(a.fingerprint, c.fingerprint);
}

/// The acceptance scenario of the shared-rate rework: many remote senders
/// converging on each receiving node's fabric port must inflate the DES
/// sojourn tail beyond what the old split-bandwidth FIFO model reports,
/// because that model divided the remote bytes by the full per-GPU fabric
/// bandwidth and summed the phases into one uncontended scalar.
#[test]
fn seeded_incast_inflates_shared_rate_p99_beyond_fifo() {
    let (model, profile, _, _) = setup(2);
    let system = SystemSpec::uniform(8, u64::MAX / 32, u64::MAX / 32, 1555.0, 16.0);
    let plan = incast_plan(&model, NodeTopology::new(4, 2));
    let cfg = ClusterConfig {
        arrival: ArrivalProcess::FixedRate { interval_ms: 2.0 },
        ..config(200)
    };
    let fifo = ClusterSimulator::new(&model, &plan, &profile, &system, cfg).run();
    let shared = ClusterSimulator::new(
        &model,
        &plan,
        &profile,
        &system,
        ClusterConfig {
            contention: ContentionMode::SharedRate,
            ..cfg
        },
    )
    .run();
    assert!(
        shared.p99_ms > fifo.p99_ms,
        "incast must inflate the shared-rate tail ({} vs {})",
        shared.p99_ms,
        fifo.p99_ms
    );
    // Same iterations drain either way; only the timing model changed.
    assert_eq!(shared.completed, fifo.completed);
}

/// Turning the contention field on and off must not perturb the FIFO model:
/// the `Fifo` arm is the byte-identical historical code path.
#[test]
fn fifo_goldens_survive_the_contention_field() {
    let (model, profile, system, plan) = setup(4);
    let explicit = ClusterSimulator::new(
        &model,
        &plan,
        &profile,
        &system,
        ClusterConfig {
            contention: ContentionMode::Fifo,
            ..config(150)
        },
    )
    .run();
    let default = ClusterSimulator::new(&model, &plan, &profile, &system, config(150)).run();
    assert_eq!(explicit, default);
}

#[test]
fn observation_does_not_perturb_shared_rate_runs() {
    let (model, profile, system, plan) = setup(4);
    let two_level = plan.with_topology(NodeTopology::new(2, 2));
    let cfg = ClusterConfig {
        contention: ContentionMode::SharedRate,
        ..config(80)
    };
    let plain = ClusterSimulator::new(&model, &two_level, &profile, &system, cfg).run();
    let mut collector = recshard_obs::Collector::new();
    let traced = ClusterSimulator::new(&model, &two_level, &profile, &system, cfg)
        .with_obs(&mut collector)
        .run();
    assert_eq!(plain, traced, "observation must not perturb the run");
    let bundle = collector.finish();
    let names: Vec<&str> = bundle
        .metrics
        .entries
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    assert!(names.contains(&"des.link.transfers"));
    assert!(names.contains(&"des.link.duration_ms"));
    assert!(names.contains(&"des.link.stretch"));
    assert!(names.contains(&"des.link.tenancy"));
    let transfers = bundle
        .metrics
        .entries
        .iter()
        .find(|(n, _)| n == "des.link.transfers")
        .map(|(_, v)| v.clone());
    // Per iteration: 4 HBM + 4 UVM + 4 NVLink + 2 fabric flows.
    assert_eq!(
        transfers,
        Some(recshard_obs::MetricValue::Counter(80 * (4 + 4 + 4 + 2)))
    );
    assert!(bundle
        .trace
        .records()
        .iter()
        .any(|r| r.event.name() == "link_transfer"));
}

#[test]
fn shared_rate_handles_online_resharding() {
    let (model, profile, system, plan) = setup(4);
    let cfg = ClusterConfig {
        contention: ContentionMode::SharedRate,
        arrival: ArrivalProcess::FixedRate { interval_ms: 1.0 },
        ..config(400)
    };
    let policy = ReshardPolicy {
        check_every_iterations: 100,
        imbalance_threshold: 1.01,
        ..ReshardPolicy::default()
    };
    let solver: Box<recshard_des::PlanSolver> = Box::new(|model, profile, system, _| {
        GreedySharder::new(SizeCost)
            .shard(model, profile, system)
            .ok()
    });
    let summary = ClusterSimulator::new(&model, &plan, &profile, &system, cfg)
        .with_drift(DriftSchedule::paper_like(50))
        .with_controller(ReshardController::new(policy, solver))
        .run();
    assert_eq!(summary.completed, 400);
}

#[test]
fn try_new_reports_typed_configuration_errors() {
    let (model, profile, system, plan) = setup(2);
    let bad_bandwidth = ClusterConfig {
        alltoall_bandwidth_gbps: 0.0,
        ..config(10)
    };
    match ClusterSimulator::try_new(&model, &plan, &profile, &system, bad_bandwidth) {
        Err(DesError::NonPositiveBandwidth { name, value }) => {
            assert_eq!(name, "alltoall_bandwidth_gbps");
            assert_eq!(value, 0.0);
        }
        other => panic!("expected NonPositiveBandwidth, got {other:?}"),
    }

    // The constructors reject bad bandwidths, but the fields are public (and
    // the spec deserializes), so a poisoned spec can still reach `try_new`.
    let bad_system = system.map_classes(|mut c| {
        c.hbm_bandwidth_gbps = -3.0;
        c
    });
    match ClusterSimulator::try_new(&model, &plan, &profile, &bad_system, config(10)) {
        Err(DesError::NonPositiveBandwidth { name, .. }) => {
            assert_eq!(name, "hbm_bandwidth_gbps");
        }
        other => panic!("expected NonPositiveBandwidth, got {other:?}"),
    }

    let mismatched = SystemSpec::uniform(4, u64::MAX / 8, u64::MAX / 8, 1555.0, 16.0);
    match ClusterSimulator::try_new(&model, &plan, &profile, &mismatched, config(10)) {
        Err(DesError::GpuCountMismatch { plan: p, system: s }) => {
            assert_eq!((p, s), (2, 4));
        }
        other => panic!("expected GpuCountMismatch, got {other:?}"),
    }

    let bad_arrival = ClusterConfig {
        arrival: ArrivalProcess::FixedRate { interval_ms: -1.0 },
        ..config(10)
    };
    match ClusterSimulator::try_new(&model, &plan, &profile, &system, bad_arrival) {
        Err(DesError::InvalidArrival { name, value }) => {
            assert_eq!(name, "interval_ms");
            assert_eq!(value, -1.0);
        }
        other => panic!("expected InvalidArrival, got {other:?}"),
    }

    match ClusterSimulator::try_new(&model, &plan, &profile, &system, config(0)) {
        Err(DesError::EmptyRun { .. }) => {}
        other => panic!("expected EmptyRun, got {other:?}"),
    }
}

#[test]
fn fabric_spec_prices_both_contention_modes() {
    let (model, profile, system, plan) = setup(4);
    let fabric = FabricSpec::hgx();
    let cfg = config(60).with_fabric(fabric);
    // hgx() carries the same figures as the config defaults, so adopting it
    // must be a no-op on the FIFO fingerprint.
    let adopted = ClusterSimulator::new(&model, &plan, &profile, &system, cfg).run();
    let default = ClusterSimulator::new(&model, &plan, &profile, &system, config(60)).run();
    assert_eq!(adopted.fingerprint, default.fingerprint);
    // And the shared-rate fabric accepts the same spec.
    let shared = ClusterSimulator::new(
        &model,
        &plan,
        &profile,
        &system,
        ClusterConfig {
            contention: ContentionMode::SharedRate,
            ..cfg
        },
    )
    .run();
    assert_eq!(shared.completed, 60);
}
