//! Batch arrival processes and the trace-driven iteration workload.
//!
//! Arrivals model the training input pipeline handing batches to the
//! trainers: either a fixed-rate conveyor (a well-tuned, reader-bound
//! pipeline) or a Poisson process (a bursty, shared ingestion tier). The
//! workload generator turns each arriving batch into per-GPU tier access
//! counts by drawing *actual multi-hot lookups* — the same per-feature
//! coverage/pooling/Zipf draws `recshard-data` uses everywhere else — and
//! routing them through the active plan's remapping tables.

use crate::error::DesError;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::Rng;
use recshard_data::{ModelSpec, Zipf};
use recshard_memsim::{sample_batch_accesses, AccessCounters};
use recshard_sharding::{RemapTable, ShardingPlan};
use recshard_stats::DatasetProfile;
use serde::{Deserialize, Serialize};

/// How training batches arrive at the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// One batch every `interval_ms` milliseconds, exactly.
    FixedRate {
        /// Gap between consecutive batch arrivals.
        interval_ms: f64,
    },
    /// Poisson arrivals with exponentially distributed gaps.
    Poisson {
        /// Mean gap between consecutive batch arrivals.
        mean_interval_ms: f64,
    },
}

impl ArrivalProcess {
    /// Rejects intervals that cannot drive an open-loop schedule: negative
    /// or non-finite means/intervals. (A zero interval is legal — it models
    /// all batches available at time zero — and cannot hang the run because
    /// the simulator schedules exactly `iterations` arrivals, never an
    /// unbounded stream.)
    ///
    /// [`ClusterSimulator::try_new`](crate::ClusterSimulator::try_new) calls
    /// this up front so a poisoned rate surfaces as
    /// [`DesError::InvalidArrival`] instead of degenerate gap draws.
    pub fn validate(&self) -> Result<(), DesError> {
        let (name, value) = match *self {
            ArrivalProcess::FixedRate { interval_ms } => ("interval_ms", interval_ms),
            ArrivalProcess::Poisson { mean_interval_ms } => ("mean_interval_ms", mean_interval_ms),
        };
        if value.is_finite() && value >= 0.0 {
            Ok(())
        } else {
            Err(DesError::InvalidArrival { name, value })
        }
    }

    /// Draws the gap to the next arrival, in nanoseconds.
    ///
    /// Defensive even for configs that skipped [`ArrivalProcess::validate`]:
    /// negative or NaN intervals clamp to a zero gap, and an astronomically
    /// large mean (or an exponential draw deep in its tail) saturates at
    /// `u64::MAX` ns instead of wrapping — the draw can never panic or hang.
    pub fn next_gap_ns(&self, rng: &mut StdRng) -> u64 {
        match *self {
            ArrivalProcess::FixedRate { interval_ms } => {
                SimTime::saturating_ns_from_ms(interval_ms.max(0.0))
            }
            ArrivalProcess::Poisson { mean_interval_ms } => {
                // `u ∈ [0, 1)` so `ln(1 - u)` is finite and ≤ 0; the draw
                // is consumed even for degenerate means so a clamped run
                // replays the same RNG stream as a healthy one.
                let u: f64 = rng.gen();
                let gap_ms = -mean_interval_ms.max(0.0) * (1.0 - u).ln();
                SimTime::saturating_ns_from_ms(gap_ms)
            }
        }
    }

    /// The mean arrival interval in milliseconds.
    pub fn mean_interval_ms(&self) -> f64 {
        match *self {
            ArrivalProcess::FixedRate { interval_ms } => interval_ms,
            ArrivalProcess::Poisson { mean_interval_ms } => mean_interval_ms,
        }
    }
}

/// Trace-driven generator of per-GPU tier accesses for one iteration under
/// the active sharding plan.
#[derive(Debug, Clone)]
pub struct IterationWorkload {
    model: ModelSpec,
    value_dists: Vec<Zipf>,
    remaps: Vec<RemapTable>,
    gpu_of_table: Vec<usize>,
    num_gpus: usize,
}

impl IterationWorkload {
    /// Builds the workload for a model under `plan`, materialising remap
    /// tables from the profile's hottest-first ranking.
    ///
    /// # Panics
    ///
    /// Panics if model, plan and profile disagree on the feature count.
    pub fn new(model: &ModelSpec, plan: &ShardingPlan, profile: &DatasetProfile) -> Self {
        let mut w = Self {
            model: model.clone(),
            value_dists: model
                .features()
                .iter()
                .map(|f| f.value_distribution())
                .collect(),
            remaps: Vec::new(),
            gpu_of_table: Vec::new(),
            num_gpus: plan.num_gpus(),
        };
        w.install_plan(plan, profile);
        w
    }

    /// The active model.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// Number of GPUs the active plan shards across.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Number of tables owned by each GPU under the active plan.
    pub fn tables_per_gpu(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_gpus];
        for &g in &self.gpu_of_table {
            counts[g] += 1;
        }
        counts
    }

    /// Swaps in a new plan (online re-sharding), rebuilding remap tables.
    ///
    /// # Panics
    ///
    /// Panics if the plan or profile disagree with the model's feature count.
    pub fn install_plan(&mut self, plan: &ShardingPlan, profile: &DatasetProfile) {
        assert_eq!(
            plan.placements().len(),
            self.model.num_features(),
            "plan/model mismatch"
        );
        assert_eq!(
            profile.num_features(),
            self.model.num_features(),
            "profile/model mismatch"
        );
        self.remaps = plan
            .placements()
            .iter()
            .zip(profile.profiles())
            .map(|(placement, prof)| RemapTable::build(placement, &prof.ranked_rows))
            .collect();
        self.gpu_of_table = plan.gpu_assignments();
        self.num_gpus = plan.num_gpus();
    }

    /// Swaps in a drifted model (same feature universe, shifted pooling
    /// statistics), keeping the current plan's remap tables.
    ///
    /// # Panics
    ///
    /// Panics if the drifted model changes the feature count.
    pub fn install_model(&mut self, model: &ModelSpec) {
        assert_eq!(
            model.num_features(),
            self.model.num_features(),
            "drift changed feature count"
        );
        self.value_dists = model
            .features()
            .iter()
            .map(|f| f.value_distribution())
            .collect();
        self.model = model.clone();
    }

    /// Draws one iteration of `batch` samples and returns the per-GPU tier
    /// access counters its lookups induce under the active plan.
    ///
    /// Delegates to `recshard_memsim`'s shared trace-sampling kernel so the
    /// DES and the single-iteration simulator stay draw-for-draw comparable.
    pub fn sample_iteration(&self, batch: usize, rng: &mut StdRng) -> Vec<AccessCounters> {
        sample_batch_accesses(
            &self.model,
            &self.value_dists,
            &self.remaps,
            &self.gpu_of_table,
            self.num_gpus,
            batch,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use recshard_sharding::{GreedySharder, SizeCost, SystemSpec};
    use recshard_stats::DatasetProfiler;

    fn setup() -> (ModelSpec, DatasetProfile, ShardingPlan) {
        let model = ModelSpec::small(6, 3);
        let profile = DatasetProfiler::profile_model(&model, 1_000, 1);
        let system = SystemSpec::uniform(2, u64::MAX / 4, u64::MAX / 4, 1555.0, 16.0);
        let plan = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        (model, profile, plan)
    }

    #[test]
    fn fixed_rate_gaps_are_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = ArrivalProcess::FixedRate { interval_ms: 2.5 };
        assert_eq!(a.next_gap_ns(&mut rng), 2_500_000);
        assert_eq!(a.next_gap_ns(&mut rng), 2_500_000);
    }

    #[test]
    fn degenerate_rates_clamp_instead_of_panicking() {
        let mut rng = StdRng::seed_from_u64(7);
        for arrival in [
            ArrivalProcess::FixedRate { interval_ms: -4.0 },
            ArrivalProcess::FixedRate {
                interval_ms: f64::NAN,
            },
            ArrivalProcess::Poisson {
                mean_interval_ms: -1.0,
            },
            ArrivalProcess::Poisson {
                mean_interval_ms: f64::NAN,
            },
        ] {
            assert!(arrival.validate().is_err());
            assert_eq!(arrival.next_gap_ns(&mut rng), 0);
        }
        // An absurd but finite mean saturates rather than wrapping.
        let huge = ArrivalProcess::FixedRate { interval_ms: 1e300 };
        assert!(huge.validate().is_ok());
        assert_eq!(huge.next_gap_ns(&mut rng), u64::MAX);
        let inf = ArrivalProcess::Poisson {
            mean_interval_ms: f64::INFINITY,
        };
        assert!(inf.validate().is_err());
    }

    #[test]
    fn clamped_poisson_consumes_the_same_rng_stream() {
        // A degenerate mean must not desynchronise replay: the draw is
        // consumed either way, so downstream randomness is unaffected.
        let healthy = ArrivalProcess::Poisson {
            mean_interval_ms: 2.0,
        };
        let degenerate = ArrivalProcess::Poisson {
            mean_interval_ms: -2.0,
        };
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let _ = healthy.next_gap_ns(&mut a);
        let _ = degenerate.next_gap_ns(&mut b);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn poisson_gaps_average_the_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = ArrivalProcess::Poisson {
            mean_interval_ms: 4.0,
        };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| a.next_gap_ns(&mut rng)).sum();
        let mean_ms = total as f64 / n as f64 / 1e6;
        assert!(
            (mean_ms - 4.0).abs() < 0.2,
            "Poisson mean gap {mean_ms} far from 4.0"
        );
    }

    #[test]
    fn sampled_accesses_land_on_owning_gpus() {
        let (model, profile, plan) = setup();
        let w = IterationWorkload::new(&model, &plan, &profile);
        let mut rng = StdRng::seed_from_u64(3);
        let counters = w.sample_iteration(64, &mut rng);
        assert_eq!(counters.len(), plan.num_gpus());
        let total: u64 = counters.iter().map(|c| c.total_accesses()).sum();
        assert!(total > 0, "a 64-sample batch must induce lookups");
        // The plan fits entirely in HBM, so no UVM accesses may appear.
        assert_eq!(counters.iter().map(|c| c.uvm_accesses).sum::<u64>(), 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let (model, profile, plan) = setup();
        let w = IterationWorkload::new(&model, &plan, &profile);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(
            w.sample_iteration(32, &mut a),
            w.sample_iteration(32, &mut b)
        );
    }

    #[test]
    fn install_plan_reroutes_accesses() {
        let (model, profile, plan) = setup();
        let mut w = IterationWorkload::new(&model, &plan, &profile);
        // All-UVM single-GPU plan: every access must flip to UVM on GPU 0.
        let placements = model
            .features()
            .iter()
            .map(|f| recshard_sharding::TablePlacement {
                table: f.id,
                gpu: 0,
                hbm_rows: 0,
                total_rows: f.hash_size,
                row_bytes: f.row_bytes(),
            })
            .collect();
        let uvm_plan = ShardingPlan::new("all-uvm", 2, placements);
        w.install_plan(&uvm_plan, &profile);
        let mut rng = StdRng::seed_from_u64(4);
        let counters = w.sample_iteration(32, &mut rng);
        assert_eq!(counters[0].hbm_accesses, 0);
        assert!(counters[0].uvm_accesses > 0);
        assert_eq!(counters[1].total_accesses(), 0);
        assert_eq!(w.tables_per_gpu(), vec![6, 0]);
    }
}
