//! Cross-model conformance tests.
//!
//! Three execution models now coexist in the workspace and are supposed to
//! describe the *same* system at different fidelities:
//!
//! 1. the **analytical** estimator (`recshard_memsim::AnalyticalEstimator`)
//!    — closed-form expectations straight from the profiled CDFs (the
//!    quantity the MILP optimises),
//! 2. the **trace** simulator (`recshard_memsim::EmbeddingOpSimulator`) —
//!    samples actual multi-hot batches and counts where lookups land, and
//! 3. the **discrete-event** cluster simulator (`recshard_des`) — adds
//!    queueing, the all-to-all barrier and virtual time on top of the same
//!    timing model.
//!
//! These tests pin the three against each other on identical seeds and
//! workloads so a drive-by change to one backend cannot silently diverge
//! from the others:
//!
//! * trace and DES must agree **draw-for-draw** (they share one sampling
//!   kernel — byte-identical access counters per iteration), and
//! * analytical, trace and DES iteration-time estimates must agree within a
//!   **stated tolerance** (20%): the analytical number is an expectation and
//!   the sampled models fluctuate around it, but none of the three may walk
//!   away from the others.

use rand::rngs::StdRng;
use rand::SeedableRng;
use recshard_data::ModelSpec;
use recshard_des::{ArrivalProcess, ClusterConfig, ClusterSimulator, IterationWorkload};
use recshard_memsim::{AnalyticalEstimator, EmbeddingOpSimulator, SimConfig};
use recshard_sharding::{ShardingPlan, SystemSpec, TablePlacement};
use recshard_stats::{DatasetProfile, DatasetProfiler};

/// Relative tolerance between the analytical expectation and the sampled
/// backends' iteration times.
const ITERATION_TIME_TOLERANCE: f64 = 0.20;

/// A profiled setup whose categorical space the profile saturates (so the
/// analytical expectation is a faithful description of the sampled stream),
/// with a half-split plan that keeps both memory tiers busy.
fn setup() -> (ModelSpec, DatasetProfile, SystemSpec, ShardingPlan) {
    let model = ModelSpec::small(6, 8).scaled(32).with_batch_size(256);
    let profile = DatasetProfiler::profile_model(&model, 8_000, 5);
    let system = SystemSpec::uniform(2, u64::MAX / 4, u64::MAX / 4, 1555.0, 16.0);
    let placements: Vec<TablePlacement> = model
        .features()
        .iter()
        .zip(profile.profiles())
        .map(|(f, p)| TablePlacement {
            table: f.id,
            gpu: f.id.index() % 2,
            hbm_rows: p.accessed_rows() / 2,
            total_rows: f.hash_size,
            row_bytes: f.row_bytes(),
        })
        .collect();
    let plan = ShardingPlan::new("half-split", 2, placements);
    (model, profile, system, plan)
}

/// Trace replay matches the DES draw-for-draw: with identical RNG streams,
/// the DES workload generator and the trace simulator's shared sampling
/// kernel produce byte-identical per-GPU access counters, iteration after
/// iteration.
#[test]
fn trace_replay_matches_des_draw_for_draw() {
    let (model, profile, _, plan) = setup();
    let workload = IterationWorkload::new(&model, &plan, &profile);
    let value_dists: Vec<_> = model
        .features()
        .iter()
        .map(|f| f.value_distribution())
        .collect();
    let remaps = EmbeddingOpSimulator::build_remap_tables(&plan, &profile);
    let gpu_of = plan.gpu_assignments();

    let mut des_rng = StdRng::seed_from_u64(0xD12A);
    let mut trace_rng = StdRng::seed_from_u64(0xD12A);
    for iteration in 0..5 {
        let des_counters = workload.sample_iteration(64, &mut des_rng);
        let trace_counters = recshard_memsim::sample_batch_accesses(
            &model,
            &value_dists,
            &remaps,
            &gpu_of,
            plan.num_gpus(),
            64,
            &mut trace_rng,
        );
        assert_eq!(
            des_counters, trace_counters,
            "iteration {iteration}: DES and trace must draw identically"
        );
    }
}

/// The trace simulator's per-iteration counters are exactly what the DES
/// charges its stations with: `run_iteration` (unscaled) equals the DES
/// workload sample under the same seed.
#[test]
fn embedding_op_simulator_consumes_the_same_draws() {
    let (model, profile, system, plan) = setup();
    let sim = EmbeddingOpSimulator::new(
        &model,
        &plan,
        &profile,
        &system,
        SimConfig {
            kernel_overhead_us_per_table: 0.0,
            scale_to_batch: None,
        },
    );
    let workload = IterationWorkload::new(&model, &plan, &profile);
    let mut a = StdRng::seed_from_u64(77);
    let mut b = StdRng::seed_from_u64(77);
    let report = sim.run_iteration(128, &mut a);
    let counters = workload.sample_iteration(128, &mut b);
    for (gpu, stats) in report.per_gpu().iter().enumerate() {
        assert_eq!(stats.counters, counters[gpu], "GPU {gpu} counters differ");
    }
}

/// Analytical vs trace: the closed-form iteration time tracks the sampled
/// one within the stated tolerance.
#[test]
fn analytical_matches_trace_iteration_time() {
    let (model, profile, system, plan) = setup();
    let batch = 256u32;
    let analytical = AnalyticalEstimator::new(&profile, &system, batch).iteration_time_ms(&plan);
    let mut sim = EmbeddingOpSimulator::new(
        &model,
        &plan,
        &profile,
        &system,
        SimConfig {
            kernel_overhead_us_per_table: 0.0,
            scale_to_batch: None,
        },
    );
    let traced = sim.run(8, batch as usize, 23).iteration_time_ms();
    let rel = (analytical - traced).abs() / traced;
    assert!(
        rel < ITERATION_TIME_TOLERANCE,
        "analytical {analytical:.4} ms vs traced {traced:.4} ms: {:.1}% apart \
         (tolerance {:.0}%)",
        rel * 100.0,
        ITERATION_TIME_TOLERANCE * 100.0
    );
}

/// Analytical vs DES: with the barrier and launch overheads configured away
/// and arrivals unloaded, the DES median sojourn time is the slowest GPU's
/// service time — which must agree with the analytical expectation within
/// the stated tolerance.
#[test]
fn analytical_matches_des_iteration_time() {
    let (model, profile, system, plan) = setup();
    let batch = 256usize;
    let analytical =
        AnalyticalEstimator::new(&profile, &system, batch as u32).iteration_time_ms(&plan);

    let config = ClusterConfig {
        batch_size: batch,
        iterations: 200,
        seed: 0xC0F,
        // Unloaded arrivals: no queueing in the sojourn times.
        arrival: ArrivalProcess::FixedRate { interval_ms: 1e6 },
        // Remove everything the analytical model does not charge: kernel
        // launch overhead and the all-to-all exchange.
        kernel_overhead_us_per_table: 0.0,
        scale_to_batch: None,
        alltoall_latency_us: 0.0,
        alltoall_bandwidth_gbps: 1e12,
        ..ClusterConfig::default()
    };
    let summary = ClusterSimulator::new(&model, &plan, &profile, &system, config).run();
    assert_eq!(summary.completed, 200);
    let rel = (analytical - summary.p50_ms).abs() / summary.p50_ms;
    assert!(
        rel < ITERATION_TIME_TOLERANCE,
        "analytical {analytical:.4} ms vs DES p50 {:.4} ms: {:.1}% apart \
         (tolerance {:.0}%)",
        summary.p50_ms,
        rel * 100.0,
        ITERATION_TIME_TOLERANCE * 100.0
    );
}

/// Transitivity check at a different plan shape: all three models agree on
/// *ordering* — a plan with strictly more HBM is never slower under any
/// backend.
#[test]
fn all_models_agree_more_hbm_is_never_slower() {
    let (model, profile, system, _) = setup();
    let mk = |frac: f64| {
        let placements = model
            .features()
            .iter()
            .zip(profile.profiles())
            .map(|(f, p)| TablePlacement {
                table: f.id,
                gpu: f.id.index() % 2,
                hbm_rows: (p.accessed_rows() as f64 * frac) as u64,
                total_rows: f.hash_size,
                row_bytes: f.row_bytes(),
            })
            .collect();
        ShardingPlan::new("frac", 2, placements)
    };
    let lean = mk(0.1);
    let rich = mk(0.9);

    let est = AnalyticalEstimator::new(&profile, &system, 256);
    assert!(est.iteration_time_ms(&rich) <= est.iteration_time_ms(&lean));

    let sim_config = SimConfig {
        kernel_overhead_us_per_table: 0.0,
        scale_to_batch: None,
    };
    let trace = |plan: &ShardingPlan| {
        EmbeddingOpSimulator::new(&model, plan, &profile, &system, sim_config)
            .run(4, 256, 3)
            .iteration_time_ms()
    };
    assert!(trace(&rich) < trace(&lean));

    let des_config = ClusterConfig {
        batch_size: 128,
        iterations: 100,
        seed: 0xDE5,
        arrival: ArrivalProcess::FixedRate { interval_ms: 1e6 },
        kernel_overhead_us_per_table: 0.0,
        scale_to_batch: None,
        ..ClusterConfig::default()
    };
    let des = |plan: &ShardingPlan| {
        ClusterSimulator::new(&model, plan, &profile, &system, des_config)
            .run()
            .p50_ms
    };
    assert!(des(&rich) < des(&lean));
}
