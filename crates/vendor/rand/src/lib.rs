//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the (small) subset of rand 0.8's API the repository uses:
//! [`Rng`] with `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256++ seeded
//! via SplitMix64 — statistically strong for simulation workloads and fully
//! deterministic for a given seed, which is all the reproduction needs. The
//! streams differ from upstream `StdRng` (ChaCha12), so absolute sampled
//! values are not comparable across implementations; every test in this
//! workspace asserts on self-consistent statistics, never on upstream values.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire's nearly-divisionless rejection method: an unbiased draw from
/// `[0, span)` without a modulo in the common case.
fn lemire<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let t = span.wrapping_neg() % span;
        while lo < t {
            m = (rng.next_u64() as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Two's complement makes the span correct for signed types too.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(lemire(span, rng) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(lemire(span, rng) as $t)
            }
        }
    )*};
}

int_sample_range!(u64, u32, u16, u8, usize, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

/// The user-facing random-number interface (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard uniform distribution
    /// (`[0, 1)` for floats, full width for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators (mirrors `rand::SeedableRng`'s `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..16).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..16).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let mut r = StdRng::seed_from_u64(8);
        let c: Vec<u64> = (0..16).map(|_| r.gen::<u64>()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&y));
            let z = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "gen_bool(0.25) hit rate {frac}");
    }
}
