//! # recshard-stats
//!
//! Streaming statistics and the training-data profiler for the RecShard
//! reproduction (Section 4.1 of the paper).
//!
//! RecShard's sharding decisions are driven by three per-feature statistics
//! estimated from a small (~1%) sample of the training data:
//!
//! 1. the **post-hash value frequency CDF** of each embedding table — which
//!    fraction of accesses the hottest *k* rows cover ([`AccessCdf`]),
//! 2. the **average pooling factor** — a proxy for the table's bandwidth
//!    demand, and
//! 3. the **coverage** — how often the table is touched at all.
//!
//! [`DatasetProfiler`] consumes training samples (from `recshard-data`) and
//! produces a [`DatasetProfile`] holding one [`FeatureProfile`] per table,
//! which downstream crates (the baselines, the MILP formulation and the
//! memory simulator) consume.
//!
//! ```
//! use recshard_data::ModelSpec;
//! use recshard_stats::DatasetProfiler;
//!
//! let model = ModelSpec::small(4, 1);
//! let profile = DatasetProfiler::profile_model(&model, 2_000, 7);
//! assert_eq!(profile.profiles().len(), 4);
//! let p = &profile.profiles()[0];
//! assert!(p.coverage >= 0.0 && p.coverage <= 1.0);
//! ```
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cdf;
pub mod freq;
pub mod profile;
pub mod profiler;
pub mod streaming;

pub use cdf::{AccessCdf, Icdf};
pub use freq::FrequencyMap;
pub use profile::{DatasetProfile, FeatureProfile};
pub use profiler::DatasetProfiler;
pub use streaming::{P2Quantile, StreamingCdf, Summary, WelfordAccumulator};
