//! Criterion bench for the training-data profiling stage (Section 4.1 /
//! Section 6.6 overhead): cost of profiling per sample and of deriving the
//! 100-step ICDFs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use recshard_data::{ModelSpec, SampleGenerator};
use recshard_stats::DatasetProfiler;

fn profiler(c: &mut Criterion) {
    let model = ModelSpec::rm1().scaled(8_192);
    let mut gen = SampleGenerator::new(&model, 3);
    let batch = gen.batch(256);

    let mut group = c.benchmark_group("profiler");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("profile_256_samples_397_features", |b| {
        b.iter(|| {
            let mut profiler = DatasetProfiler::new(&model);
            profiler.consume_batch(&batch);
            profiler.finish()
        });
    });

    let profile = DatasetProfiler::profile_model(&model, 2_000, 5);
    group.bench_function("icdf_100_steps_all_tables", |b| {
        b.iter(|| {
            profile
                .profiles()
                .iter()
                .map(|p| p.icdf(100).max_rows())
                .sum::<u64>()
        });
    });
    group.finish();
}

criterion_group!(benches, profiler);
criterion_main!(benches);
