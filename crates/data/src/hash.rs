//! Feature hashing.
//!
//! Industry-scale DLRMs do not build a one-to-one mapping from raw categorical
//! values to embedding rows; instead, raw values are pushed through a random
//! hash function whose output range equals the embedding table's row count
//! (the *hash size*, Section 3.4 of the paper). Hashing bounds the table size
//! and handles unseen values, at the cost of collisions — the birthday paradox
//! means that even a hash size equal to the number of unique values leaves
//! roughly `1/e` of the table unused.
//!
//! The hasher here is a deterministic 64-bit finalizer (SplitMix64-style),
//! which is statistically indistinguishable from the "random hash" the paper
//! assumes for collision-analysis purposes.

use serde::{Deserialize, Serialize};

/// A deterministic feature hasher mapping raw categorical values to embedding
/// rows in `[0, hash_size)`.
///
/// Each embedding table gets its own hasher, keyed by a per-table seed so that
/// the same raw value maps to uncorrelated rows in different tables.
///
/// ```
/// use recshard_data::FeatureHasher;
///
/// let h = FeatureHasher::new(100, 7);
/// let row = h.hash(123_456);
/// assert!(row < 100);
/// // Deterministic.
/// assert_eq!(row, h.hash(123_456));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureHasher {
    hash_size: u64,
    seed: u64,
}

impl FeatureHasher {
    /// Creates a hasher with the given output range (`hash_size` rows) and seed.
    ///
    /// # Panics
    ///
    /// Panics if `hash_size` is zero.
    pub fn new(hash_size: u64, seed: u64) -> Self {
        assert!(hash_size > 0, "hash size must be non-zero");
        Self { hash_size, seed }
    }

    /// The number of output rows (the embedding table's row count).
    pub fn hash_size(&self) -> u64 {
        self.hash_size
    }

    /// The per-table seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Mixes a raw 64-bit value into a uniformly distributed 64-bit value.
    ///
    /// This is the SplitMix64 finalizer, a standard high-quality mixer.
    #[inline]
    pub fn mix(&self, value: u64) -> u64 {
        let mut z = value
            .wrapping_add(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hashes a raw categorical value to an embedding row index in
    /// `[0, hash_size)`.
    #[inline]
    pub fn hash(&self, value: u64) -> u64 {
        self.mix(value) % self.hash_size
    }

    /// Hashes a slice of raw values, returning the row index of each.
    pub fn hash_all(&self, values: &[u64]) -> Vec<u64> {
        values.iter().map(|&v| self.hash(v)).collect()
    }

    /// Measures collision statistics for a set of distinct raw values
    /// (Figure 7 / Figure 8 of the paper).
    ///
    /// The input is assumed to contain *distinct* raw categorical values; the
    /// output reports how many hash buckets they occupy, how many collide and
    /// how much of the hash space is left unused.
    pub fn collision_stats(&self, distinct_values: &[u64]) -> HashStats {
        let mut seen = std::collections::HashSet::with_capacity(distinct_values.len());
        for &v in distinct_values {
            seen.insert(self.hash(v));
        }
        HashStats::new(
            distinct_values.len() as u64,
            seen.len() as u64,
            self.hash_size,
        )
    }
}

/// Collision/utilization statistics of hashing `n` distinct values into a
/// table of `hash_size` rows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HashStats {
    /// Number of distinct raw input values hashed.
    pub distinct_inputs: u64,
    /// Number of distinct hash buckets (embedding rows) occupied.
    pub occupied_rows: u64,
    /// Size of the hash space (number of embedding rows).
    pub hash_size: u64,
}

impl HashStats {
    /// Builds the statistics from raw counts.
    pub fn new(distinct_inputs: u64, occupied_rows: u64, hash_size: u64) -> Self {
        Self {
            distinct_inputs,
            occupied_rows,
            hash_size,
        }
    }

    /// Fraction of the hash space that is used by at least one input value
    /// ("Hash Usage" in Figure 8).
    pub fn usage(&self) -> f64 {
        self.occupied_rows as f64 / self.hash_size as f64
    }

    /// Fraction of input values that collided with an earlier value
    /// ("Percent Collisions" in Figure 8).
    pub fn collision_fraction(&self) -> f64 {
        if self.distinct_inputs == 0 {
            return 0.0;
        }
        (self.distinct_inputs.saturating_sub(self.occupied_rows)) as f64
            / self.distinct_inputs as f64
    }

    /// Fraction of the hash space left unused ("Sparsity" in Figure 8).
    pub fn sparsity(&self) -> f64 {
        1.0 - self.usage()
    }
}

/// Analytic expectation of the occupied fraction of a hash table when `n`
/// distinct values are hashed uniformly into `h` buckets:
/// `E[occupied]/h = 1 - (1 - 1/h)^n ≈ 1 - exp(-n/h)`.
///
/// This is the birthday-paradox curve Figure 8 plots; at `n == h` the expected
/// unused fraction is approximately `1/e`.
pub fn expected_usage(distinct_inputs: u64, hash_size: u64) -> f64 {
    if hash_size == 0 {
        return 0.0;
    }
    let ratio = distinct_inputs as f64 / hash_size as f64;
    1.0 - (-ratio).exp()
}

/// Analytic expectation of the fraction of input values that collide when `n`
/// distinct values are hashed uniformly into `h` buckets.
pub fn expected_collision_fraction(distinct_inputs: u64, hash_size: u64) -> f64 {
    if distinct_inputs == 0 {
        return 0.0;
    }
    let occupied = expected_usage(distinct_inputs, hash_size) * hash_size as f64;
    ((distinct_inputs as f64) - occupied).max(0.0) / distinct_inputs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_in_range_and_deterministic() {
        let h = FeatureHasher::new(1000, 3);
        for v in 0..10_000u64 {
            let r = h.hash(v);
            assert!(r < 1000);
            assert_eq!(r, h.hash(v));
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = FeatureHasher::new(1 << 20, 1);
        let b = FeatureHasher::new(1 << 20, 2);
        let same = (0..10_000u64).filter(|&v| a.hash(v) == b.hash(v)).count();
        // Collision by chance only: expect ~10_000 / 2^20 ≈ 0.01 matches.
        assert!(
            same < 50,
            "seeds should decorrelate hashes, got {same} matches"
        );
    }

    #[test]
    fn birthday_paradox_at_equal_size() {
        let n = 100_000u64;
        let h = FeatureHasher::new(n, 99);
        let values: Vec<u64> = (0..n).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let stats = h.collision_stats(&values);
        // Expect ~1/e of the space unused.
        let unused = stats.sparsity();
        assert!(
            (unused - (1.0f64 / std::f64::consts::E)).abs() < 0.02,
            "unused = {unused}"
        );
        // Analytic curve agrees with measurement.
        assert!((stats.usage() - expected_usage(n, n)).abs() < 0.02);
    }

    #[test]
    fn usage_grows_with_smaller_hash() {
        let values: Vec<u64> = (0..50_000u64).collect();
        let small = FeatureHasher::new(10_000, 5).collision_stats(&values);
        let large = FeatureHasher::new(500_000, 5).collision_stats(&values);
        assert!(small.usage() > large.usage());
        assert!(small.collision_fraction() > large.collision_fraction());
        assert!(large.sparsity() > small.sparsity());
    }

    #[test]
    fn analytic_collision_fraction_monotone_in_n() {
        let h = 100_000u64;
        let mut prev = 0.0;
        for n in [1_000u64, 10_000, 50_000, 100_000, 500_000] {
            let c = expected_collision_fraction(n, h);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "hash size must be non-zero")]
    fn zero_hash_size_panics() {
        let _ = FeatureHasher::new(0, 0);
    }

    #[test]
    fn hash_stats_edge_cases() {
        let s = HashStats::new(0, 0, 100);
        assert_eq!(s.collision_fraction(), 0.0);
        assert_eq!(s.usage(), 0.0);
        assert_eq!(s.sparsity(), 1.0);
    }
}
