//! # recshard-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! RecShard paper's evaluation (Section 6), plus the Criterion benchmarks.
//!
//! Each `src/bin/*.rs` binary reproduces one table or figure; this library
//! holds the shared machinery: scaled-down reference models (RM1/RM2/RM3 and
//! the 16-GPU system, both divided by the same factor so capacity *pressure*
//! matches the paper), the four sharding strategies under comparison, and the
//! simulation driver that measures iteration times and per-tier access
//! counts.
//!
//! Absolute milliseconds differ from the paper's A100 testbed (the substrate
//! here is a simulator); the comparisons the paper draws — which strategy
//! wins, by what factor, how access counts shift between HBM and UVM — are
//! reproduced by these harnesses.

use recshard::{RecShard, RecShardConfig};
use recshard_data::{ModelSpec, RmKind};
use recshard_memsim::{EmbeddingOpSimulator, RunReport, SimConfig};
use recshard_sharding::{
    GreedySharder, LookupCost, ShardingPlan, SizeCost, SizeLookupCost, SystemSpec,
};
use recshard_stats::{DatasetProfile, DatasetProfiler};

/// Configuration shared by the experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Factor by which production row counts and memory capacities are divided.
    pub scale: u64,
    /// Number of GPUs (the paper evaluates on 16).
    pub gpus: usize,
    /// Synthetic training samples profiled before sharding.
    pub profile_samples: usize,
    /// Simulated training iterations per measurement.
    pub sim_iterations: usize,
    /// Samples traced per simulated iteration (scaled up to the paper's
    /// 16,384 batch for reporting).
    pub sim_batch: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A configuration that runs every experiment in seconds on a laptop
    /// while preserving the paper's capacity pressure.
    pub fn fast() -> Self {
        Self { scale: 2048, gpus: 16, profile_samples: 4_000, sim_iterations: 3, sim_batch: 256, seed: 0xA5F0 }
    }

    /// A smaller configuration for tests.
    pub fn tiny() -> Self {
        Self { scale: 16_384, gpus: 4, profile_samples: 800, sim_iterations: 2, sim_batch: 64, seed: 7 }
    }

    /// Reads overrides from environment variables (`RECSHARD_SCALE`,
    /// `RECSHARD_GPUS`, `RECSHARD_PROFILE_SAMPLES`, `RECSHARD_SIM_ITERS`,
    /// `RECSHARD_SIM_BATCH`).
    pub fn from_env() -> Self {
        let mut cfg = Self::fast();
        let get = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
        if let Some(v) = get("RECSHARD_SCALE") {
            cfg.scale = v.max(1);
        }
        if let Some(v) = get("RECSHARD_GPUS") {
            cfg.gpus = v.max(1) as usize;
        }
        if let Some(v) = get("RECSHARD_PROFILE_SAMPLES") {
            cfg.profile_samples = v.max(1) as usize;
        }
        if let Some(v) = get("RECSHARD_SIM_ITERS") {
            cfg.sim_iterations = v.max(1) as usize;
        }
        if let Some(v) = get("RECSHARD_SIM_BATCH") {
            cfg.sim_batch = v.max(1) as usize;
        }
        cfg
    }

    /// The scaled reference model for one of the paper's RMs.
    pub fn model(&self, kind: RmKind) -> ModelSpec {
        ModelSpec::reference(kind).scaled(self.scale)
    }

    /// The scaled 16-GPU (or overridden GPU count) evaluation system.
    pub fn system(&self) -> SystemSpec {
        SystemSpec::paper_with_gpus(self.gpus).scaled(self.scale)
    }

    /// The simulation configuration (results reported at the paper's batch
    /// size of 16,384).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            kernel_overhead_us_per_table: 8.0,
            scale_to_batch: Some(recshard_data::model::PAPER_BATCH_SIZE),
        }
    }
}

/// The four sharding strategies compared throughout Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Size-based greedy baseline (SB).
    SizeBased,
    /// Lookup-based greedy baseline (LB).
    LookupBased,
    /// Size-and-Lookup greedy baseline (SBL).
    SizeLookupBased,
    /// RecShard (the paper's contribution).
    RecShard,
}

impl Strategy {
    /// All strategies in the order the paper's tables list them.
    pub fn all() -> [Strategy; 4] {
        [Strategy::SizeBased, Strategy::LookupBased, Strategy::SizeLookupBased, Strategy::RecShard]
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::SizeBased => "Size-Based",
            Strategy::LookupBased => "Lookup-Based",
            Strategy::SizeLookupBased => "Size-Based-Lookup",
            Strategy::RecShard => "RecShard",
        }
    }

    /// Produces this strategy's plan.
    ///
    /// # Panics
    ///
    /// Panics if the strategy cannot place the model on the system (the
    /// experiment configurations are chosen so it always can).
    pub fn plan(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> ShardingPlan {
        match self {
            Strategy::SizeBased => GreedySharder::new(SizeCost)
                .shard(model, profile, system)
                .expect("size-based sharding failed"),
            Strategy::LookupBased => GreedySharder::new(LookupCost)
                .shard(model, profile, system)
                .expect("lookup-based sharding failed"),
            Strategy::SizeLookupBased => GreedySharder::new(SizeLookupCost)
                .shard(model, profile, system)
                .expect("size-lookup sharding failed"),
            Strategy::RecShard => RecShard::new(RecShardConfig::default())
                .plan(model, profile, system)
                .expect("recshard sharding failed"),
        }
    }
}

/// The profile, plans and simulated run reports of one model under all four
/// strategies.
#[derive(Debug, Clone)]
pub struct StrategyComparison {
    /// Which reference model was evaluated.
    pub kind: RmKind,
    /// The profile used by every strategy.
    pub profile: DatasetProfile,
    /// `(strategy, plan, simulated run report)` for each strategy.
    pub results: Vec<(Strategy, ShardingPlan, RunReport)>,
}

impl StrategyComparison {
    /// The result entry of one strategy.
    pub fn result(&self, strategy: Strategy) -> &(Strategy, ShardingPlan, RunReport) {
        self.results
            .iter()
            .find(|(s, _, _)| *s == strategy)
            .expect("strategy present")
    }
}

/// Profiles a reference model and runs the full strategy comparison
/// (Tables 3–5, Figures 11–13 all consume this).
pub fn compare_strategies(kind: RmKind, cfg: &ExperimentConfig) -> StrategyComparison {
    let model = cfg.model(kind);
    let system = cfg.system();
    let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);
    let results = Strategy::all()
        .into_iter()
        .map(|strategy| {
            let plan = strategy.plan(&model, &profile, &system);
            let mut sim =
                EmbeddingOpSimulator::new(&model, &plan, &profile, &system, cfg.sim_config());
            let report = sim.run(cfg.sim_iterations, cfg.sim_batch, cfg.seed ^ 0x5EED);
            (strategy, plan, report)
        })
        .collect();
    StrategyComparison { kind, profile, results }
}

/// Formats a number with thousands separators for table output.
pub fn fmt_count(value: f64) -> String {
    let v = value.round() as i128;
    let s = v.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    if v < 0 {
        format!("-{out}")
    } else {
        out
    }
}

/// Prints a Markdown-style table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_inserts_separators() {
        assert_eq!(fmt_count(1234567.0), "1,234,567");
        assert_eq!(fmt_count(12.4), "12");
        assert_eq!(fmt_count(0.0), "0");
    }

    #[test]
    fn tiny_experiment_runs_all_strategies() {
        let cfg = ExperimentConfig::tiny();
        let cmp = compare_strategies(RmKind::Rm1, &cfg);
        assert_eq!(cmp.results.len(), 4);
        for (_, plan, report) in &cmp.results {
            assert_eq!(plan.num_gpus(), cfg.gpus);
            assert!(report.iteration_time_ms() > 0.0);
        }
        // RecShard never loses to the worst baseline on iteration time.
        let worst_baseline = cmp
            .results
            .iter()
            .filter(|(s, _, _)| *s != Strategy::RecShard)
            .map(|(_, _, r)| r.iteration_time_ms())
            .fold(0.0f64, f64::max);
        let recshard = cmp.result(Strategy::RecShard).2.iteration_time_ms();
        assert!(recshard <= worst_baseline * 1.2);
    }

    #[test]
    fn strategy_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            Strategy::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
