//! Hierarchical two-level sharding: tables → nodes → GPUs.
//!
//! Production clusters are grids of multi-GPU hosts, and the inter-node
//! all-to-all is an order of magnitude slower than intra-node NVLink — so
//! the placement problem decomposes naturally:
//!
//! 1. **Tables → nodes** — [`NodeAssigner`] balances the expected pooled
//!    output bytes each node must ship through the inter-node fabric
//!    (capacity-aware LPT over nodes), minimising the bottleneck node's
//!    all-to-all send volume.
//! 2. **Per-node placement → GPUs** — each node's tables become an
//!    independent sub-problem over `gpus_per_node` GPUs, solved with the
//!    exact warm-started MILP when the sub-problem is small enough and the
//!    bucketed [`ScalableSolver`] otherwise.
//!
//! The merged [`ShardingPlan`] uses node-major global GPU ids and carries
//! its [`NodeTopology`], which `recshard-des`, `recshard-serve` and
//! `recshard-memsim` route through (inter-node exchange bandwidth, remote
//! fan-in hops, inter-node byte estimates).

use crate::bucketing::BucketingConfig;
use crate::config::RecShardConfig;
use crate::error::RecShardError;
use crate::formulation::MilpFormulation;
use crate::scalable::ScalableSolver;
use recshard_data::{FeatureId, ModelSpec};
use recshard_sharding::{
    NodeAssigner, NodeAssignment, NodeTopology, ShardingPlan, SystemSpec, TablePlacement,
};
use recshard_stats::{DatasetProfile, FeatureProfile};

/// Tuning of the hierarchical solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalConfig {
    /// Per-node sub-problems with at most this many tables are solved with
    /// the exact warm-started MILP; larger ones use the scalable solver.
    pub per_node_exact_max_tables: usize,
    /// ICDF step count used for the exact per-node MILP (kept small so the
    /// formulation stays tractable).
    pub per_node_exact_icdf_steps: usize,
    /// Bucketing tuning of the scalable per-node path.
    pub bucketing: BucketingConfig,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        Self {
            per_node_exact_max_tables: 4,
            per_node_exact_icdf_steps: 6,
            bucketing: BucketingConfig::default(),
        }
    }
}

/// The two-level solver.
#[derive(Debug, Clone)]
pub struct HierarchicalSolver {
    config: RecShardConfig,
    topology: NodeTopology,
    hier: HierarchicalConfig,
}

impl HierarchicalSolver {
    /// Creates a solver for the given node grid.
    pub fn new(config: RecShardConfig, topology: NodeTopology) -> Self {
        Self {
            config,
            topology,
            hier: HierarchicalConfig::default(),
        }
    }

    /// Overrides the hierarchical tuning.
    pub fn with_hierarchical_config(mut self, hier: HierarchicalConfig) -> Self {
        self.hier = hier;
        self
    }

    /// The node grid this solver targets.
    pub fn topology(&self) -> NodeTopology {
        self.topology
    }

    /// Level 1 only: the table→node assignment this solver would use.
    ///
    /// # Errors
    ///
    /// See [`NodeAssigner::assign`].
    pub fn assign_nodes(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> Result<NodeAssignment, RecShardError> {
        Ok(NodeAssigner.assign(model, profile, system, self.topology)?)
    }

    /// Solves the full two-level placement.
    ///
    /// # Errors
    ///
    /// Propagates node-assignment and per-node solver errors
    /// (see [`RecShardError`]).
    ///
    /// # Panics
    ///
    /// Panics if the topology and system disagree on the GPU count.
    pub fn solve(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> Result<ShardingPlan, RecShardError> {
        self.solve_observed(model, profile, system, &mut recshard_obs::ObsHandle::noop())
    }

    /// Like [`solve`](Self::solve), recording one
    /// [`TraceEvent::NodeSolve`](recshard_obs::TraceEvent::NodeSolve) per
    /// per-node sub-problem (tables, GPUs, exact-vs-scalable backend) and
    /// forwarding the sub-solver's own events into `obs`. The solve itself
    /// is observation-independent.
    ///
    /// # Errors
    ///
    /// See [`solve`](Self::solve).
    ///
    /// # Panics
    ///
    /// Panics if the topology and system disagree on the GPU count.
    pub fn solve_observed(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
        obs: &mut recshard_obs::ObsHandle<'_>,
    ) -> Result<ShardingPlan, RecShardError> {
        assert_eq!(
            self.topology.num_gpus(),
            system.num_gpus(),
            "topology covers {} GPUs but the system has {}",
            self.topology.num_gpus(),
            system.num_gpus()
        );
        self.config
            .validate()
            .map_err(RecShardError::InvalidConfig)?;
        let assignment = self.assign_nodes(model, profile, system)?;

        let mut placements: Vec<Option<TablePlacement>> = vec![None; model.num_features()];
        for node in 0..self.topology.num_nodes {
            let tables = assignment.tables_on_node(node);
            if tables.is_empty() {
                continue;
            }
            // The per-node sub-cluster keeps each local GPU's actual device
            // class but re-indexes onto the classes actually present on the
            // node (first-appearance order), so the sub-solve's reference
            // class is always a local one — a node made entirely of the
            // slow SKU must not price its phase-1 splits under the fast
            // SKU's bandwidths. A uniform cluster reproduces the historical
            // uniform slice exactly.
            let mut local_of_global: Vec<Option<usize>> = vec![None; system.num_classes()];
            let mut local_classes = Vec::new();
            let local_assignment: Vec<usize> = self
                .topology
                .gpus_of_node(node)
                .map(|g| {
                    let global = system.class_of(g);
                    *local_of_global[global].get_or_insert_with(|| {
                        local_classes.push(system.classes()[global]);
                        local_classes.len() - 1
                    })
                })
                .collect();
            let node_system = SystemSpec::with_classes(local_classes, local_assignment);
            let (sub_model, sub_profile) = subproblem(model, profile, &tables);
            let exact = tables.len() <= self.hier.per_node_exact_max_tables;
            obs.record(
                node as u64,
                recshard_obs::TraceEvent::NodeSolve {
                    node: node as u32,
                    tables: tables.len() as u64,
                    gpus: self.topology.gpus_per_node as u64,
                    exact,
                },
            );
            let sub_plan = if exact {
                MilpFormulation::new(
                    self.config
                        .with_icdf_steps(self.hier.per_node_exact_icdf_steps),
                )
                .solve_observed(
                    &sub_model,
                    &sub_profile,
                    &node_system,
                    recshard_milp::SolveOptions::default(),
                    &mut obs.reborrow(),
                )?
            } else {
                ScalableSolver::with_bucketing(self.config, self.hier.bucketing)
                    .solve_report_observed(
                        &sub_model,
                        &sub_profile,
                        &node_system,
                        &mut obs.reborrow(),
                    )?
                    .plan
            };
            let base_gpu = node * self.topology.gpus_per_node;
            for (local, placement) in sub_plan.placements().iter().enumerate() {
                let global_table = tables[local];
                placements[global_table] = Some(TablePlacement {
                    table: FeatureId(global_table as u32),
                    gpu: base_gpu + placement.gpu,
                    ..*placement
                });
            }
        }

        let placements = placements
            .into_iter()
            .map(|p| p.expect("every table placed by its node"))
            .collect();
        let plan = ShardingPlan::new("recshard-hierarchical", system.num_gpus(), placements)
            .with_topology(self.topology);
        debug_assert!(plan.validate(model, system).is_ok());
        Ok(plan)
    }
}

/// Builds the reindexed sub-model/sub-profile of one node's tables
/// (`tables` in ascending dense order).
fn subproblem(
    model: &ModelSpec,
    profile: &DatasetProfile,
    tables: &[usize],
) -> (ModelSpec, DatasetProfile) {
    let features = tables
        .iter()
        .enumerate()
        .map(|(local, &t)| {
            let mut spec = model.features()[t].clone();
            spec.id = FeatureId(local as u32);
            spec
        })
        .collect();
    let profiles: Vec<FeatureProfile> = tables
        .iter()
        .enumerate()
        .map(|(local, &t)| {
            let mut p = profile.profiles()[t].clone();
            p.id = FeatureId(local as u32);
            p
        })
        .collect();
    let sub_model = ModelSpec::new(
        format!("{}-node-sub", model.name()),
        recshard_data::RmKind::Custom,
        features,
        model.batch_size(),
    );
    let sub_profile = DatasetProfile::new(profiles, profile.samples_profiled());
    (sub_model, sub_profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_stats::DatasetProfiler;

    fn setup(n: usize, seed: u64) -> (ModelSpec, DatasetProfile) {
        let model = ModelSpec::small(n, seed);
        let profile = DatasetProfiler::profile_model(&model, 1_500, seed + 1);
        (model, profile)
    }

    #[test]
    fn two_level_plan_is_valid_and_node_annotated() {
        let (model, profile) = setup(12, 5);
        let topology = NodeTopology::new(2, 2);
        let system = SystemSpec::uniform(
            4,
            model.total_bytes() / 8,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let plan = HierarchicalSolver::new(RecShardConfig::default(), topology)
            .solve(&model, &profile, &system)
            .unwrap();
        plan.validate(&model, &system).unwrap();
        assert_eq!(plan.topology(), Some(topology));
        assert_eq!(plan.strategy(), "recshard-hierarchical");
        // Node assignments derived from GPU ids must be in range.
        for &node in &plan.node_assignments() {
            assert!(node < 2);
        }
        // Flattening drops the annotation but keeps a valid plan.
        let flat = plan.flatten();
        assert_eq!(flat.topology(), None);
        flat.validate(&model, &system).unwrap();
    }

    #[test]
    fn single_node_topology_matches_flat_solving() {
        let (model, profile) = setup(10, 9);
        let system = SystemSpec::uniform(
            2,
            model.total_bytes() / 6,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let hier = HierarchicalSolver::new(RecShardConfig::default(), NodeTopology::single(2))
            .solve(&model, &profile, &system)
            .unwrap();
        let flat = ScalableSolver::new(RecShardConfig::default())
            .solve(&model, &profile, &system)
            .unwrap();
        // One node means level 1 is trivial: the per-node solve sees the whole
        // problem, so the placements agree exactly.
        assert_eq!(hier.placements(), flat.placements());
    }

    #[test]
    fn tiny_nodes_use_the_exact_milp() {
        let (model, profile) = setup(6, 13);
        let topology = NodeTopology::new(2, 2);
        let system = SystemSpec::uniform(
            4,
            model.total_bytes() / 6,
            model.total_bytes() * 2,
            1555.0,
            16.0,
        );
        // 6 tables over 2 nodes → ≤4 tables per node (within the exact cap
        // when balanced; either way the plan must be valid and annotated).
        let plan = HierarchicalSolver::new(RecShardConfig::default(), topology)
            .solve(&model, &profile, &system)
            .unwrap();
        plan.validate(&model, &system).unwrap();
        assert_eq!(plan.topology(), Some(topology));
    }
}
