//! # recshard-milp
//!
//! A small, dependency-free mixed-integer linear programming (MILP) solver:
//! a dense-tableau Big-M simplex for linear programs plus best-first
//! branch-and-bound for integrality.
//!
//! The RecShard paper solves its embedding-table partitioning and placement
//! problem with Gurobi. Gurobi is proprietary and unavailable here, so this
//! crate provides the substrate needed to state the *exact same formulation*
//! (Section 4.2, constraints 1–12) and solve it exactly for small instances;
//! the `recshard` crate then layers a structured large-scale solver on top and
//! validates it against this exact solver.
//!
//! The solver targets problems with up to a few hundred variables and
//! constraints — more than enough for formulation-level ground truth — and is
//! not intended to compete with industrial solvers.
//!
//! ```
//! use recshard_milp::{ConstraintSense, Model, Sense, VarKind};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2, x,y >= 0 integer
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 3.0);
//! let y = m.add_var("y", VarKind::Integer, 0.0, f64::INFINITY, 2.0);
//! m.add_constraint("cap", vec![(x, 1.0), (y, 1.0)], ConstraintSense::Le, 4.0);
//! m.add_constraint("xcap", vec![(x, 1.0)], ConstraintSense::Le, 2.0);
//! let sol = m.solve().unwrap();
//! assert_eq!(sol.value(x).round() as i64, 2);
//! assert_eq!(sol.value(y).round() as i64, 2);
//! assert!((sol.objective() - 10.0).abs() < 1e-6);
//! ```
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod branch;
pub mod error;
pub mod model;
pub mod simplex;
pub mod solution;

pub use error::MilpError;
pub use model::{Constraint, ConstraintSense, Model, Sense, VarId, VarKind, Variable};
pub use solution::{Solution, SolveStats, Status};
