//! Property-based tests for the data substrate: hashing, Zipf sampling and
//! multi-hot sample generation.

use proptest::prelude::*;
use rand::SeedableRng;
use recshard_data::{FeatureHasher, ModelSpec, SampleGenerator, Zipf};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hash outputs always land inside the table and are deterministic.
    #[test]
    fn hash_in_range_and_deterministic(
        hash_size in 1u64..1_000_000,
        seed in any::<u64>(),
        values in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let h = FeatureHasher::new(hash_size, seed);
        for &v in &values {
            let r = h.hash(v);
            prop_assert!(r < hash_size);
            prop_assert_eq!(r, h.hash(v));
        }
    }

    /// Collision statistics are internally consistent: occupied rows never
    /// exceed either the input count or the hash size, and the derived
    /// fractions stay in [0, 1].
    #[test]
    fn collision_stats_are_consistent(
        hash_size in 1u64..50_000,
        n in 1usize..5_000,
        seed in any::<u64>(),
    ) {
        let h = FeatureHasher::new(hash_size, seed);
        let values: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let stats = h.collision_stats(&values);
        prop_assert!(stats.occupied_rows <= stats.distinct_inputs);
        prop_assert!(stats.occupied_rows <= stats.hash_size);
        for frac in [stats.usage(), stats.collision_fraction(), stats.sparsity()] {
            prop_assert!((0.0..=1.0).contains(&frac));
        }
        prop_assert!((stats.usage() + stats.sparsity() - 1.0).abs() < 1e-12);
    }

    /// Zipf samples always fall inside the support, for any exponent.
    #[test]
    fn zipf_samples_in_support(
        n in 1u64..1_000_000,
        s in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let zipf = Zipf::new(n, s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }

    /// Generated samples respect every structural invariant of their model:
    /// per-feature value lists are within cardinality and bounded by the
    /// pooling cap, and absent features are genuinely empty.
    #[test]
    fn samples_respect_model_invariants(
        n_features in 1usize..8,
        model_seed in 0u64..1_000,
        gen_seed in 0u64..1_000,
    ) {
        let model = ModelSpec::small(n_features, model_seed);
        let mut gen = SampleGenerator::new(&model, gen_seed);
        for sample in gen.batch(20) {
            prop_assert_eq!(sample.values.len(), n_features);
            for (spec, values) in model.features().iter().zip(&sample.values) {
                prop_assert!(values.len() <= spec.pooling.max() as usize);
                for &v in values {
                    prop_assert!(v < spec.cardinality);
                }
            }
        }
    }

    /// Scaling a model never breaks validation and preserves feature count.
    #[test]
    fn scaled_models_stay_valid(
        n_features in 1usize..10,
        seed in 0u64..500,
        factor in 1u64..100_000,
    ) {
        let model = ModelSpec::small(n_features, seed).scaled(factor);
        prop_assert_eq!(model.num_features(), n_features);
        for f in model.features() {
            prop_assert!(f.validate().is_ok());
            prop_assert!(f.hash_size >= 1);
        }
    }
}
