//! Sparse feature specifications.
//!
//! A [`FeatureSpec`] fully describes one sparse feature and its embedding
//! table: the raw categorical space (cardinality), the chosen hash size (the
//! embedding table's row count, Figure 4), the value-frequency skew, the
//! pooling-factor distribution (Figure 6a), the coverage (Figure 6b), and the
//! embedding vector geometry (dimension and element width).

use crate::hash::FeatureHasher;
use crate::pooling::PoolingSpec;
use crate::zipf::Zipf;
use serde::{Deserialize, Serialize};

/// Identifier of a sparse feature (and of its embedding table) within a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FeatureId(pub u32);

impl FeatureId {
    /// The feature's index, usable to address per-feature arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FeatureId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "feature-{}", self.0)
    }
}

/// High-level class of a sparse feature (Figure 9 groups features into these
/// two classes, which exhibit different temporal drift).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureClass {
    /// Features describing the user (location, demographics, history, ...).
    User,
    /// Features describing the content item being ranked.
    Content,
}

impl std::fmt::Display for FeatureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureClass::User => write!(f, "user"),
            FeatureClass::Content => write!(f, "content"),
        }
    }
}

/// Full description of one sparse feature and its embedding table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Feature identifier (also indexes the embedding table).
    pub id: FeatureId,
    /// Human-readable name.
    pub name: String,
    /// Whether the feature describes the user or the content.
    pub class: FeatureClass,
    /// Size of the raw categorical value space.
    pub cardinality: u64,
    /// Number of rows in the embedding table (hash output range).
    pub hash_size: u64,
    /// Strength of the value-frequency power law (0 = uniform).
    pub zipf_exponent: f64,
    /// Per-sample pooling-factor distribution.
    pub pooling: PoolingSpec,
    /// Probability the feature is present in a random training sample.
    pub coverage: f64,
    /// Embedding vector length.
    pub embedding_dim: u32,
    /// Bytes per embedding element (4 for `f32`).
    pub bytes_per_element: u32,
    /// Per-table hash seed.
    pub hash_seed: u64,
}

impl FeatureSpec {
    /// Validates internal consistency of the spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.cardinality == 0 {
            return Err(format!("{}: cardinality must be non-zero", self.id));
        }
        if self.hash_size == 0 {
            return Err(format!("{}: hash size must be non-zero", self.id));
        }
        if !(0.0..=1.0).contains(&self.coverage) {
            return Err(format!("{}: coverage must be in [0, 1]", self.id));
        }
        if self.zipf_exponent < 0.0 || !self.zipf_exponent.is_finite() {
            return Err(format!(
                "{}: zipf exponent must be finite and >= 0",
                self.id
            ));
        }
        if self.embedding_dim == 0 {
            return Err(format!("{}: embedding dimension must be non-zero", self.id));
        }
        if self.bytes_per_element == 0 {
            return Err(format!("{}: element width must be non-zero", self.id));
        }
        Ok(())
    }

    /// The hasher mapping this feature's raw values to embedding rows.
    pub fn hasher(&self) -> FeatureHasher {
        FeatureHasher::new(self.hash_size, self.hash_seed)
    }

    /// The value sampler for this feature's raw categorical space.
    pub fn value_distribution(&self) -> Zipf {
        Zipf::new(self.cardinality, self.zipf_exponent)
    }

    /// Bytes of one embedding row.
    pub fn row_bytes(&self) -> u64 {
        self.embedding_dim as u64 * self.bytes_per_element as u64
    }

    /// Total bytes of the embedding table (`hash_size * dim * bytes`,
    /// Constraint 8 of the paper's MILP).
    pub fn table_bytes(&self) -> u64 {
        self.hash_size * self.row_bytes()
    }

    /// Average pooling factor of the feature.
    pub fn avg_pooling(&self) -> f64 {
        self.pooling.mean()
    }

    /// Expected embedding rows read per training sample
    /// (`coverage * avg_pooling`), the per-sample bandwidth proxy of
    /// Section 3.2/3.3.
    pub fn expected_lookups_per_sample(&self) -> f64 {
        self.coverage * self.avg_pooling()
    }

    /// Returns a copy with every size-like quantity divided by `factor`
    /// (cardinality and hash size), preserving all distributional shape
    /// parameters. Used to scale production-sized models down to
    /// simulator-friendly sizes; see `ModelSpec::scaled`.
    pub fn scaled(&self, factor: u64) -> FeatureSpec {
        assert!(factor > 0, "scale factor must be non-zero");
        let mut spec = self.clone();
        spec.cardinality = (self.cardinality / factor).max(1);
        spec.hash_size = (self.hash_size / factor).max(1);
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FeatureSpec {
        FeatureSpec {
            id: FeatureId(3),
            name: "user_pages_viewed".into(),
            class: FeatureClass::User,
            cardinality: 1_000_000,
            hash_size: 1_500_000,
            zipf_exponent: 1.05,
            pooling: PoolingSpec::long_tail(20.0),
            coverage: 0.8,
            embedding_dim: 64,
            bytes_per_element: 4,
            hash_seed: 3,
        }
    }

    #[test]
    fn geometry_math() {
        let s = spec();
        assert_eq!(s.row_bytes(), 256);
        assert_eq!(s.table_bytes(), 1_500_000 * 256);
        assert!((s.expected_lookups_per_sample() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_errors() {
        let mut s = spec();
        assert!(s.validate().is_ok());
        s.coverage = 1.5;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.hash_size = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.zipf_exponent = f64::NAN;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.embedding_dim = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn scaling_preserves_shape() {
        let s = spec();
        let scaled = s.scaled(100);
        assert_eq!(scaled.cardinality, 10_000);
        assert_eq!(scaled.hash_size, 15_000);
        assert_eq!(scaled.zipf_exponent, s.zipf_exponent);
        assert_eq!(scaled.coverage, s.coverage);
        assert_eq!(scaled.embedding_dim, s.embedding_dim);
        // Tiny tables never scale to zero rows.
        assert_eq!(s.scaled(u64::MAX).hash_size, 1);
    }

    #[test]
    fn display_impls() {
        assert_eq!(FeatureId(5).to_string(), "feature-5");
        assert_eq!(FeatureClass::User.to_string(), "user");
        assert_eq!(FeatureClass::Content.to_string(), "content");
    }
}
