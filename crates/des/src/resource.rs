//! Shared-rate (processor-sharing) contended links.
//!
//! A [`SharedRateResource`] models one link — a GPU's HBM channel, its UVM
//! path, its NVLink egress, or a node's inter-node fabric port — whose rate
//! is split equally among all in-flight transfers. Admitting or completing a
//! transfer changes every other tenant's effective rate, so remaining
//! service is re-estimated *in integer virtual time* at each tenancy change:
//! a transfer's outstanding work is held in fixed-point work units
//! ([`WORK_UNITS_PER_NS`] units ≙ one nanosecond of solo service) and drains
//! at `⌊Δt · units/ns ÷ n⌋` per wall nanosecond when `n` tenants share the
//! link. All arithmetic is integer, completions tie-break on admission
//! sequence, and the drain loop never skips over a completion — so runs are
//! bit-deterministic and total served work exactly equals total admitted
//! work once the link drains (the conservation property the proptests pin).
//!
//! The simulator couples this to its event queue with a generation counter:
//! every tenancy change bumps [`SharedRateResource::generation`], and a
//! wake-up event scheduled for an earlier generation is simply ignored when
//! popped (lazy invalidation — cheaper than deleting from the heap and just
//! as deterministic).

/// Fixed-point work units per nanosecond of solo (uncontended) service.
///
/// With `n ≤ 2^10` tenants and transfers up to `u64::MAX` ns, intermediate
/// products stay below `2^94`, comfortably inside `u128`; quantization loss
/// per re-estimation is under `n / 2^20` ns — far below the nanosecond
/// resolution of the event clock.
pub const WORK_UNITS_PER_NS: u64 = 1 << 20;

/// One in-flight transfer on a shared-rate link.
#[derive(Debug, Clone)]
struct Tenant<T> {
    seq: u64,
    /// Outstanding service in fixed-point work units.
    remaining: u128,
    work_ns: u64,
    admitted_ns: u64,
    tenants_at_admit: usize,
    payload: T,
}

/// A transfer that finished service on a shared-rate link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedTransfer<T> {
    /// The payload supplied at admission.
    pub payload: T,
    /// Admission sequence number on this link (the deterministic tie-break).
    pub seq: u64,
    /// Virtual time the transfer was admitted, ns.
    pub admitted_ns: u64,
    /// Virtual time the transfer completed, ns.
    pub completed_ns: u64,
    /// Solo (uncontended) service time of the transfer, ns.
    pub work_ns: u64,
    /// Number of tenants sharing the link the moment this one was admitted
    /// (including itself).
    pub tenants_at_admit: usize,
}

impl<T> CompletedTransfer<T> {
    /// Wall time the transfer spent on the link, ns.
    pub fn elapsed_ns(&self) -> u64 {
        self.completed_ns - self.admitted_ns
    }

    /// Slowdown relative to solo service (1.0 = uncontended). Defined as 1
    /// for zero-work transfers.
    pub fn stretch(&self) -> f64 {
        if self.work_ns == 0 {
            1.0
        } else {
            self.elapsed_ns() as f64 / self.work_ns as f64
        }
    }
}

/// A processor-sharing link: all in-flight transfers drain at `rate / n`.
///
/// The link is rate-normalised: callers convert bytes to *solo service
/// nanoseconds* (`bytes / link_bandwidth`) before admission, so one resource
/// type serves HBM, UVM, NVLink and fabric links alike.
#[derive(Debug, Clone)]
pub struct SharedRateResource<T> {
    tenants: Vec<Tenant<T>>,
    last_update_ns: u64,
    next_seq: u64,
    generation: u64,
    admitted_units: u128,
    served_units: u128,
    completed_transfers: u64,
    peak_tenants: usize,
}

impl<T> Default for SharedRateResource<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SharedRateResource<T> {
    /// An idle link at virtual time zero.
    pub fn new() -> Self {
        Self {
            tenants: Vec::new(),
            last_update_ns: 0,
            next_seq: 0,
            generation: 0,
            admitted_units: 0,
            served_units: 0,
            completed_transfers: 0,
            peak_tenants: 0,
        }
    }

    /// Advances the link's clock to `now_ns`, draining every tenant's
    /// outstanding work at the equal-share rate, and returns the transfers
    /// that completed — in completion-time order, admission order within a
    /// tie.
    ///
    /// The drain loop steps from completion to completion, so the share is
    /// re-divided the instant a tenant leaves even when the caller advances
    /// across several completions at once (the earliest-wake-up event the
    /// simulator schedules makes that rare, but the resource does not rely
    /// on it).
    ///
    /// # Panics
    ///
    /// Panics if `now_ns` is earlier than the last update (a causality bug).
    pub fn advance(&mut self, now_ns: u64) -> Vec<CompletedTransfer<T>> {
        assert!(
            now_ns >= self.last_update_ns,
            "shared-rate link clock went backwards ({now_ns} < {})",
            self.last_update_ns
        );
        let mut finished = Vec::new();
        loop {
            // Sweep out tenants that have reached zero outstanding work;
            // they complete at the current link clock.
            let mut i = 0;
            while i < self.tenants.len() {
                if self.tenants[i].remaining == 0 {
                    let t = self.tenants.remove(i);
                    finished.push(CompletedTransfer {
                        payload: t.payload,
                        seq: t.seq,
                        admitted_ns: t.admitted_ns,
                        completed_ns: self.last_update_ns,
                        work_ns: t.work_ns,
                        tenants_at_admit: t.tenants_at_admit,
                    });
                } else {
                    i += 1;
                }
            }
            if self.tenants.is_empty() || self.last_update_ns == now_ns {
                break;
            }
            let n = self.tenants.len() as u128;
            let min_remaining = self
                .tenants
                .iter()
                .map(|t| t.remaining)
                .min()
                // recshard-lint: allow(unwrap) -- the empty case broke out of
                // the loop just above.
                .expect("non-empty tenant set");
            // Nanoseconds until the earliest tenant would finish at the
            // current share; ≥ 1 because min_remaining > 0 here.
            let to_next = div_ceil(min_remaining * n, WORK_UNITS_PER_NS as u128);
            let dt = u128::from(now_ns - self.last_update_ns).min(to_next);
            let drain = dt * u128::from(WORK_UNITS_PER_NS) / n;
            for t in &mut self.tenants {
                let d = drain.min(t.remaining);
                t.remaining -= d;
                self.served_units += d;
            }
            self.last_update_ns += dt as u64;
        }
        self.last_update_ns = now_ns;
        if !finished.is_empty() {
            self.generation += 1;
            self.completed_transfers += finished.len() as u64;
        }
        finished
    }

    /// Admits a transfer needing `work_ns` of solo service, returning its
    /// admission sequence number. Bumps the generation (any previously
    /// scheduled wake-up is now stale).
    ///
    /// Callers must [`advance`](Self::advance) the link to `now_ns` first so
    /// existing tenants are charged at the *old* share for the elapsed
    /// interval.
    pub fn admit(&mut self, now_ns: u64, work_ns: u64, payload: T) -> u64 {
        debug_assert_eq!(
            now_ns, self.last_update_ns,
            "admit without advancing the link clock first"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let remaining = u128::from(work_ns) * u128::from(WORK_UNITS_PER_NS);
        self.admitted_units += remaining;
        self.tenants.push(Tenant {
            seq,
            remaining,
            work_ns,
            admitted_ns: now_ns,
            tenants_at_admit: self.tenants.len() + 1,
            payload,
        });
        self.peak_tenants = self.peak_tenants.max(self.tenants.len());
        self.generation += 1;
        seq
    }

    /// Nanoseconds until the earliest in-flight transfer completes at the
    /// current tenancy, or `None` when the link is idle. Zero-work tenants
    /// report a zero delay (they complete at the next [`advance`](Self::advance)).
    pub fn next_completion_delay(&self) -> Option<u64> {
        let n = self.tenants.len() as u128;
        self.tenants
            .iter()
            .map(|t| div_ceil(t.remaining * n, WORK_UNITS_PER_NS as u128) as u64)
            .min()
    }

    /// The tenancy-change generation; wake-ups scheduled under an older
    /// generation are stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of transfers currently in flight.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no transfer is in flight.
    pub fn is_idle(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Total work units ever admitted.
    pub fn admitted_units(&self) -> u128 {
        self.admitted_units
    }

    /// Total work units served so far.
    pub fn served_units(&self) -> u128 {
        self.served_units
    }

    /// Work units still outstanding across all tenants.
    pub fn pending_units(&self) -> u128 {
        self.tenants.iter().map(|t| t.remaining).sum()
    }

    /// Number of transfers that have completed service.
    pub fn completed_transfers(&self) -> u64 {
        self.completed_transfers
    }

    /// The largest number of simultaneous tenants ever observed.
    pub fn peak_tenants(&self) -> usize {
        self.peak_tenants
    }
}

fn div_ceil(a: u128, b: u128) -> u128 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_transfer_takes_exactly_its_work() {
        let mut link = SharedRateResource::new();
        link.admit(0, 100, "a");
        assert_eq!(link.next_completion_delay(), Some(100));
        let done = link.advance(100);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].payload, "a");
        assert_eq!(done[0].completed_ns, 100);
        assert_eq!(done[0].elapsed_ns(), 100);
        assert!((done[0].stretch() - 1.0).abs() < 1e-12);
        assert!(link.is_idle());
        assert_eq!(link.served_units(), link.admitted_units());
    }

    #[test]
    fn equal_tenants_halve_the_rate_and_tie_break_on_admission() {
        let mut link = SharedRateResource::new();
        link.admit(0, 100, 1u32);
        link.admit(0, 100, 2u32);
        assert_eq!(link.next_completion_delay(), Some(200));
        let done = link.advance(200);
        assert_eq!(done.len(), 2);
        // Same completion time: admission order breaks the tie.
        assert_eq!((done[0].payload, done[1].payload), (1, 2));
        assert_eq!(done[0].completed_ns, 200);
        assert_eq!(done[1].completed_ns, 200);
        assert_eq!(link.peak_tenants(), 2);
    }

    #[test]
    fn late_admit_re_estimates_remaining_service() {
        let mut link = SharedRateResource::new();
        link.admit(0, 100, "a");
        let g0 = link.generation();
        // At t=50 "a" has 50 ns of solo work left; "b" joins.
        assert!(link.advance(50).is_empty());
        link.admit(50, 100, "b");
        assert!(link.generation() > g0, "admit must bump the generation");
        // Both now drain at half rate: "a" needs 100 more wall ns.
        assert_eq!(link.next_completion_delay(), Some(100));
        let done = link.advance(150);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].payload, "a");
        assert_eq!(done[0].elapsed_ns(), 150);
        assert!((done[0].stretch() - 1.5).abs() < 1e-12);
        // "b" drains solo afterwards: 50 ns of work left.
        assert_eq!(link.next_completion_delay(), Some(50));
        let done = link.advance(200);
        assert_eq!(done[0].payload, "b");
        assert_eq!(done[0].elapsed_ns(), 150);
        assert_eq!(link.served_units(), link.admitted_units());
    }

    #[test]
    fn advance_across_several_completions_redivides_the_share() {
        let mut link = SharedRateResource::new();
        link.admit(0, 30, "short");
        link.admit(0, 90, "long");
        // One big jump straight past both completions: "short" finishes at
        // 60 (half rate), then "long" drains solo and finishes at 120.
        let done = link.advance(500);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].payload, "short");
        assert_eq!(done[0].completed_ns, 60);
        assert_eq!(done[1].payload, "long");
        assert_eq!(done[1].completed_ns, 120);
        assert_eq!(link.served_units(), link.admitted_units());
    }

    #[test]
    fn zero_work_transfer_completes_immediately() {
        let mut link = SharedRateResource::new();
        link.admit(0, 0, "empty");
        assert_eq!(link.next_completion_delay(), Some(0));
        let done = link.advance(0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].elapsed_ns(), 0);
        assert!((done[0].stretch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generation_marks_every_tenancy_change() {
        let mut link = SharedRateResource::new();
        let g0 = link.generation();
        link.admit(0, 10, ());
        let g1 = link.generation();
        assert!(g1 > g0);
        // Pure time passage without completions does not invalidate.
        assert!(link.advance(5).is_empty());
        assert_eq!(link.generation(), g1);
        assert_eq!(link.advance(20).len(), 1);
        assert!(link.generation() > g1);
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn clock_regression_panics() {
        let mut link: SharedRateResource<()> = SharedRateResource::new();
        link.advance(100);
        link.advance(50);
    }
}
