//! # recshard-milp
//!
//! A small, dependency-free mixed-integer linear programming (MILP) solver:
//! a sparse bounded-variable revised simplex with dual-simplex warm starts
//! ([`sparse`]) drives best-first branch-and-bound with incumbent pruning
//! ([`branch`]); each node re-optimises from its parent's basis in a handful
//! of dual pivots instead of re-solving from scratch. A dense-tableau Big-M
//! primal simplex ([`simplex`]) remains as the fallback for models outside
//! the sparse solver's dual-feasible-start scope.
//!
//! The RecShard paper solves its embedding-table partitioning and placement
//! problem with Gurobi. Gurobi is proprietary and unavailable here, so this
//! crate provides the substrate needed to state the *exact same formulation*
//! (Section 4.2, constraints 1–12) and solve it exactly for small instances;
//! the `recshard` crate then layers the structured and bucketed large-scale
//! solvers on top and validates them against this exact solver.
//!
//! ```
//! use recshard_milp::{ConstraintSense, Model, Sense, VarKind};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2, x,y >= 0 integer
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 3.0);
//! let y = m.add_var("y", VarKind::Integer, 0.0, f64::INFINITY, 2.0);
//! m.add_constraint("cap", vec![(x, 1.0), (y, 1.0)], ConstraintSense::Le, 4.0);
//! m.add_constraint("xcap", vec![(x, 1.0)], ConstraintSense::Le, 2.0);
//! let sol = m.solve().unwrap();
//! assert_eq!(sol.value(x).round() as i64, 2);
//! assert_eq!(sol.value(y).round() as i64, 2);
//! assert!((sol.objective() - 10.0).abs() < 1e-6);
//! ```
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod branch;
pub mod error;
pub mod model;
pub mod simplex;
pub mod solution;
pub mod sparse;

pub use branch::SolveOptions;
pub use error::MilpError;
pub use model::{Constraint, ConstraintSense, Model, Sense, VarId, VarKind, Variable};
pub use solution::{Solution, SolveStats, Status};
pub use sparse::{BasisSnapshot, SparseLp, SparseLpSolution, VarStatus};
