//! # recshard-dlrm
//!
//! A from-scratch DLRM (deep learning recommendation model) substrate used by
//! the RecShard reproduction for end-to-end examples and the Amdahl's-law
//! end-to-end analysis (Section 6.4 of the paper).
//!
//! The model follows the canonical architecture of Figure 2: dense features
//! pass through a bottom MLP, sparse features are looked up in embedding
//! tables and sum-pooled, a dot-product feature interaction combines both,
//! and a top MLP produces the click-through-rate (CTR) prediction trained
//! with binary cross-entropy.
//!
//! Numerical training is real (small embedding dimensions, plain `f32`
//! arithmetic, SGD); the memory behaviour of production-scale tables is
//! simulated by `recshard-memsim`. [`HybridParallelTrainer`] combines both:
//! it trains a real (small) DLRM while charging each training step the
//! embedding-operator time a given sharding plan would incur on the simulated
//! tiered-memory system — which is how the examples demonstrate RecShard's
//! end-to-end effect.
//!
//! ```
//! use recshard_data::ModelSpec;
//! use recshard_dlrm::{DlrmConfig, DlrmModel};
//!
//! let spec = ModelSpec::small(4, 1).scaled(16);
//! let emb_dim = spec.features()[0].embedding_dim as usize;
//! let config = DlrmConfig::new(8, vec![16, emb_dim], vec![16, 8, 1]);
//! let mut model = DlrmModel::new(&spec, &config, 42);
//! // One training step on a tiny synthetic batch.
//! let mut gen = recshard_data::SampleGenerator::new(&spec, 7);
//! let batch = gen.batch(16);
//! let dense: Vec<Vec<f32>> = (0..16).map(|i| vec![i as f32 / 16.0; 8]).collect();
//! let labels = vec![0.0; 16];
//! let loss = model.train_step(&dense, &batch, &labels, 0.01);
//! assert!(loss.is_finite());
//! ```
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod embedding;
pub mod interaction;
pub mod mlp;
pub mod model;
pub mod tensor;
pub mod trainer;

pub use embedding::EmbeddingBag;
pub use interaction::dot_interaction;
pub use mlp::Mlp;
pub use model::{DlrmConfig, DlrmModel};
pub use tensor::Matrix;
pub use trainer::{HybridParallelTrainer, TrainingStepReport};
