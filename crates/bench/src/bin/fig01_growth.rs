//! Figure 1: DLRM memory-capacity and bandwidth demand growth (2017–2021)
//! versus the growth of accelerator HBM capacity and interconnect bandwidth.

#![allow(clippy::print_stdout)]
use recshard_data::{GrowthTrend, HardwareCatalog};

fn main() {
    let trend = GrowthTrend::paper_window();
    let hw = HardwareCatalog::paper_window();

    println!("# Figure 1a: DLRM memory requirement growth vs GPU HBM capacity");
    println!("| year | model capacity (norm.) | EMB rows (norm.) | bandwidth demand (norm.) |");
    println!("|------|------------------------|------------------|--------------------------|");
    for p in trend.points() {
        println!(
            "| {} | {:.2}x | {:.2}x | {:.2}x |",
            p.year, p.model_capacity_growth, p.emb_rows_growth, p.bandwidth_demand_growth
        );
    }
    println!();
    println!("# Figure 1b: training hardware over the same window");
    println!("| GPU | year | HBM capacity (GiB) | HBM BW (GB/s) | interconnect BW (GB/s) |");
    println!("|-----|------|--------------------|---------------|------------------------|");
    for g in hw.generations() {
        println!(
            "| {} | {} | {:.0} | {:.0} | {:.0} |",
            g.name, g.year, g.hbm_capacity_gib, g.hbm_bandwidth_gbps, g.interconnect_bandwidth_gbps
        );
    }
    println!();
    println!(
        "Demand grew {:.1}x (capacity) / {:.1}x (bandwidth) while GPU HBM capacity grew {:.1}x, \
         HBM bandwidth {:.1}x and interconnect bandwidth {:.1}x — the widening gap motivating RecShard.",
        trend.capacity_growth(),
        trend.bandwidth_growth(),
        hw.hbm_capacity_growth(),
        hw.hbm_bandwidth_growth(),
        hw.interconnect_growth()
    );
}
