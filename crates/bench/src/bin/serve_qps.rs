//! Online-serving comparison: placement × cache-policy matrix under
//! identical seeded request streams.
//!
//! This is the inference-side counterpart of `des_throughput`: instead of
//! replaying training iterations, a multi-threaded serving layer
//! (`recshard-serve`) answers batched embedding queries with each GPU
//! shard's HBM acting as a managed cache over UVM. The matrix crosses three
//! placements (hash, size-proportional greedy, RecShard) with three cache
//! policies (LRU, LFU, StatGuided — the profile-driven policy that pins
//! each table's rows above the CDF knee and gates admission of unprofiled
//! rows), all fed the *same* seeded Zipf request stream at the same
//! open-loop arrival rate.
//!
//! The claims this binary demonstrates (and asserts):
//!
//! * StatGuided on the RecShard placement strictly beats LRU on hash
//!   placement on both hit rate and p99 latency,
//! * the stat-guided run's measured hit rate is non-zero, and
//! * replaying the winning configuration with the same seed reproduces the
//!   identical report, fingerprint included.
//!
//! Environment overrides: `RECSHARD_GPUS` (default 4, min 2),
//! `RECSHARD_SERVE_REQUESTS` (default 20,000), `RECSHARD_SERVE_WARMUP`
//! (default 2,000), `RECSHARD_SERVE_BATCH` (default 8), `RECSHARD_SEED`.

#![allow(clippy::print_stdout)]
use recshard_bench::report::{determinism_report, env_u64, RunReport};
use recshard_bench::{print_row, skewed_model, Strategy};
use recshard_serve::{
    hash_placement, ArrivalModel, InferenceServer, PolicyKind, ServeConfig, ServeReport,
};
use recshard_sharding::{ShardingPlan, SystemSpec};
use recshard_stats::DatasetProfiler;

fn main() {
    let shards = env_u64("RECSHARD_GPUS", 4).max(2) as usize;
    let queries = env_u64("RECSHARD_SERVE_REQUESTS", 20_000) as u32;
    let warmup = env_u64("RECSHARD_SERVE_WARMUP", 2_000) as u32;
    let batch = env_u64("RECSHARD_SERVE_BATCH", 8).max(1) as usize;
    let seed = env_u64("RECSHARD_SEED", 0x5E21);

    let model = skewed_model(48);
    // Each shard's HBM cache holds ~1/24 of its fair share of the embedding
    // bytes; everything also lives in UVM. Which rows the cache keeps — and
    // which shard each table's traffic lands on — decides hit rate and tails.
    let system = SystemSpec::uniform(
        shards,
        model.total_bytes() / (24 * shards as u64),
        model.total_bytes(),
        1555.0,
        16.0,
    );
    let profile = DatasetProfiler::profile_model(&model, 12_000, seed);

    let placements: Vec<(&str, ShardingPlan)> = vec![
        ("hash", hash_placement(&model, shards)),
        ("size", Strategy::SizeBased.plan(&model, &profile, &system)),
        (
            "recshard",
            Strategy::RecShard.plan(&model, &profile, &system),
        ),
    ];

    let base = ServeConfig {
        queries,
        warmup,
        batch_size: batch,
        seed,
        ..ServeConfig::default()
    };
    let serve = |plan: &ShardingPlan, policy: PolicyKind, config: ServeConfig| -> ServeReport {
        InferenceServer::run(
            &model,
            plan,
            &profile,
            &system,
            ServeConfig { policy, ..config },
        )
    };

    // Calibrate the arrival rate: unloaded StatGuided-on-RecShard median
    // plus 10% headroom. Every cell of the matrix is served at this rate.
    let recshard_plan = &placements
        .iter()
        .find(|(name, _)| *name == "recshard")
        .expect("recshard placement present")
        .1;
    let unloaded = serve(
        recshard_plan,
        PolicyKind::StatGuided,
        ServeConfig {
            queries: 500,
            warmup: 200,
            arrival: ArrivalModel::FixedRate {
                interval_us: 1_000_000.0,
            },
            ..base
        },
    );
    let interval_us = unloaded.p50_ms * 1e3 * 1.10;
    let config = ServeConfig {
        arrival: ArrivalModel::FixedRate { interval_us },
        ..base
    };

    println!(
        "# Online serving: {} tables, {shards} GPU shards, {queries} queries \
         (batch {batch}, {warmup} warmup), arrivals every {interval_us:.1} µs \
         (identical stream per cell)",
        model.num_features()
    );
    println!(
        "# HBM cache per shard: {:.1} MiB ({:.0}% of a fair share of the model)",
        system.hbm_capacity(0) as f64 / (1 << 20) as f64,
        100.0 * system.hbm_capacity(0) as f64 / (model.total_bytes() as f64 / shards as f64)
    );
    println!();
    print_row(&[
        "placement".into(),
        "policy".into(),
        "hit rate".into(),
        "p50 ms".into(),
        "p95 ms".into(),
        "p99 ms".into(),
        "qps".into(),
    ]);
    print_row(&[
        "---".into(),
        "---".into(),
        "---".into(),
        "---".into(),
        "---".into(),
        "---".into(),
        "---".into(),
    ]);

    let mut results: Vec<(String, ServeReport)> = Vec::new();
    for (name, plan) in &placements {
        for policy in PolicyKind::all() {
            let r = serve(plan, policy, config);
            print_row(&[
                (*name).into(),
                policy.label().into(),
                format!("{:.1}%", r.hit_rate * 100.0),
                format!("{:.3}", r.p50_ms),
                format!("{:.3}", r.p95_ms),
                format!("{:.3}", r.p99_ms),
                format!("{:.0}", r.throughput_qps),
            ]);
            results.push((format!("{name}+{policy}"), r));
        }
    }

    let find = |label: &str| -> &ServeReport {
        &results.iter().find(|(l, _)| l == label).expect("cell").1
    };
    let best = find("recshard+StatGuided");
    let baseline = find("hash+LRU");

    // Determinism: replaying the winning cell with the same seed must
    // reproduce the identical report.
    let again = serve(recshard_plan, PolicyKind::StatGuided, config);
    assert_eq!(
        best, &again,
        "identical seed must reproduce the identical serving report"
    );
    println!();
    print!(
        "{}",
        determinism_report(
            "StatGuided-on-RecShard replay",
            best.fingerprint,
            again.fingerprint
        )
    );

    assert!(best.hit_rate > 0.0, "stat-guided hit rate must be non-zero");
    assert!(
        best.hit_rate > baseline.hit_rate,
        "StatGuided-on-RecShard hit rate {:.3} must strictly beat LRU-on-hash {:.3}",
        best.hit_rate,
        baseline.hit_rate
    );
    assert!(
        best.p99_ms < baseline.p99_ms,
        "StatGuided-on-RecShard p99 {:.3} ms must strictly beat LRU-on-hash {:.3} ms",
        best.p99_ms,
        baseline.p99_ms
    );
    let mut footer = RunReport::new("serve_qps: StatGuided-on-RecShard vs LRU-on-hash");
    footer
        .push(
            "hit rate",
            format!(
                "{:.1}% vs {:.1}%",
                best.hit_rate * 100.0,
                baseline.hit_rate * 100.0
            ),
        )
        .push(
            "p99 ms",
            format!("{:.3} vs {:.3}", best.p99_ms, baseline.p99_ms),
        )
        .push("wins on both", true);
    print!("{footer}");
    println!(
        "The profiled CDF knee pins {:.1} MiB of head rows per run and refuses \
         one-hit wonders, so tail traffic cannot churn the head out of HBM — the \
         serving-side payoff of the paper's statistical placement argument.",
        best.cache.pinned_bytes as f64 / (1 << 20) as f64
    );
}
