//! Multi-hot training sample generation.
//!
//! A training sample assigns to each sparse feature a (possibly empty) list of
//! raw categorical values; hashing those values yields the embedding rows the
//! sample reads (Figure 3 of the paper). The [`SampleGenerator`] draws samples
//! from a [`ModelSpec`](crate::ModelSpec)'s per-feature distributions:
//! presence is a Bernoulli draw with the feature's coverage, the list length
//! is drawn from the pooling-factor distribution, and the values themselves
//! are drawn from the feature's Zipf value distribution.

use crate::feature::FeatureId;
use crate::model::ModelSpec;
use crate::zipf::Zipf;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One training sample: for each feature, the list of raw categorical values
/// (empty when the feature is absent from the sample).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SparseSample {
    /// `values[f]` holds the raw (pre-hash) categorical values of feature `f`.
    pub values: Vec<Vec<u64>>,
}

impl SparseSample {
    /// Whether the given feature is present (non-NULL) in this sample.
    pub fn is_present(&self, feature: FeatureId) -> bool {
        !self.values[feature.index()].is_empty()
    }

    /// The sample pooling factor of the given feature (0 when absent).
    pub fn pooling_factor(&self, feature: FeatureId) -> usize {
        self.values[feature.index()].len()
    }

    /// Raw values of the given feature.
    pub fn feature_values(&self, feature: FeatureId) -> &[u64] {
        &self.values[feature.index()]
    }

    /// Total number of embedding lookups this sample induces across all tables.
    pub fn total_lookups(&self) -> usize {
        self.values.iter().map(Vec::len).sum()
    }
}

/// A batch of training samples.
pub type Batch = Vec<SparseSample>;

/// Deterministic, seedable generator of multi-hot training samples for a model.
///
/// ```
/// use recshard_data::{ModelSpec, SampleGenerator};
///
/// let model = ModelSpec::small(6, 1);
/// let mut gen = SampleGenerator::new(&model, 9);
/// let batch = gen.batch(32);
/// assert_eq!(batch.len(), 32);
/// assert_eq!(batch[0].values.len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct SampleGenerator {
    model: ModelSpec,
    value_dists: Vec<Zipf>,
    rng: rand::rngs::StdRng,
    samples_generated: u64,
}

impl SampleGenerator {
    /// Creates a generator for the given model with a fixed seed.
    pub fn new(model: &ModelSpec, seed: u64) -> Self {
        let value_dists = model
            .features()
            .iter()
            .map(|f| f.value_distribution())
            .collect();
        Self {
            model: model.clone(),
            value_dists,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            samples_generated: 0,
        }
    }

    /// The model this generator draws samples for.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// Number of samples generated so far.
    pub fn samples_generated(&self) -> u64 {
        self.samples_generated
    }

    /// Draws one training sample.
    pub fn sample(&mut self) -> SparseSample {
        self.samples_generated += 1;
        let mut values = Vec::with_capacity(self.model.num_features());
        for (f, dist) in self.model.features().iter().zip(&self.value_dists) {
            if self.rng.gen::<f64>() < f.coverage {
                let k = f.pooling.sample(&mut self.rng) as usize;
                let mut vals = Vec::with_capacity(k);
                for _ in 0..k {
                    vals.push(dist.sample(&mut self.rng));
                }
                values.push(vals);
            } else {
                values.push(Vec::new());
            }
        }
        SparseSample { values }
    }

    /// Draws a batch of `batch_size` samples.
    pub fn batch(&mut self, batch_size: usize) -> Batch {
        (0..batch_size).map(|_| self.sample()).collect()
    }

    /// Draws samples for a *single* feature only (much faster than full
    /// samples when profiling or characterising one feature). Returns the raw
    /// value lists of `num_samples` samples; absent samples yield empty lists.
    pub fn feature_samples(&mut self, feature: FeatureId, num_samples: usize) -> Vec<Vec<u64>> {
        let spec = self.model.feature(feature).clone();
        let dist = &self.value_dists[feature.index()];
        let mut out = Vec::with_capacity(num_samples);
        for _ in 0..num_samples {
            if self.rng.gen::<f64>() < spec.coverage {
                let k = spec.pooling.sample(&mut self.rng) as usize;
                out.push((0..k).map(|_| dist.sample(&mut self.rng)).collect());
            } else {
                out.push(Vec::new());
            }
        }
        out
    }

    /// Draws `num_lookups` *hashed* row indices for a single feature,
    /// ignoring presence/pooling (a pure access-stream view of the feature,
    /// used when only the post-hash frequency distribution matters).
    pub fn feature_row_stream(&mut self, feature: FeatureId, num_lookups: usize) -> Vec<u64> {
        let hasher = self.model.feature(feature).hasher();
        let dist = &self.value_dists[feature.index()];
        (0..num_lookups)
            .map(|_| hasher.hash(dist.sample(&mut self.rng)))
            .collect()
    }
}

/// An iterator adapter that yields an endless stream of samples.
#[derive(Debug)]
pub struct SampleStream {
    gen: SampleGenerator,
}

impl SampleStream {
    /// Creates an endless stream of samples for the model.
    pub fn new(model: &ModelSpec, seed: u64) -> Self {
        Self {
            gen: SampleGenerator::new(model, seed),
        }
    }
}

impl Iterator for SampleStream {
    type Item = SparseSample;

    fn next(&mut self) -> Option<SparseSample> {
        Some(self.gen.sample())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::FeatureId;

    #[test]
    fn sample_shape_matches_model() {
        let model = ModelSpec::small(8, 2);
        let mut gen = SampleGenerator::new(&model, 1);
        let s = gen.sample();
        assert_eq!(s.values.len(), 8);
    }

    #[test]
    fn coverage_controls_presence() {
        let mut model = ModelSpec::small(3, 3);
        // Force extreme coverages through a custom model.
        let mut feats = model.features().to_vec();
        feats[0].coverage = 1.0;
        feats[1].coverage = 0.0;
        feats[2].coverage = 0.5;
        model = ModelSpec::new("cov-test", crate::model::RmKind::Custom, feats, 64);
        let mut gen = SampleGenerator::new(&model, 5);
        let n = 2000;
        let batch = gen.batch(n);
        let present = |f: u32| batch.iter().filter(|s| s.is_present(FeatureId(f))).count();
        assert_eq!(present(0), n);
        assert_eq!(present(1), 0);
        let half = present(2) as f64 / n as f64;
        assert!(
            (half - 0.5).abs() < 0.05,
            "coverage 0.5 gave presence {half}"
        );
    }

    #[test]
    fn pooling_factor_respected() {
        let model = ModelSpec::small(5, 11);
        let mut gen = SampleGenerator::new(&model, 17);
        let batch = gen.batch(500);
        for s in &batch {
            for (i, f) in model.features().iter().enumerate() {
                let pf = s.values[i].len();
                assert!(pf <= f.pooling.max() as usize);
            }
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        let model = ModelSpec::small(6, 4);
        let a = SampleGenerator::new(&model, 123).batch(20);
        let b = SampleGenerator::new(&model, 123).batch(20);
        assert_eq!(a, b);
        let c = SampleGenerator::new(&model, 124).batch(20);
        assert_ne!(a, c);
    }

    #[test]
    fn values_within_cardinality() {
        let model = ModelSpec::small(4, 9);
        let mut gen = SampleGenerator::new(&model, 2);
        for s in gen.batch(200) {
            for (i, f) in model.features().iter().enumerate() {
                for &v in &s.values[i] {
                    assert!(v < f.cardinality);
                }
            }
        }
    }

    #[test]
    fn feature_row_stream_is_hashed() {
        let model = ModelSpec::small(4, 9);
        let mut gen = SampleGenerator::new(&model, 2);
        let rows = gen.feature_row_stream(FeatureId(1), 1000);
        let hs = model.feature(FeatureId(1)).hash_size;
        assert!(rows.iter().all(|&r| r < hs));
    }

    #[test]
    fn stream_iterator_yields() {
        let model = ModelSpec::small(3, 9);
        let stream = SampleStream::new(&model, 4);
        assert_eq!(stream.take(10).count(), 10);
    }

    #[test]
    fn total_lookups_counts_all_features() {
        let model = ModelSpec::small(3, 10);
        let mut gen = SampleGenerator::new(&model, 6);
        let s = gen.sample();
        let manual: usize = s.values.iter().map(Vec::len).sum();
        assert_eq!(s.total_lookups(), manual);
    }
}
