//! # recshard-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! RecShard paper's evaluation (Section 6), plus the Criterion benchmarks.
//!
//! Each `src/bin/*.rs` binary reproduces one table or figure; this library
//! holds the shared machinery: scaled-down reference models (RM1/RM2/RM3 and
//! the 16-GPU system, both divided by the same factor so capacity *pressure*
//! matches the paper), the four sharding strategies under comparison, and the
//! simulation driver that measures iteration times and per-tier access
//! counts.
//!
//! Absolute milliseconds differ from the paper's A100 testbed (the substrate
//! here is a simulator); the comparisons the paper draws — which strategy
//! wins, by what factor, how access counts shift between HBM and UVM — are
//! reproduced by these harnesses.

// The harness renders its human-readable report tables on stdout by design;
// machine-readable output goes to the BENCH_*.json artifacts instead.
#![allow(clippy::print_stdout)]

pub mod des_bench;
pub mod report;
pub mod scenario_bench;
pub mod solver_bench;

use recshard::{RecShard, RecShardConfig};
use recshard_data::{FeatureClass, FeatureId, FeatureSpec, ModelSpec, PoolingSpec, RmKind};
use recshard_des::{ArrivalProcess, ClusterConfig, ClusterSimulator, RunSummary};
use recshard_memsim::{AnalyticalEstimator, EmbeddingOpSimulator, RunReport, SimConfig};
use recshard_sharding::{
    GreedySharder, LookupCost, ShardingPlan, SizeCost, SizeLookupCost, SystemSpec,
};
use recshard_stats::{DatasetProfile, DatasetProfiler};

/// Configuration shared by the experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Factor by which production row counts and memory capacities are divided.
    pub scale: u64,
    /// Number of GPUs (the paper evaluates on 16).
    pub gpus: usize,
    /// Synthetic training samples profiled before sharding.
    pub profile_samples: usize,
    /// Simulated training iterations per measurement.
    pub sim_iterations: usize,
    /// Samples traced per simulated iteration (scaled up to the paper's
    /// 16,384 batch for reporting).
    pub sim_batch: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A configuration that runs every experiment in seconds on a laptop
    /// while preserving the paper's capacity pressure.
    pub fn fast() -> Self {
        Self {
            scale: 2048,
            gpus: 16,
            profile_samples: 4_000,
            sim_iterations: 3,
            sim_batch: 256,
            seed: 0xA5F0,
        }
    }

    /// A smaller configuration for tests.
    pub fn tiny() -> Self {
        Self {
            scale: 16_384,
            gpus: 4,
            profile_samples: 800,
            sim_iterations: 2,
            sim_batch: 64,
            seed: 7,
        }
    }

    /// Reads overrides from environment variables (`RECSHARD_SCALE`,
    /// `RECSHARD_GPUS`, `RECSHARD_PROFILE_SAMPLES`, `RECSHARD_SIM_ITERS`,
    /// `RECSHARD_SIM_BATCH`).
    pub fn from_env() -> Self {
        let mut cfg = Self::fast();
        let get = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
        if let Some(v) = get("RECSHARD_SCALE") {
            cfg.scale = v.max(1);
        }
        if let Some(v) = get("RECSHARD_GPUS") {
            cfg.gpus = v.max(1) as usize;
        }
        if let Some(v) = get("RECSHARD_PROFILE_SAMPLES") {
            cfg.profile_samples = v.max(1) as usize;
        }
        if let Some(v) = get("RECSHARD_SIM_ITERS") {
            cfg.sim_iterations = v.max(1) as usize;
        }
        if let Some(v) = get("RECSHARD_SIM_BATCH") {
            cfg.sim_batch = v.max(1) as usize;
        }
        cfg
    }

    /// The scaled reference model for one of the paper's RMs.
    pub fn model(&self, kind: RmKind) -> ModelSpec {
        ModelSpec::reference(kind).scaled(self.scale)
    }

    /// The scaled 16-GPU (or overridden GPU count) evaluation system.
    pub fn system(&self) -> SystemSpec {
        SystemSpec::paper_with_gpus(self.gpus).scaled(self.scale)
    }

    /// The simulation configuration (results reported at the paper's batch
    /// size of 16,384).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            kernel_overhead_us_per_table: 8.0,
            scale_to_batch: Some(recshard_data::model::PAPER_BATCH_SIZE),
        }
    }

    /// Builds the model, system and profile every experiment binary starts
    /// from — the shared first step of Figures 5/6/12/13 and Tables 3–6.
    pub fn setup(&self, kind: RmKind) -> ExperimentSetup {
        let model = self.model(kind);
        let system = self.system();
        let profile = DatasetProfiler::profile_model(&model, self.profile_samples, self.seed);
        ExperimentSetup {
            kind,
            model,
            system,
            profile,
        }
    }

    /// The discrete-event cluster configuration matching this experiment
    /// scale: same traced batch and batch scaling as [`sim_config`]
    /// (Self::sim_config), `iterations` simulated arrivals at `arrival`.
    pub fn des_config(&self, iterations: u64, arrival: ArrivalProcess) -> ClusterConfig {
        ClusterConfig {
            batch_size: self.sim_batch,
            iterations,
            seed: self.seed ^ 0xDE5,
            arrival,
            kernel_overhead_us_per_table: 8.0,
            scale_to_batch: Some(recshard_data::model::PAPER_BATCH_SIZE),
            ..ClusterConfig::default()
        }
    }
}

/// The profiled starting point shared by the experiment binaries: one
/// reference model, the evaluation system, and the dataset profile every
/// strategy consumes.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// Which reference model this setup describes.
    pub kind: RmKind,
    /// The scaled reference model.
    pub model: ModelSpec,
    /// The scaled evaluation system.
    pub system: SystemSpec,
    /// The profile every strategy shards from.
    pub profile: DatasetProfile,
}

impl ExperimentSetup {
    /// Produces `strategy`'s plan for this setup.
    pub fn plan(&self, strategy: Strategy) -> ShardingPlan {
        strategy.plan(&self.model, &self.profile, &self.system)
    }

    /// Replays a plan through the discrete-event cluster simulator. Solve the
    /// plan once with [`plan`](Self::plan) and reuse it across calls —
    /// RecShard's solve is the expensive phase.
    pub fn des_summary(&self, plan: &ShardingPlan, config: ClusterConfig) -> RunSummary {
        ClusterSimulator::new(&self.model, plan, &self.profile, &self.system, config).run()
    }

    /// An arrival interval at which `plan` is lightly loaded: `headroom` ×
    /// the analytical iteration-time estimate of the plan (use `headroom > 1`
    /// for a stable queue, larger values for unloaded runs).
    pub fn arrival_interval_ms(&self, plan: &ShardingPlan, headroom: f64) -> f64 {
        let batch = recshard_data::model::PAPER_BATCH_SIZE;
        AnalyticalEstimator::new(&self.profile, &self.system, batch).iteration_time_ms(plan)
            * headroom
    }
}

/// A deliberately skewed multi-hot Zipf feature universe: every table
/// power-law distributed (exponents 1.05–1.6), table sizes spanning two
/// orders of magnitude, mixed pooling and coverage. This is the canonical
/// "skewed workload" shared by the `des_throughput` binary and the DES
/// integration tests, where hot-row placement decides how much traffic
/// crosses the UVM link.
pub fn skewed_model(tables: usize) -> ModelSpec {
    let features = (0..tables)
        .map(|i| {
            let hash_size = 1u64 << (10 + (i % 8));
            FeatureSpec {
                id: FeatureId(i as u32),
                name: format!("skewed_{i}"),
                class: if i % 3 == 0 {
                    FeatureClass::User
                } else {
                    FeatureClass::Content
                },
                cardinality: hash_size * 4,
                hash_size,
                zipf_exponent: 1.05 + 0.55 * (i as f64 / tables.max(1) as f64),
                pooling: match i % 3 {
                    0 => PoolingSpec::OneHot,
                    1 => PoolingSpec::Constant(2),
                    _ => PoolingSpec::LongTail { mean: 8.0, max: 32 },
                },
                coverage: match i % 4 {
                    0 => 1.0,
                    1 => 0.8,
                    2 => 0.5,
                    _ => 0.2,
                },
                embedding_dim: 64,
                bytes_per_element: 4,
                hash_seed: 0xBEEF ^ i as u64,
            }
        })
        .collect();
    ModelSpec::new("skewed-zipf", RmKind::Custom, features, 512)
}

/// The four sharding strategies compared throughout Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Size-based greedy baseline (SB).
    SizeBased,
    /// Lookup-based greedy baseline (LB).
    LookupBased,
    /// Size-and-Lookup greedy baseline (SBL).
    SizeLookupBased,
    /// RecShard (the paper's contribution).
    RecShard,
}

impl Strategy {
    /// All strategies in the order the paper's tables list them.
    pub fn all() -> [Strategy; 4] {
        [
            Strategy::SizeBased,
            Strategy::LookupBased,
            Strategy::SizeLookupBased,
            Strategy::RecShard,
        ]
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::SizeBased => "Size-Based",
            Strategy::LookupBased => "Lookup-Based",
            Strategy::SizeLookupBased => "Size-Based-Lookup",
            Strategy::RecShard => "RecShard",
        }
    }

    /// Produces this strategy's plan.
    ///
    /// # Panics
    ///
    /// Panics if the strategy cannot place the model on the system (the
    /// experiment configurations are chosen so it always can).
    pub fn plan(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> ShardingPlan {
        match self {
            Strategy::SizeBased => GreedySharder::new(SizeCost)
                .shard(model, profile, system)
                .expect("size-based sharding failed"),
            Strategy::LookupBased => GreedySharder::new(LookupCost)
                .shard(model, profile, system)
                .expect("lookup-based sharding failed"),
            Strategy::SizeLookupBased => GreedySharder::new(SizeLookupCost)
                .shard(model, profile, system)
                .expect("size-lookup sharding failed"),
            Strategy::RecShard => RecShard::new(RecShardConfig::default())
                .plan(model, profile, system)
                .expect("recshard sharding failed"),
        }
    }
}

/// The profile, plans and simulated run reports of one model under all four
/// strategies.
#[derive(Debug, Clone)]
pub struct StrategyComparison {
    /// Which reference model was evaluated.
    pub kind: RmKind,
    /// The profile used by every strategy.
    pub profile: DatasetProfile,
    /// `(strategy, plan, simulated run report)` for each strategy.
    pub results: Vec<(Strategy, ShardingPlan, RunReport)>,
}

impl StrategyComparison {
    /// The result entry of one strategy.
    pub fn result(&self, strategy: Strategy) -> &(Strategy, ShardingPlan, RunReport) {
        self.results
            .iter()
            .find(|(s, _, _)| *s == strategy)
            .expect("strategy present")
    }
}

/// Profiles a reference model and runs the full strategy comparison
/// (Tables 3–5, Figures 11–13 all consume this).
pub fn compare_strategies(kind: RmKind, cfg: &ExperimentConfig) -> StrategyComparison {
    let setup = cfg.setup(kind);
    let results = Strategy::all()
        .into_iter()
        .map(|strategy| {
            let plan = setup.plan(strategy);
            let mut sim = EmbeddingOpSimulator::new(
                &setup.model,
                &plan,
                &setup.profile,
                &setup.system,
                cfg.sim_config(),
            );
            let report = sim.run(cfg.sim_iterations, cfg.sim_batch, cfg.seed ^ 0x5EED);
            (strategy, plan, report)
        })
        .collect();
    StrategyComparison {
        kind,
        profile: setup.profile,
        results,
    }
}

/// Formats a number with thousands separators for table output.
pub fn fmt_count(value: f64) -> String {
    let v = value.round() as i128;
    let s = v.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if v < 0 {
        format!("-{out}")
    } else {
        out
    }
}

/// Prints a Markdown-style table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_inserts_separators() {
        assert_eq!(fmt_count(1234567.0), "1,234,567");
        assert_eq!(fmt_count(12.4), "12");
        assert_eq!(fmt_count(0.0), "0");
    }

    #[test]
    fn tiny_experiment_runs_all_strategies() {
        let cfg = ExperimentConfig::tiny();
        let cmp = compare_strategies(RmKind::Rm1, &cfg);
        assert_eq!(cmp.results.len(), 4);
        for (_, plan, report) in &cmp.results {
            assert_eq!(plan.num_gpus(), cfg.gpus);
            assert!(report.iteration_time_ms() > 0.0);
        }
        // RecShard never loses to the worst baseline on iteration time.
        let worst_baseline = cmp
            .results
            .iter()
            .filter(|(s, _, _)| *s != Strategy::RecShard)
            .map(|(_, _, r)| r.iteration_time_ms())
            .fold(0.0f64, f64::max);
        let recshard = cmp.result(Strategy::RecShard).2.iteration_time_ms();
        assert!(recshard <= worst_baseline * 1.2);
    }

    #[test]
    fn setup_and_des_helpers_are_consistent() {
        let cfg = ExperimentConfig::tiny();
        let setup = cfg.setup(RmKind::Rm1);
        assert_eq!(setup.model.num_features(), setup.profile.num_features());
        assert_eq!(setup.system.num_gpus(), cfg.gpus);
        let plan = setup.plan(Strategy::RecShard);
        let interval = setup.arrival_interval_ms(&plan, 2.0);
        assert!(interval > 0.0);
        let summary = setup.des_summary(
            &plan,
            cfg.des_config(
                20,
                recshard_des::ArrivalProcess::FixedRate {
                    interval_ms: interval,
                },
            ),
        );
        assert_eq!(summary.completed, 20);
        assert_eq!(summary.num_gpus, cfg.gpus);
        assert_eq!(summary.strategy, "recshard");
    }

    #[test]
    fn strategy_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            Strategy::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
