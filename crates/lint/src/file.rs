//! Per-file analysis context: tokens plus the structural facts every rule
//! needs — which lines are test code, which tokens sit inside which `fn`
//! body, and where `recshard-lint: allow(...)` annotations point.

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::cell::Cell;

/// How a file participates in the build, derived from its workspace path.
/// Rules declare which kinds they apply to: robustness rules only bind
/// library code, determinism rules also bind the bench binaries whose output
/// is committed, and test/example code is held to a looser standard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/*/src/**` (excluding `src/bin/`): library code.
    Lib,
    /// `crates/*/src/bin/**`, `src/main.rs`, `benches/**`: executable code.
    Bin,
    /// `crates/*/tests/**` and the workspace-level `tests/**`.
    Test,
    /// `examples/**`: demo code.
    Example,
}

/// One parsed `// recshard-lint: allow(rule, ...) -- reason` annotation.
#[derive(Debug)]
pub struct Allow {
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// Whether a non-empty `-- reason` trailer was given.
    pub has_reason: bool,
    /// Line the comment itself is on.
    pub comment_line: u32,
    /// Line of code the annotation suppresses (the comment's own line for a
    /// trailing comment, the next code line for a standalone one).
    pub applies_to: u32,
    /// Set when the annotation suppressed at least one diagnostic; an allow
    /// that suppresses nothing is itself reported (`unused-allow`).
    pub used: Cell<bool>,
}

/// A lexed file plus derived structure, ready for rules to scan.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Build role of the file.
    pub kind: FileKind,
    /// Raw source lines (for diagnostics' code snippets).
    pub lines: Vec<String>,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
    /// Parsed allow annotations.
    pub allows: Vec<Allow>,
    /// Malformed `recshard-lint:` comments (reported as `bad-allow`).
    pub bad_allows: Vec<(u32, String)>,
    /// Line ranges (inclusive) of `#[cfg(test)]` items and `mod tests`.
    test_ranges: Vec<(u32, u32)>,
    /// Token-index ranges (inclusive of braces) of `fn` bodies.
    fn_bodies: Vec<(usize, usize)>,
}

const ANNOTATION: &str = "recshard-lint:";

impl SourceFile {
    /// Lexes and analyses one file.
    pub fn parse(path: &str, kind: FileKind, src: &str) -> SourceFile {
        let lexed = lex(src);
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let (allows, bad_allows) = parse_allows(&lexed.comments, &lexed.tokens);
        let test_ranges = find_test_ranges(&lexed.tokens);
        let fn_bodies = find_fn_bodies(&lexed.tokens);
        SourceFile {
            path: path.to_string(),
            kind,
            lines,
            tokens: lexed.tokens,
            comments: lexed.comments,
            allows,
            bad_allows,
            test_ranges,
            fn_bodies,
        }
    }

    /// Whether `line` falls inside `#[cfg(test)]`-gated code or a
    /// `mod tests` block.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| s <= line && line <= e)
    }

    /// Whether a diagnostic of `rule` at `line` is suppressed by an allow
    /// annotation; marks the matching annotation used.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for a in &self.allows {
            if a.applies_to == line && a.rules.iter().any(|r| r == rule) {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// Trimmed source text of a 1-based line (empty when out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim())
            .unwrap_or("")
    }

    /// Tokens of the innermost `fn` body containing token index `idx`.
    pub fn enclosing_fn_body(&self, idx: usize) -> Option<&[Token]> {
        self.fn_bodies
            .iter()
            .filter(|&&(s, e)| s <= idx && idx <= e)
            .min_by_key(|&&(s, e)| e - s)
            .map(|&(s, e)| &self.tokens[s..=e])
    }

    /// Whether a comment on `line` or the line directly above contains
    /// `needle` (used for justification-comment rules).
    pub fn comment_near(&self, line: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| (c.line == line || c.line + 1 == line) && c.text.contains(needle))
    }

    fn t(&self, idx: usize) -> Option<&Token> {
        self.tokens.get(idx)
    }

    /// Whether token `idx` is the identifier `text`.
    pub fn is_ident(&self, idx: usize, text: &str) -> bool {
        self.t(idx)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
    }

    /// Whether token `idx` is the punctuation `ch`.
    pub fn is_punct(&self, idx: usize, ch: char) -> bool {
        self.t(idx).is_some_and(|t| {
            t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(ch)
        })
    }
}

/// Parses `recshard-lint:` annotations out of the comment list. A trailing
/// comment applies to its own line; a standalone comment applies to the next
/// line carrying a code token (so annotations stack above long statements).
fn parse_allows(comments: &[Comment], tokens: &[Token]) -> (Vec<Allow>, Vec<(u32, String)>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Annotations live in plain `//` comments only: doc comments
        // (`///`, `//!`) describing the annotation *syntax* are prose.
        if !c.block && (c.text.starts_with('/') || c.text.starts_with('!')) {
            continue;
        }
        let Some(at) = c.text.find(ANNOTATION) else {
            continue;
        };
        let rest = c.text[at + ANNOTATION.len()..].trim();
        let parsed = parse_allow_body(rest);
        let applies_to = if tokens.iter().any(|t| t.line == c.line) {
            c.line
        } else {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line + 1)
        };
        match parsed {
            Some((rules, has_reason)) => allows.push(Allow {
                rules,
                has_reason,
                comment_line: c.line,
                applies_to,
                used: Cell::new(false),
            }),
            None => bad.push((
                c.line,
                format!("malformed annotation `{ANNOTATION} {rest}`"),
            )),
        }
    }
    (allows, bad)
}

/// Parses `allow(rule, ...) -- reason`; returns the rule list and whether a
/// non-empty reason was given. `None` means unparseable.
fn parse_allow_body(rest: &str) -> Option<(Vec<String>, bool)> {
    let body = rest.strip_prefix("allow(")?;
    let close = body.find(')')?;
    let rules: Vec<String> = body[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let tail = body[close + 1..].trim();
    let has_reason = tail
        .strip_prefix("--")
        .map(|r| !r.trim().is_empty())
        .unwrap_or(false);
    Some((rules, has_reason))
}

/// Finds the matching `}` for the `{` at token index `open`, returning its
/// index (or the last token on unbalanced input).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

fn is_p(tokens: &[Token], idx: usize, ch: char) -> bool {
    tokens
        .get(idx)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(ch))
}

fn is_i(tokens: &[Token], idx: usize, text: &str) -> bool {
    tokens
        .get(idx)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

/// Line ranges covered by `#[cfg(test)]` items and `mod tests { ... }`.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_p(tokens, i, '#') && is_p(tokens, i + 1, '[') {
            let close = match_bracket(tokens, i + 1);
            let inside = &tokens[i + 2..close.min(tokens.len())];
            let is_cfg_test = inside.first().is_some_and(|t| t.text == "cfg")
                && inside.iter().any(|t| t.text == "test" || t.text == "tests")
                && !inside.iter().any(|t| t.text == "not");
            if is_cfg_test {
                if let Some((_, end)) = item_after_attributes(tokens, close + 1) {
                    ranges.push((tokens[i].line, end));
                }
            }
            i = close + 1;
            continue;
        }
        if is_i(tokens, i, "mod") && is_i(tokens, i + 1, "tests") && is_p(tokens, i + 2, '{') {
            let close = match_brace(tokens, i + 2);
            ranges.push((tokens[i].line, tokens[close].line));
            i = close + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Finds the matching `]` for the `[` at token index `open`.
fn match_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Starting at `from` (just past an attribute), skips further attributes and
/// returns the `(start_line, end_line)` of the next item: to its matching
/// close brace, or to the terminating `;` for brace-less items.
fn item_after_attributes(tokens: &[Token], mut from: usize) -> Option<(u32, u32)> {
    while is_p(tokens, from, '#') && is_p(tokens, from + 1, '[') {
        from = match_bracket(tokens, from + 1) + 1;
    }
    let start_line = tokens.get(from)?.line;
    let mut i = from;
    while i < tokens.len() {
        if is_p(tokens, i, '{') {
            let close = match_brace(tokens, i);
            return Some((start_line, tokens[close].line));
        }
        if is_p(tokens, i, ';') {
            return Some((start_line, tokens[i].line));
        }
        i += 1;
    }
    Some((start_line, tokens.last()?.line))
}

/// Token-index ranges of every `fn` body (brace-inclusive). Closures are not
/// tracked separately; they resolve to their enclosing `fn`.
fn find_fn_bodies(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut bodies = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_i(tokens, i, "fn") {
            // Scan ahead to the body `{`; a `;` first means a trait/extern
            // declaration without a body.
            let mut j = i + 1;
            while j < tokens.len() {
                if is_p(tokens, j, '{') {
                    let close = match_brace(tokens, j);
                    bodies.push((j, close));
                    break;
                }
                if is_p(tokens, j, ';') {
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    bodies
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> SourceFile {
        SourceFile::parse("crates/demo/src/lib.rs", FileKind::Lib, src)
    }

    #[test]
    fn cfg_test_mod_is_excluded_to_its_close_brace() {
        let f =
            lib("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn tail() {}\n");
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(f.in_test_code(5));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn bare_mod_tests_is_excluded_too() {
        let f = lib("mod tests {\n    fn x() {}\n}\nfn live() {}\n");
        assert!(f.in_test_code(2));
        assert!(!f.in_test_code(4));
    }

    #[test]
    fn cfg_test_on_single_item_without_braces() {
        let f = lib("#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n");
        assert!(f.in_test_code(2));
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn cfg_test_skips_interleaved_attributes() {
        let f = lib("#[cfg(test)]\n#[derive(Debug)]\nstruct T {\n    x: u32,\n}\nfn live() {}\n");
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn trailing_allow_applies_to_its_own_line() {
        let f = lib("fn f() {\n    x.unwrap(); // recshard-lint: allow(unwrap) -- invariant\n}\n");
        assert!(f.allowed("unwrap", 2));
        assert!(!f.allowed("unwrap", 1));
        assert!(f.allows[0].used.get());
    }

    #[test]
    fn standalone_allow_applies_to_next_code_line() {
        let f = lib(
            "fn f() {\n    // recshard-lint: allow(unwrap, wall-clock) -- both justified\n    x.unwrap();\n}\n",
        );
        assert!(f.allowed("unwrap", 3));
        assert!(f.allowed("wall-clock", 3));
    }

    #[test]
    fn allow_without_reason_or_rules_is_malformed() {
        let f = lib("// recshard-lint: allow(unwrap)\nfn f() {}\n");
        assert!(!f.allows[0].has_reason);
        let f = lib("// recshard-lint: allow() -- no rules\nfn f() {}\n");
        assert_eq!(f.allows.len(), 0);
        assert_eq!(f.bad_allows.len(), 1);
        let f = lib("// recshard-lint: disallow(x)\nfn f() {}\n");
        assert_eq!(f.bad_allows.len(), 1);
    }

    #[test]
    fn fn_bodies_nest_and_gate_lookups() {
        let f =
            lib("fn outer() {\n    let gate = \"RECSHARD_BENCH_TIMING\";\n    fn inner() {}\n}\n");
        // Token index of `gate` ident.
        let idx = f
            .tokens
            .iter()
            .position(|t| t.text == "gate")
            .expect("gate");
        let body = f.enclosing_fn_body(idx).expect("body");
        assert!(body
            .iter()
            .any(|t| t.text.contains("RECSHARD_BENCH_TIMING")));
    }

    #[test]
    fn comment_near_sees_same_and_previous_line() {
        let f = lib("// ordering: handoff pairs with the store\nlet x = 1;\nlet y = 2;\n");
        assert!(f.comment_near(1, "ordering:"));
        assert!(f.comment_near(2, "ordering:"));
        assert!(!f.comment_near(3, "ordering:"));
    }
}
