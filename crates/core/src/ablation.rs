//! Ablation variants of the RecShard formulation (Section 6.5 / Table 6).
//!
//! The paper measures how much each per-table statistic contributes by
//! disabling the average pooling factor and/or the coverage in the MILP's
//! cost model (setting them to 1) while always keeping the value-frequency
//! CDF. The same switches exist in [`RecShardConfig`]; this module names the
//! four variants and produces the corresponding configurations.

use crate::config::RecShardConfig;
use serde::{Deserialize, Serialize};

/// The four RecShard formulations evaluated in Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AblationVariant {
    /// Only the value-frequency CDF is used; pooling and coverage are set to 1.
    CdfOnly,
    /// CDF plus per-table coverage.
    CdfCoverage,
    /// CDF plus per-table average pooling factor.
    CdfPooling,
    /// The full formulation: CDF, pooling and coverage.
    Full,
}

impl AblationVariant {
    /// All variants in the order Table 6 lists them (Full first).
    pub fn all() -> [AblationVariant; 4] {
        [
            AblationVariant::Full,
            AblationVariant::CdfPooling,
            AblationVariant::CdfCoverage,
            AblationVariant::CdfOnly,
        ]
    }

    /// The configuration implementing this variant, derived from `base`.
    pub fn config(self, base: RecShardConfig) -> RecShardConfig {
        let mut c = base;
        match self {
            AblationVariant::CdfOnly => {
                c.use_pooling = false;
                c.use_coverage = false;
            }
            AblationVariant::CdfCoverage => {
                c.use_pooling = false;
                c.use_coverage = true;
            }
            AblationVariant::CdfPooling => {
                c.use_pooling = true;
                c.use_coverage = false;
            }
            AblationVariant::Full => {
                c.use_pooling = true;
                c.use_coverage = true;
            }
        }
        c
    }

    /// Human-readable label matching the paper's Table 6 rows.
    pub fn label(self) -> &'static str {
        match self {
            AblationVariant::CdfOnly => "CDF Only",
            AblationVariant::CdfCoverage => "CDF + Coverage",
            AblationVariant::CdfPooling => "CDF + Pooling",
            AblationVariant::Full => "RecShard (Full)",
        }
    }
}

impl std::fmt::Display for AblationVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_toggle_the_right_switches() {
        let base = RecShardConfig::default();
        let full = AblationVariant::Full.config(base);
        assert!(full.use_pooling && full.use_coverage);
        let cdf = AblationVariant::CdfOnly.config(base);
        assert!(!cdf.use_pooling && !cdf.use_coverage);
        let cov = AblationVariant::CdfCoverage.config(base);
        assert!(!cov.use_pooling && cov.use_coverage);
        let pool = AblationVariant::CdfPooling.config(base);
        assert!(pool.use_pooling && !pool.use_coverage);
    }

    #[test]
    fn all_lists_four_distinct_variants() {
        let all = AblationVariant::all();
        assert_eq!(all.len(), 4);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 4);
        assert_eq!(all[0], AblationVariant::Full);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(AblationVariant::Full.label(), "RecShard (Full)");
        assert_eq!(AblationVariant::CdfOnly.to_string(), "CDF Only");
    }
}
