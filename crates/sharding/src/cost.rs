//! Per-table cost functions used by the baseline sharders (Section 5, Step I).

use recshard_data::FeatureSpec;
use recshard_stats::FeatureProfile;

/// A function assigning a fixed scalar cost to an embedding table, used by
/// the greedy baseline sharders to order and balance tables.
pub trait CostFunction: std::fmt::Debug {
    /// Short machine-readable name of the cost function (used as the plan's
    /// strategy label).
    fn name(&self) -> &'static str;

    /// The cost of a table given its static spec and its profiled statistics.
    fn cost(&self, spec: &FeatureSpec, profile: &FeatureProfile) -> f64;
}

/// "Size" baseline: cost = hash size × embedding dimension.
///
/// Captures only the memory *capacity* footprint of a table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeCost;

impl CostFunction for SizeCost {
    fn name(&self) -> &'static str {
        "size"
    }

    fn cost(&self, spec: &FeatureSpec, _profile: &FeatureProfile) -> f64 {
        spec.hash_size as f64 * spec.embedding_dim as f64
    }
}

/// "Lookup" baseline: cost = average pooling factor × embedding dimension.
///
/// Captures only the memory *bandwidth* footprint of a table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupCost;

impl CostFunction for LookupCost {
    fn name(&self) -> &'static str {
        "lookup"
    }

    fn cost(&self, spec: &FeatureSpec, profile: &FeatureProfile) -> f64 {
        let pooling = if profile.present_samples > 0 {
            profile.avg_pooling
        } else {
            spec.avg_pooling()
        };
        pooling * spec.embedding_dim as f64
    }
}

/// "Size-and-Lookup" baseline: cost = lookup cost × log10(hash size),
/// a non-linear combination attempting to capture the caching benefit of
/// small tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeLookupCost;

impl CostFunction for SizeLookupCost {
    fn name(&self) -> &'static str {
        "size-lookup"
    }

    fn cost(&self, spec: &FeatureSpec, profile: &FeatureProfile) -> f64 {
        LookupCost.cost(spec, profile) * (spec.hash_size.max(2) as f64).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::ModelSpec;
    use recshard_stats::DatasetProfiler;

    fn setup() -> (ModelSpec, recshard_stats::DatasetProfile) {
        let model = ModelSpec::small(6, 4);
        let profile = DatasetProfiler::profile_model(&model, 1_500, 2);
        (model, profile)
    }

    #[test]
    fn size_cost_scales_with_table_size() {
        let (model, profile) = setup();
        let costs: Vec<f64> = model
            .features()
            .iter()
            .zip(profile.profiles())
            .map(|(s, p)| SizeCost.cost(s, p))
            .collect();
        for (f, &c) in model.features().iter().zip(&costs) {
            assert_eq!(c, f.hash_size as f64 * f.embedding_dim as f64);
        }
    }

    #[test]
    fn lookup_cost_tracks_pooling() {
        let (model, profile) = setup();
        for (s, p) in model.features().iter().zip(profile.profiles()) {
            let c = LookupCost.cost(s, p);
            if p.present_samples > 0 {
                assert!((c - p.avg_pooling * s.embedding_dim as f64).abs() < 1e-9);
            }
            assert!(c >= 0.0);
        }
    }

    #[test]
    fn size_lookup_combines_both() {
        let (model, profile) = setup();
        for (s, p) in model.features().iter().zip(profile.profiles()) {
            let combined = SizeLookupCost.cost(s, p);
            let lookup = LookupCost.cost(s, p);
            assert!((combined - lookup * (s.hash_size as f64).log10()).abs() < 1e-6);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [SizeCost.name(), LookupCost.name(), SizeLookupCost.name()];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn lookup_cost_falls_back_to_spec_when_unprofiled() {
        let model = ModelSpec::small(2, 1);
        let spec = &model.features()[0];
        let empty = recshard_stats::FeatureProfile::empty(spec);
        let c = LookupCost.cost(spec, &empty);
        assert!((c - spec.avg_pooling() * spec.embedding_dim as f64).abs() < 1e-9);
    }
}
