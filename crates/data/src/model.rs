//! DLRM model specifications.
//!
//! Table 2 of the paper evaluates three production-scale models that share the
//! same 397 sparse features and differ only in hash size (RM2 doubles and RM3
//! quadruples every table's row count relative to RM1):
//!
//! | Model | # sparse features | total hash size | emb dim | size |
//! |-------|-------------------|-----------------|---------|------|
//! | RM1   | 397               | 1,331,656,544   | 64      | 318 GB |
//! | RM2   | 397               | 2,661,369,917   | 64      | 635 GB |
//! | RM3   | 397               | 5,320,796,628   | 64      | 1270 GB |
//!
//! [`ModelSpec::rm1`]/[`rm2`](ModelSpec::rm2)/[`rm3`](ModelSpec::rm3) build a
//! synthetic feature universe with those aggregate properties and with
//! per-feature statistics (skew, pooling, coverage, cardinality-vs-hash-size)
//! spanning the ranges the paper's characterisation section reports.

use crate::feature::{FeatureClass, FeatureId, FeatureSpec};
use crate::pooling::PoolingSpec;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The number of sparse features in the paper's evaluation models.
pub const PAPER_NUM_FEATURES: usize = 397;
/// Total hash size (rows) of RM1 in the paper.
pub const RM1_TOTAL_HASH_SIZE: u64 = 1_331_656_544;
/// Total hash size (rows) of RM2 in the paper.
pub const RM2_TOTAL_HASH_SIZE: u64 = 2_661_369_917;
/// Total hash size (rows) of RM3 in the paper.
pub const RM3_TOTAL_HASH_SIZE: u64 = 5_320_796_628;
/// Embedding dimension used by all three models in the paper.
pub const PAPER_EMBEDDING_DIM: u32 = 64;
/// The batch size used throughout the paper's evaluation.
pub const PAPER_BATCH_SIZE: u32 = 16_384;

/// Which of the paper's reference models a [`ModelSpec`] corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RmKind {
    /// RM1: fits in aggregate HBM of 16 GPUs.
    Rm1,
    /// RM2: 2x RM1 hash sizes; needs UVM on 16 GPUs.
    Rm2,
    /// RM3: 4x RM1 hash sizes; needs UVM on 16 GPUs.
    Rm3,
    /// Any other synthetic model.
    Custom,
}

impl std::fmt::Display for RmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmKind::Rm1 => write!(f, "RM1"),
            RmKind::Rm2 => write!(f, "RM2"),
            RmKind::Rm3 => write!(f, "RM3"),
            RmKind::Custom => write!(f, "custom"),
        }
    }
}

/// A full DLRM sparse-feature specification: the set of embedding tables the
/// sharder must place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    name: String,
    kind: RmKind,
    features: Vec<FeatureSpec>,
    batch_size: u32,
    /// Factor by which production-scale row counts were divided (1 = unscaled).
    scale_factor: u64,
}

impl ModelSpec {
    /// Builds a model from an explicit list of features.
    ///
    /// # Panics
    ///
    /// Panics if any feature fails validation or if feature ids are not the
    /// dense range `0..n` in order.
    pub fn new(
        name: impl Into<String>,
        kind: RmKind,
        features: Vec<FeatureSpec>,
        batch_size: u32,
    ) -> Self {
        for (i, f) in features.iter().enumerate() {
            assert_eq!(f.id.index(), i, "feature ids must be dense and ordered");
            if let Err(e) = f.validate() {
                panic!("invalid feature spec: {e}");
            }
        }
        Self {
            name: name.into(),
            kind,
            features,
            batch_size,
            scale_factor: 1,
        }
    }

    /// The paper's RM1 model (Table 2), at production scale.
    pub fn rm1() -> Self {
        Self::reference_model(RmKind::Rm1, RM1_TOTAL_HASH_SIZE, 1)
    }

    /// The paper's RM2 model: every hash size doubled relative to RM1.
    pub fn rm2() -> Self {
        Self::scaled_up_reference(RmKind::Rm2, 2)
    }

    /// The paper's RM3 model: every hash size quadrupled relative to RM1.
    pub fn rm3() -> Self {
        Self::scaled_up_reference(RmKind::Rm3, 4)
    }

    /// RM2/RM3 are RM1 with every table's hash size multiplied (the paper's
    /// "approximate doubling of the hash size for each EMB").
    fn scaled_up_reference(kind: RmKind, hash_multiplier: u64) -> Self {
        let mut model = Self::rm1();
        for f in &mut model.features {
            f.hash_size *= hash_multiplier;
        }
        model.name = kind.to_string();
        model.kind = kind;
        model
    }

    /// Builds one of the paper's reference models by the kind tag.
    pub fn reference(kind: RmKind) -> Self {
        match kind {
            RmKind::Rm1 => Self::rm1(),
            RmKind::Rm2 => Self::rm2(),
            RmKind::Rm3 => Self::rm3(),
            RmKind::Custom => panic!("RmKind::Custom has no reference model"),
        }
    }

    /// A small synthetic model with `n` features, useful in tests and
    /// examples. Total size is on the order of `n * 50_000` rows.
    pub fn small(n: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut features = Vec::with_capacity(n);
        for i in 0..n {
            let cardinality = rng.gen_range(1_000..100_000u64);
            let hash_size = (cardinality as f64 * rng.gen_range(0.5..2.0)) as u64;
            features.push(FeatureSpec {
                id: FeatureId(i as u32),
                name: format!("small_feature_{i}"),
                class: if i % 2 == 0 {
                    FeatureClass::User
                } else {
                    FeatureClass::Content
                },
                cardinality,
                hash_size: hash_size.max(10),
                zipf_exponent: rng.gen_range(0.0..1.4),
                pooling: if rng.gen_bool(0.4) {
                    PoolingSpec::OneHot
                } else {
                    PoolingSpec::long_tail(rng.gen_range(2.0..40.0))
                },
                coverage: rng.gen_range(0.05..1.0),
                embedding_dim: 16,
                bytes_per_element: 4,
                hash_seed: seed.wrapping_add(i as u64),
            });
        }
        Self::new(format!("small-{n}"), RmKind::Custom, features, 256)
    }

    /// Synthesises a reference model with the paper's aggregate properties.
    ///
    /// The per-feature cardinalities, skews, pooling factors and coverages are
    /// drawn from meta-distributions chosen to match Figures 4, 5 and 6; the
    /// per-feature hash sizes are then scaled uniformly so the total equals
    /// the Table 2 row count for the requested model.
    fn reference_model(kind: RmKind, total_hash_target: u64, hash_multiplier: u64) -> Self {
        debug_assert_eq!(
            hash_multiplier, 1,
            "RM2/RM3 derive from RM1 via scaled_up_reference"
        );
        // All three RMs share the same underlying feature universe; only hash
        // sizes differ, so we always derive from the same seed.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EC5_4A2D);
        let n = PAPER_NUM_FEATURES;
        let mut features = Vec::with_capacity(n);
        let mut raw_hash_sizes = Vec::with_capacity(n);
        for i in 0..n {
            // Cardinality: log-uniform over [1e2, 2e8] (Figure 4 x-axis range).
            let log_card = rng.gen_range(2.0..8.3f64);
            let cardinality = 10f64.powf(log_card) as u64;
            // Hash size relative to cardinality: mostly below cardinality for
            // huge features, above for small ones (Figure 4 scatter).
            let rel: f64 = if cardinality > 10_000_000 {
                rng.gen_range(0.05..0.8)
            } else {
                rng.gen_range(0.5..4.0)
            };
            let raw_hash = ((cardinality as f64 * rel) as u64).max(100);
            raw_hash_sizes.push(raw_hash);

            // Skew: ~10% near-uniform features, the rest power laws of varying
            // strength (Figure 5: most CDFs bend hard, a handful are straight).
            let zipf_exponent = if rng.gen_bool(0.1) {
                rng.gen_range(0.0..0.2)
            } else {
                rng.gen_range(0.55..1.45)
            };

            // Pooling factor: ~35% one-hot, the rest long-tailed with mean up
            // to ~200 (Figure 6a).
            let pooling = if rng.gen_bool(0.35) {
                PoolingSpec::OneHot
            } else {
                let mean = 10f64.powf(rng.gen_range(0.3..2.3));
                PoolingSpec::long_tail(mean.min(200.0))
            };

            // Coverage: ~20% always present, the rest spread down to <1%
            // (Figure 6b).
            let coverage = if rng.gen_bool(0.2) {
                1.0
            } else {
                let u: f64 = rng.gen_range(0.0..1.0);
                (u * u).clamp(0.005, 1.0)
            };

            let class = if rng.gen_bool(0.5) {
                FeatureClass::User
            } else {
                FeatureClass::Content
            };
            features.push(FeatureSpec {
                id: FeatureId(i as u32),
                name: format!("sparse_{:03}", i),
                class,
                cardinality,
                hash_size: 1, // filled below after normalisation
                zipf_exponent,
                pooling,
                coverage,
                embedding_dim: PAPER_EMBEDDING_DIM,
                bytes_per_element: 4,
                hash_seed: 0x9E3779B9u64.wrapping_mul(i as u64 + 1),
            });
        }
        // Normalise hash sizes so the RM1-equivalent total matches the paper,
        // then apply the per-model multiplier (2x for RM2, 4x for RM3).
        let raw_total: u64 = raw_hash_sizes.iter().sum();
        let rm1_target = total_hash_target / hash_multiplier;
        for (f, raw) in features.iter_mut().zip(&raw_hash_sizes) {
            let normalised =
                ((*raw as u128 * rm1_target as u128) / raw_total as u128).max(100) as u64;
            f.hash_size = normalised * hash_multiplier;
        }
        Self {
            name: kind.to_string(),
            kind,
            features,
            batch_size: PAPER_BATCH_SIZE,
            scale_factor: 1,
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which reference model (if any) this spec corresponds to.
    pub fn kind(&self) -> RmKind {
        self.kind
    }

    /// The sparse features (embedding tables), ordered by [`FeatureId`].
    pub fn features(&self) -> &[FeatureSpec] {
        &self.features
    }

    /// Looks up a feature by id.
    pub fn feature(&self, id: FeatureId) -> &FeatureSpec {
        &self.features[id.index()]
    }

    /// Number of sparse features (= number of embedding tables).
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// Training batch size associated with the model.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Overrides the batch size.
    pub fn with_batch_size(mut self, batch_size: u32) -> Self {
        assert!(batch_size > 0, "batch size must be non-zero");
        self.batch_size = batch_size;
        self
    }

    /// The factor by which this model was scaled down from production size.
    pub fn scale_factor(&self) -> u64 {
        self.scale_factor
    }

    /// Sum of all tables' row counts (the paper's "Total Hash Size").
    pub fn total_hash_size(&self) -> u64 {
        self.features.iter().map(|f| f.hash_size).sum()
    }

    /// Sum of all tables' sizes in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.features.iter().map(|f| f.table_bytes()).sum()
    }

    /// Expected number of embedding rows read per training sample across all
    /// tables (`sum_j coverage_j * avg_pool_j`).
    pub fn expected_lookups_per_sample(&self) -> f64 {
        self.features
            .iter()
            .map(|f| f.expected_lookups_per_sample())
            .sum()
    }

    /// Returns a copy of the model with every table's cardinality and hash
    /// size divided by `factor`.
    ///
    /// Scaling the model and the memory capacities of the simulated training
    /// system by the same factor preserves the quantities the paper reports —
    /// placement fractions, HBM/UVM access shares, relative speedups — while
    /// keeping simulation state small enough for a laptop. See DESIGN.md.
    pub fn scaled(&self, factor: u64) -> ModelSpec {
        assert!(factor > 0, "scale factor must be non-zero");
        let features = self.features.iter().map(|f| f.scaled(factor)).collect();
        ModelSpec {
            name: format!("{}/{}", self.name, factor),
            kind: self.kind,
            features,
            batch_size: self.batch_size,
            scale_factor: self.scale_factor * factor,
        }
    }

    /// Returns a copy of the model restricted to the first `n` features.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or larger than the number of features.
    pub fn truncated(&self, n: usize) -> ModelSpec {
        assert!(
            n > 0 && n <= self.features.len(),
            "invalid truncation length"
        );
        ModelSpec {
            name: format!("{}[0..{}]", self.name, n),
            kind: RmKind::Custom,
            features: self.features[..n].to_vec(),
            batch_size: self.batch_size,
            scale_factor: self.scale_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rm1_matches_table2_aggregates() {
        let m = ModelSpec::rm1();
        assert_eq!(m.num_features(), PAPER_NUM_FEATURES);
        let total = m.total_hash_size();
        let err = (total as f64 - RM1_TOTAL_HASH_SIZE as f64).abs() / RM1_TOTAL_HASH_SIZE as f64;
        assert!(err < 0.001, "RM1 total hash size off by {err}: {total}");
        // ~318 GB.
        let gb = m.total_bytes() as f64 / 1e9;
        assert!((gb - 341.0).abs() < 20.0, "RM1 size {gb} GB");
    }

    #[test]
    fn rm2_rm3_are_multiples_of_rm1() {
        let rm1 = ModelSpec::rm1();
        let rm2 = ModelSpec::rm2();
        let rm3 = ModelSpec::rm3();
        for i in 0..rm1.num_features() {
            assert_eq!(rm2.features()[i].hash_size, rm1.features()[i].hash_size * 2);
            assert_eq!(rm3.features()[i].hash_size, rm1.features()[i].hash_size * 4);
            // Everything except hash size is shared.
            assert_eq!(rm2.features()[i].coverage, rm1.features()[i].coverage);
            assert_eq!(
                rm2.features()[i].zipf_exponent,
                rm1.features()[i].zipf_exponent
            );
        }
    }

    #[test]
    fn reference_models_are_deterministic() {
        let a = ModelSpec::rm1();
        let b = ModelSpec::rm1();
        assert_eq!(a, b);
    }

    #[test]
    fn scaling_divides_rows() {
        let m = ModelSpec::rm1();
        let s = m.scaled(1024);
        assert_eq!(s.num_features(), m.num_features());
        assert!(s.total_hash_size() <= m.total_hash_size() / 1000);
        assert_eq!(s.scale_factor(), 1024);
        assert_eq!(s.kind(), RmKind::Rm1);
    }

    #[test]
    fn statistics_span_paper_ranges() {
        let m = ModelSpec::rm1();
        let poolings: Vec<f64> = m.features().iter().map(|f| f.avg_pooling()).collect();
        let coverages: Vec<f64> = m.features().iter().map(|f| f.coverage).collect();
        assert!(poolings.contains(&1.0), "some one-hot features");
        assert!(
            poolings.iter().any(|&p| p > 100.0),
            "some very multi-hot features"
        );
        assert!(coverages.contains(&1.0), "some always-present features");
        assert!(coverages.iter().any(|&c| c < 0.05), "some rare features");
        let uniformish = m
            .features()
            .iter()
            .filter(|f| f.zipf_exponent < 0.2)
            .count();
        assert!(uniformish > 0 && uniformish < m.num_features() / 4);
    }

    #[test]
    fn small_model_is_valid() {
        let m = ModelSpec::small(10, 7);
        assert_eq!(m.num_features(), 10);
        for f in m.features() {
            assert!(f.validate().is_ok());
        }
    }

    #[test]
    fn truncation() {
        let m = ModelSpec::small(10, 7).truncated(4);
        assert_eq!(m.num_features(), 4);
        assert_eq!(m.kind(), RmKind::Custom);
    }

    #[test]
    fn batch_size_override() {
        let m = ModelSpec::small(4, 1).with_batch_size(64);
        assert_eq!(m.batch_size(), 64);
    }
}
