//! Diagnostics, deterministic rendering (human and JSON) and the committed
//! baseline of grandfathered violations.
//!
//! Everything here is bit-deterministic by construction: diagnostics sort by
//! `(path, line, rule, message)`, the baseline is a sorted multiset keyed by
//! `(path, rule, code)` — *content*, not line numbers, so unrelated edits
//! above a grandfathered site do not invalidate it — and the JSON export
//! escapes and orders fields identically on every run.

use std::collections::BTreeMap;

/// One finding, located in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: String,
    /// Explanation.
    pub message: String,
    /// Trimmed source line (tabs flattened), doubling as the baseline key.
    pub code: String,
}

impl Diagnostic {
    /// The baseline key: line numbers excluded on purpose.
    pub fn key(&self) -> (String, String, String) {
        (self.path.clone(), self.rule.clone(), self.code.clone())
    }
}

/// Sorts diagnostics into their canonical reporting order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
    });
}

/// The committed multiset of grandfathered violations.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String, String), usize>,
}

/// Header written at the top of every generated baseline file.
pub const BASELINE_HEADER: &str = "\
# recshard-lint baseline: grandfathered violations, keyed path<TAB>rule<TAB>code.
# A violation not listed here fails `recshard-lint --check`; an entry listed
# here that no longer occurs is stale and also fails. Regenerate with:
#     cargo run -p recshard-lint -- --update-baseline
";

impl Baseline {
    /// Parses a baseline file. Lines are `path<TAB>rule<TAB>code`; `#`
    /// comments and blank lines are ignored. Duplicate lines accumulate
    /// (one per grandfathered occurrence).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (path, rule, code) = match (parts.next(), parts.next(), parts.next()) {
                (Some(p), Some(r), Some(c)) => (p, r, c),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected path<TAB>rule<TAB>code, got `{line}`",
                        n + 1
                    ))
                }
            };
            *counts
                .entry((path.to_string(), rule.to_string(), code.to_string()))
                .or_insert(0) += 1;
        }
        Ok(Baseline { counts })
    }

    /// Renders the canonical baseline for a set of diagnostics: header plus
    /// one sorted line per occurrence. Byte-stable for a given scan.
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut lines: Vec<String> = diags
            .iter()
            .map(|d| format!("{}\t{}\t{}", d.path, d.rule, d.code))
            .collect();
        lines.sort();
        let mut out = String::from(BASELINE_HEADER);
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Number of grandfathered occurrences recorded for `key`.
    pub fn count(&self, key: &(String, String, String)) -> usize {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total grandfathered occurrences.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Splits `diags` into `(baselined, new)` and reports stale baseline
    /// entries (grandfathered occurrences that no longer exist). Within one
    /// key, the earliest occurrences are treated as the grandfathered ones.
    pub fn partition(
        &self,
        diags: &[Diagnostic],
    ) -> (Vec<Diagnostic>, Vec<Diagnostic>, Vec<String>) {
        let mut used: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        let mut baselined = Vec::new();
        let mut fresh = Vec::new();
        for d in diags {
            let key = d.key();
            let seen = used.entry(key.clone()).or_insert(0);
            if *seen < self.count(&key) {
                *seen += 1;
                baselined.push(d.clone());
            } else {
                fresh.push(d.clone());
            }
        }
        let mut stale = Vec::new();
        for (key, &count) in &self.counts {
            let present = used.get(key).copied().unwrap_or(0);
            if present < count {
                stale.push(format!(
                    "{}\t{}\t{} ({} grandfathered, {} present)",
                    key.0, key.1, key.2, count, present
                ));
            }
        }
        (baselined, fresh, stale)
    }
}

/// Renders one diagnostic for terminal output.
pub fn render_human(d: &Diagnostic) -> String {
    format!(
        "{}:{}: [{}] {}\n    | {}",
        d.path, d.line, d.rule, d.message, d.code
    )
}

/// Escapes a string for JSON embedding.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full diagnostics report as deterministic JSON. `status` per
/// diagnostic is `"new"` or `"baselined"`.
pub fn render_json(new: &[Diagnostic], baselined: &[Diagnostic], stale: &[String]) -> String {
    let mut entries: Vec<(&Diagnostic, &str)> = new
        .iter()
        .map(|d| (d, "new"))
        .chain(baselined.iter().map(|d| (d, "baselined")))
        .collect();
    entries.sort_by(|(a, sa), (b, sb)| {
        (&a.path, a.line, &a.rule, &a.message, *sa)
            .cmp(&(&b.path, b.line, &b.rule, &b.message, *sb))
    });
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"new\": {},\n  \"baselined\": {},\n  \"stale_baseline_entries\": {},\n",
        new.len(),
        baselined.len(),
        stale.len()
    ));
    out.push_str("  \"diagnostics\": [\n");
    for (i, (d, status)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"status\": \"{}\", \
             \"message\": \"{}\", \"code\": \"{}\"}}{}\n",
            json_escape(&d.path),
            d.line,
            json_escape(&d.rule),
            status,
            json_escape(&d.message),
            json_escape(&d.code),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"stale\": [\n");
    for (i, s) in stale.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\"{}\n",
            json_escape(s),
            if i + 1 < stale.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(path: &str, line: u32, rule: &str, code: &str) -> Diagnostic {
        Diagnostic {
            path: path.into(),
            line,
            rule: rule.into(),
            message: format!("msg for {rule}"),
            code: code.into(),
        }
    }

    #[test]
    fn baseline_round_trips_and_counts_duplicates() {
        let diags = vec![
            diag("a.rs", 3, "unwrap", "x.unwrap();"),
            diag("a.rs", 9, "unwrap", "x.unwrap();"),
            diag("b.rs", 1, "seqcst", "SeqCst"),
        ];
        let text = Baseline::render(&diags);
        let b = Baseline::parse(&text).expect("parse");
        assert_eq!(b.total(), 3);
        assert_eq!(
            b.count(&("a.rs".into(), "unwrap".into(), "x.unwrap();".into())),
            2
        );
        // Round trip is byte-stable.
        let (baselined, fresh, stale) = b.partition(&diags);
        assert_eq!((baselined.len(), fresh.len(), stale.len()), (3, 0, 0));
        assert_eq!(Baseline::render(&baselined), text);
    }

    #[test]
    fn partition_flags_new_occurrences_beyond_the_grandfathered_count() {
        let base = Baseline::parse("a.rs\tunwrap\tx.unwrap();\n").expect("parse");
        let diags = vec![
            diag("a.rs", 3, "unwrap", "x.unwrap();"),
            diag("a.rs", 9, "unwrap", "x.unwrap();"),
        ];
        let (baselined, fresh, stale) = base.partition(&diags);
        assert_eq!(baselined.len(), 1);
        assert_eq!(baselined[0].line, 3, "earliest occurrence is grandfathered");
        assert_eq!(fresh.len(), 1);
        assert!(stale.is_empty());
    }

    #[test]
    fn deleted_violation_makes_its_baseline_entry_stale() {
        let base = Baseline::parse("a.rs\tunwrap\tx.unwrap();\n").expect("parse");
        let (_, fresh, stale) = base.partition(&[]);
        assert!(fresh.is_empty());
        assert_eq!(stale.len(), 1);
        assert!(stale[0].contains("1 grandfathered, 0 present"));
    }

    #[test]
    fn malformed_baseline_is_rejected() {
        assert!(Baseline::parse("not a tabbed line\n").is_err());
        assert!(Baseline::parse("# comment only\n\n").expect("ok").total() == 0);
    }

    #[test]
    fn json_is_escaped_and_deterministic() {
        let d = diag("a.rs", 1, "unwrap", "let s = \"x\\y\";");
        let one = render_json(std::slice::from_ref(&d), &[], &[]);
        let two = render_json(&[d], &[], &[]);
        assert_eq!(one, two);
        assert!(one.contains("\\\"x\\\\y\\\""));
        assert!(one.contains("\"new\": 1"));
    }

    #[test]
    fn human_rendering_is_clickable() {
        let d = diag("crates/x/src/lib.rs", 42, "unwrap", "x.unwrap();");
        let text = render_human(&d);
        assert!(text.starts_with("crates/x/src/lib.rs:42: [unwrap]"));
    }
}
