//! Observability determinism contract, end to end.
//!
//! Three guarantees, asserted at integration level:
//!
//! 1. **Tracing is deterministic** — a seeded run exports byte-identical
//!    JSONL traces, Chrome `trace_event` JSON and metrics snapshots on
//!    every replay.
//! 2. **Observation never perturbs** — attaching a no-op sink (or a full
//!    collector) leaves the simulators' event logs bit-identical, locked
//!    against the same golden fingerprint `tests/golden_fingerprints.rs`
//!    commits for the un-instrumented path.
//! 3. **Exports are well-formed** — the Chrome export is loadable
//!    `trace_event` JSON (metadata + spans + instants), and the metrics
//!    snapshot agrees with the run summary it was collected from.

use recshard_bench::des_bench::{traced_smoke, DesBenchConfig};
use recshard_bench::{skewed_model, Strategy};
use recshard_des::{ArrivalProcess, ClusterConfig, ClusterSimulator, RunSummary};
use recshard_obs::{MetricValue, NoopSink, ObsBundle};
use recshard_serve::{ArrivalModel, InferenceServer, PolicyKind, ServeConfig};
use recshard_sharding::SystemSpec;
use recshard_stats::DatasetProfiler;

/// Golden event-log fingerprint of the scaled-down `des_throughput`
/// RecShard run — the same constant `tests/golden_fingerprints.rs` commits
/// (`DES_THROUGHPUT_GOLDEN[3]`). Re-asserted here under a no-op sink:
/// instrumentation hooks must not move a single event.
const DES_RECSHARD_GOLDEN: u64 = 0x8052_8467_260d_8801;

/// The scaled-down `des_throughput` RecShard configuration of
/// `tests/golden_fingerprints.rs`, optionally with a no-op sink attached.
fn golden_des_run(with_noop_sink: bool) -> RunSummary {
    let model = skewed_model(24);
    let system = SystemSpec::uniform(
        4,
        model.total_bytes() / 12,
        model.total_bytes(),
        1555.0,
        16.0,
    );
    let profile = DatasetProfiler::profile_model(&model, 3_000, 0xA5F0);
    let plan = Strategy::RecShard.plan(&model, &profile, &system);
    let config = ClusterConfig {
        batch_size: 32,
        iterations: 400,
        seed: 0xA5F0,
        arrival: ArrivalProcess::FixedRate { interval_ms: 2.0 },
        kernel_overhead_us_per_table: 8.0,
        scale_to_batch: Some(model.batch_size()),
        ..ClusterConfig::default()
    };
    let sim = ClusterSimulator::new(&model, &plan, &profile, &system, config);
    if with_noop_sink {
        let mut noop = NoopSink;
        sim.with_obs(&mut noop).run()
    } else {
        sim.run()
    }
}

fn smoke_config() -> DesBenchConfig {
    let mut cfg = DesBenchConfig::tiny();
    cfg.iterations = 60;
    cfg
}

fn smoke_bundle() -> (RunSummary, ObsBundle) {
    traced_smoke(&smoke_config())
}

#[test]
fn noop_sink_leaves_the_golden_des_fingerprint_unchanged() {
    let plain = golden_des_run(false);
    let noop = golden_des_run(true);
    assert_eq!(
        plain, noop,
        "a no-op sink must not perturb the run summary in any field"
    );
    assert_eq!(
        noop.fingerprint, DES_RECSHARD_GOLDEN,
        "no-op-sink run drifted off the committed golden fingerprint \
         (actual {:#018x}, golden {DES_RECSHARD_GOLDEN:#018x})",
        noop.fingerprint
    );
}

#[test]
fn traced_des_exports_are_byte_identical_across_replays() {
    let (summary_a, bundle_a) = smoke_bundle();
    let (summary_b, bundle_b) = smoke_bundle();
    assert_eq!(summary_a, summary_b);
    assert_eq!(
        bundle_a.trace.to_jsonl(),
        bundle_b.trace.to_jsonl(),
        "same seed must export a byte-identical JSONL trace"
    );
    assert_eq!(
        bundle_a.metrics.to_json(),
        bundle_b.metrics.to_json(),
        "same seed must export a byte-identical metrics snapshot"
    );
    assert_eq!(bundle_a.trace.to_chrome(), bundle_b.trace.to_chrome());
    assert_eq!(bundle_a.trace.fingerprint(), bundle_b.trace.fingerprint());
    assert_eq!(
        bundle_a.metrics.fingerprint(),
        bundle_b.metrics.fingerprint()
    );
}

#[test]
fn traced_des_metrics_agree_with_the_run_summary() {
    let cfg = smoke_config();
    let (summary, bundle) = smoke_bundle();
    let metric = |name: &str| -> &MetricValue {
        &bundle
            .metrics
            .entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("metric {name} missing"))
            .1
    };
    assert_eq!(
        metric("des.iterations"),
        &MetricValue::Counter(cfg.iterations)
    );
    assert_eq!(
        metric("des.exchanges"),
        &MetricValue::Counter(cfg.iterations)
    );
    assert_eq!(
        metric("des.events"),
        &MetricValue::Gauge(summary.events as f64)
    );
    match metric("des.sojourn_ms") {
        MetricValue::Quantile(q) => {
            assert_eq!(q.count, cfg.iterations);
            assert!(
                (q.summary.max - summary.iteration_time.max).abs() < 1e-9,
                "the sojourn quantile sink must see the same samples the \
                 summary reports"
            );
        }
        other => panic!("expected quantile, got {other:?}"),
    }
}

#[test]
fn chrome_trace_export_is_valid_trace_event_json() {
    let (_, bundle) = smoke_bundle();
    let chrome = bundle.trace.to_chrome();
    assert!(chrome.starts_with("{\"traceEvents\":[\n"));
    assert!(chrome.trim_end().ends_with("]}"));
    let body = chrome
        .trim_start_matches("{\"traceEvents\":[\n")
        .trim_end()
        .trim_end_matches("]}")
        .trim_end();
    let mut metadata = 0;
    let mut spans = 0;
    let mut instants = 0;
    for line in body.lines() {
        let event = line.trim().trim_end_matches(',');
        assert!(
            event.starts_with('{') && event.ends_with('}'),
            "malformed trace_event line: {event}"
        );
        if event.contains("\"ph\":\"M\"") {
            metadata += 1;
        } else if event.contains("\"ph\":\"X\"") {
            spans += 1;
            assert!(event.contains("\"dur\":"), "spans carry a duration");
        } else if event.contains("\"ph\":\"i\"") {
            instants += 1;
        } else {
            panic!("unexpected phase in trace_event line: {event}");
        }
        if metadata == 0 || !event.contains("\"ph\":\"M\"") {
            assert!(event.contains("\"ts\":"), "events carry a timestamp");
        }
    }
    assert!(
        metadata >= 4,
        "per-GPU + barrier/exchange/control lanes named"
    );
    assert!(spans > 0, "station service renders as complete spans");
    assert!(instants > 0, "iteration completions render as instants");
    // Metadata lines match the GPU lanes: a 4-GPU run names gpu 0..=3.
    for gpu in 0..4 {
        assert!(
            chrome.contains(&format!("\"args\":{{\"name\":\"gpu {gpu}\"}}")),
            "lane metadata for gpu {gpu} missing"
        );
    }
}

#[test]
fn traced_serve_run_matches_untraced_and_replays_byte_identically() {
    let model = skewed_model(24);
    let shards = 2;
    let system = SystemSpec::uniform(
        shards,
        model.total_bytes() / (24 * shards as u64),
        model.total_bytes(),
        1555.0,
        16.0,
    );
    let profile = DatasetProfiler::profile_model(&model, 4_000, 0x5E21);
    let plan = Strategy::SizeBased.plan(&model, &profile, &system);
    let config = ServeConfig {
        queries: 400,
        warmup: 100,
        batch_size: 8,
        seed: 0x5E21,
        policy: PolicyKind::StatGuided,
        arrival: ArrivalModel::FixedRate { interval_us: 50.0 },
        ..ServeConfig::default()
    };
    let plain = InferenceServer::run(&model, &plan, &profile, &system, config);
    let (traced, bundle_a) = InferenceServer::run_traced(&model, &plan, &profile, &system, config);
    assert_eq!(
        plain, traced,
        "tracing must not perturb the serving report, fingerprint included"
    );
    let (_, bundle_b) = InferenceServer::run_traced(&model, &plan, &profile, &system, config);
    assert_eq!(bundle_a.trace.to_jsonl(), bundle_b.trace.to_jsonl());
    assert_eq!(bundle_a.metrics.to_json(), bundle_b.metrics.to_json());
    let names: std::collections::HashSet<&str> = bundle_a
        .trace
        .records()
        .iter()
        .map(|r| r.event.name())
        .collect();
    for expected in ["query_served", "query_latency", "cache_shard"] {
        assert!(names.contains(expected), "{expected} records missing");
    }
}
