//! Virtual simulation time.

use serde::{Deserialize, Serialize};

/// A point in virtual time, in integer nanoseconds since simulation start.
///
/// Integer nanoseconds (rather than `f64` milliseconds) make event ordering
/// exact: two events scheduled from the same timing computation compare
/// identically on every platform, which the determinism guarantee of the
/// engine relies on.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Converts from milliseconds (saturating at zero for negative inputs).
    pub fn from_ms(ms: f64) -> Self {
        SimTime((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Converts from microseconds (saturating at zero for negative inputs).
    pub fn from_us(us: f64) -> Self {
        SimTime((us.max(0.0) * 1e3).round() as u64)
    }

    /// The time as fractional milliseconds.
    pub fn as_ms(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The time as fractional seconds.
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Raw nanoseconds.
    pub fn as_ns(&self) -> u64 {
        self.0
    }

    /// This time advanced by `ns` nanoseconds (saturating, so an absurdly
    /// large delay pins to the far future instead of wrapping around and
    /// violating event-queue causality).
    pub fn after_ns(&self, ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(ns))
    }

    /// Nanoseconds elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (a causality bug).
    pub fn since(&self, earlier: SimTime) -> u64 {
        self.0
            .checked_sub(earlier.0)
            // recshard-lint: allow(unwrap) -- documented panic: a reversed
            // interval is a causality bug, not a recoverable condition.
            .expect("SimTime::since called with a later timestamp")
    }

    /// Converts fractional seconds to integer nanoseconds, or `None` when
    /// the value cannot be represented (negative, NaN, or past `u64::MAX`).
    ///
    /// `as u64` on a float silently saturates (`inf → u64::MAX`) and maps
    /// NaN to 0, so huge-table-on-slow-link transfer times and poisoned
    /// bandwidth configs used to alias onto legitimate durations. Code that
    /// must distinguish those cases goes through here; code that only needs
    /// a sane clamp uses [`SimTime::saturating_ns_from_secs`].
    pub fn checked_ns_from_secs(seconds: f64) -> Option<u64> {
        if seconds.is_nan() || seconds < 0.0 {
            return None;
        }
        let ns = (seconds * 1e9).round();
        // 2^64 ns ≈ 584 years of virtual time; anything at or past it is a
        // config bug, not a schedulable delay.
        if ns >= u64::MAX as f64 {
            return None;
        }
        Some(ns as u64)
    }

    /// Converts fractional seconds to integer nanoseconds, clamping negative
    /// and NaN inputs to 0 and overly large inputs to `u64::MAX`.
    ///
    /// For non-negative finite inputs below `u64::MAX` ns this computes
    /// exactly `(seconds * 1e9).round() as u64` — the expression the
    /// simulator has always used — so routing existing call sites through
    /// this helper cannot perturb event timestamps or fingerprints.
    pub fn saturating_ns_from_secs(seconds: f64) -> u64 {
        if seconds.is_nan() {
            return 0;
        }
        // `as u64` already saturates at both ends for non-NaN floats.
        (seconds.max(0.0) * 1e9).round() as u64
    }

    /// Converts fractional milliseconds to integer nanoseconds, clamping
    /// negative and NaN inputs to 0 and overly large inputs to `u64::MAX`.
    ///
    /// For non-negative finite inputs this computes exactly
    /// `(ms * 1e6).round() as u64` — the expression arrival-gap drawing has
    /// always used — so the conversion is fingerprint-preserving.
    pub fn saturating_ns_from_ms(ms: f64) -> u64 {
        if ms.is_nan() {
            return 0;
        }
        (ms.max(0.0) * 1e6).round() as u64
    }
}

impl std::ops::Add<SimTime> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ms(1.5);
        assert_eq!(t.as_ns(), 1_500_000);
        assert!((t.as_ms() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_us(250.0).as_ms() - 0.25).abs() < 1e-12);
        assert!((SimTime(2_000_000_000).as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(1.0).after_ns(500);
        assert_eq!(t.as_ns(), 1_000_500);
        assert_eq!(t.since(SimTime::from_ms(1.0)), 500);
        assert_eq!((SimTime(3) + SimTime(4)).as_ns(), 7);
    }

    #[test]
    fn negative_ms_saturates_to_zero() {
        assert_eq!(SimTime::from_ms(-3.0), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "later timestamp")]
    fn since_panics_on_causality_violation() {
        let _ = SimTime(1).since(SimTime(2));
    }

    #[test]
    fn checked_ns_covers_the_edges() {
        // Ordinary values round like the legacy expression.
        assert_eq!(SimTime::checked_ns_from_secs(1.5), Some(1_500_000_000));
        // Sub-nanosecond transfers round to zero or one, never panic.
        assert_eq!(SimTime::checked_ns_from_secs(4e-10), Some(0));
        assert_eq!(SimTime::checked_ns_from_secs(6e-10), Some(1));
        // Unrepresentable inputs are rejected, not aliased.
        assert_eq!(SimTime::checked_ns_from_secs(1e30), None);
        assert_eq!(SimTime::checked_ns_from_secs(f64::INFINITY), None);
        assert_eq!(SimTime::checked_ns_from_secs(f64::NAN), None);
        assert_eq!(SimTime::checked_ns_from_secs(-1.0), None);
        // The largest representable second count still converts.
        assert!(SimTime::checked_ns_from_secs(1.8e10).is_some());
    }

    #[test]
    fn saturating_ns_clamps_instead_of_aliasing() {
        assert_eq!(SimTime::saturating_ns_from_secs(1.5), 1_500_000_000);
        assert_eq!(SimTime::saturating_ns_from_secs(-3.0), 0);
        assert_eq!(SimTime::saturating_ns_from_secs(f64::NAN), 0);
        assert_eq!(SimTime::saturating_ns_from_secs(1e30), u64::MAX);
        assert_eq!(SimTime::saturating_ns_from_secs(f64::INFINITY), u64::MAX);
        assert_eq!(SimTime::saturating_ns_from_ms(2.5), 2_500_000);
        assert_eq!(SimTime::saturating_ns_from_ms(-1.0), 0);
        assert_eq!(SimTime::saturating_ns_from_ms(f64::NAN), 0);
        assert_eq!(SimTime::saturating_ns_from_ms(1e30), u64::MAX);
    }

    #[test]
    fn saturating_matches_legacy_expression_on_normal_inputs() {
        // The helper must be a drop-in for `(x * 1e9).round() as u64` /
        // `(x * 1e6).round() as u64` wherever those appeared, or replay
        // fingerprints would shift by ulps.
        for &s in &[0.0, 1e-9, 0.25, 1.0, 3.75, 1234.5678, 9.9e8] {
            assert_eq!(
                SimTime::saturating_ns_from_secs(s),
                (s * 1e9).round() as u64
            );
        }
        for &ms in &[0.0, 0.001, 0.25, 2.5, 800.0, 123456.789] {
            assert_eq!(
                SimTime::saturating_ns_from_ms(ms),
                (ms * 1e6).round() as u64
            );
        }
    }
}
