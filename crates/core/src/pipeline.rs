//! The end-to-end RecShard pipeline (Figure 10): profile → partition/place →
//! remap.

use crate::config::{RecShardConfig, SolverKind};
use crate::error::RecShardError;
use crate::formulation::MilpFormulation;
use crate::solver::StructuredSolver;
use recshard_data::{ModelSpec, SampleGenerator};
use recshard_sharding::{RemapTable, ShardingPlan, SystemSpec};
use recshard_stats::{DatasetProfile, DatasetProfiler};

/// The RecShard sharder.
///
/// Construct it with a [`RecShardConfig`] and call [`plan`](RecShard::plan)
/// with a profiled dataset, or [`run`](RecShard::run) to let it profile a
/// synthetic dataset itself (phases 1–3 of the paper's Figure 10).
#[derive(Debug, Clone)]
pub struct RecShard {
    config: RecShardConfig,
}

/// Everything the full pipeline produces: the profile it derived, the plan it
/// solved for, and the materialised per-table remapping tables.
#[derive(Debug, Clone)]
pub struct RecShardOutput {
    /// The dataset profile used for partitioning (phase 1).
    pub profile: DatasetProfile,
    /// The partitioning and placement decision (phase 2).
    pub plan: ShardingPlan,
    /// Per-table remapping tables (phase 3), ordered by feature id.
    pub remap_tables: Vec<RemapTable>,
}

impl RecShardOutput {
    /// Total storage overhead of the remapping tables in bytes
    /// (4 bytes per row, Section 6.6).
    pub fn remap_storage_bytes(&self) -> u64 {
        self.remap_tables.iter().map(|r| r.storage_bytes()).sum()
    }
}

impl Default for RecShard {
    fn default() -> Self {
        Self::new(RecShardConfig::default())
    }
}

impl RecShard {
    /// Creates a sharder with the given configuration.
    pub fn new(config: RecShardConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RecShardConfig {
        &self.config
    }

    /// Phase 2 only: produce a partitioning and placement plan from an
    /// existing profile.
    ///
    /// # Errors
    ///
    /// See [`RecShardError`].
    pub fn plan(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
    ) -> Result<ShardingPlan, RecShardError> {
        match self.config.solver {
            SolverKind::Structured => {
                StructuredSolver::new(self.config).solve(model, profile, system)
            }
            SolverKind::ExactMilp => {
                MilpFormulation::new(self.config).solve(model, profile, system)
            }
        }
    }

    /// Phase 3 only: materialise per-table remapping tables for a plan.
    pub fn remap(&self, plan: &ShardingPlan, profile: &DatasetProfile) -> Vec<RemapTable> {
        plan.placements()
            .iter()
            .zip(profile.profiles())
            .map(|(placement, prof)| RemapTable::build(placement, &prof.ranked_rows))
            .collect()
    }

    /// The full pipeline: profile `profile_samples` synthetic training samples
    /// of `model`, solve for a plan on `system`, and build the remapping
    /// tables.
    ///
    /// # Errors
    ///
    /// See [`RecShardError`].
    pub fn run(
        &self,
        model: &ModelSpec,
        system: &SystemSpec,
        profile_samples: usize,
        seed: u64,
    ) -> Result<RecShardOutput, RecShardError> {
        let mut profiler = DatasetProfiler::new(model);
        let mut gen = SampleGenerator::new(model, seed);
        for _ in 0..profile_samples {
            profiler.consume(&gen.sample());
        }
        let profile = profiler.finish();
        let plan = self.plan(model, &profile, system)?;
        let remap_tables = self.remap(&plan, &profile);
        Ok(RecShardOutput { profile, plan, remap_tables })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::ModelSpec;
    use recshard_sharding::MemoryTier;

    #[test]
    fn full_pipeline_produces_consistent_output() {
        let model = ModelSpec::small(8, 17);
        let system =
            SystemSpec::uniform(2, model.total_bytes() / 6, model.total_bytes(), 1555.0, 16.0);
        let out = RecShard::default().run(&model, &system, 1_500, 3).unwrap();
        out.plan.validate(&model, &system).unwrap();
        assert_eq!(out.remap_tables.len(), model.num_features());
        // Remap tables agree with the plan's split sizes.
        for (remap, placement) in out.remap_tables.iter().zip(out.plan.placements()) {
            assert_eq!(remap.total_rows(), placement.total_rows);
            assert_eq!(remap.hbm_rows(), placement.hbm_rows);
        }
        assert_eq!(out.remap_storage_bytes(), model.total_hash_size() * 4);
    }

    #[test]
    fn hot_rows_end_up_in_hbm() {
        let model = ModelSpec::small(6, 23);
        let system =
            SystemSpec::uniform(2, model.total_bytes() / 4, model.total_bytes(), 1555.0, 16.0);
        let out = RecShard::default().run(&model, &system, 2_000, 5).unwrap();
        // For every table that keeps at least one row in HBM, the single most
        // frequently accessed row must be one of them.
        for (t, remap) in out.remap_tables.iter().enumerate() {
            let prof = &out.profile.profiles()[t];
            if out.plan.placements()[t].hbm_rows > 0 && !prof.ranked_rows.is_empty() {
                assert_eq!(remap.tier_of(prof.ranked_rows[0]), MemoryTier::Hbm);
            }
        }
    }

    #[test]
    fn exact_solver_configurable() {
        let model = ModelSpec::small(3, 29).with_batch_size(64);
        let system =
            SystemSpec::uniform(2, model.total_bytes() / 4, model.total_bytes(), 1555.0, 16.0);
        let config = RecShardConfig::default().with_exact_milp().with_icdf_steps(5);
        let out = RecShard::new(config).run(&model, &system, 800, 7).unwrap();
        out.plan.validate(&model, &system).unwrap();
        assert_eq!(out.plan.strategy(), "recshard-milp");
    }

    #[test]
    fn invalid_config_is_reported() {
        let model = ModelSpec::small(3, 1);
        let system = SystemSpec::uniform(2, model.total_bytes(), model.total_bytes(), 1555.0, 16.0);
        let mut config = RecShardConfig::default();
        config.icdf_steps = 0;
        let err = RecShard::new(config).run(&model, &system, 100, 1);
        assert!(matches!(err, Err(RecShardError::InvalidConfig(_))));
    }
}
