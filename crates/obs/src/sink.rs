//! The instrumentation hook: [`ObsSink`], the borrowed [`ObsHandle`] the
//! hot layers thread through their call chains, and the standard
//! [`Collector`] sink that buffers trace records and routes them into
//! well-known registry metrics.

use crate::registry::{CounterId, GaugeId, MetricsRegistry, MetricsSnapshot, QuantileId};
use crate::trace::{Trace, TraceBuffer, TraceEvent};

/// Receiver of instrumentation events.
///
/// Implementations must not observe-and-perturb: recording an event may not
/// influence the instrumented computation (the simulators' event logs and
/// fingerprints are asserted identical with and without a sink attached).
pub trait ObsSink {
    /// Whether events should be recorded at all. Hook sites check this once
    /// per scope and skip event construction entirely when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event at virtual time `ts_ns`.
    fn record(&mut self, ts_ns: u64, event: TraceEvent);
}

/// The do-nothing sink: [`enabled`](ObsSink::enabled) is `false`, so hook
/// sites skip event construction and instrumented code runs at full speed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl ObsSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ts_ns: u64, _event: TraceEvent) {}
}

/// A cheap, optional, borrowed handle to a sink — the form the hot layers
/// store and thread through their call chains. The default/noop handle holds
/// no sink at all, so the per-hook cost of an un-instrumented run is one
/// `Option` branch (no virtual call, no allocation).
#[derive(Default)]
pub struct ObsHandle<'a> {
    sink: Option<&'a mut (dyn ObsSink + 'a)>,
}

impl std::fmt::Debug for ObsHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl<'a> ObsHandle<'a> {
    /// A handle with no sink: every hook is a skipped branch.
    pub fn noop() -> Self {
        Self { sink: None }
    }

    /// A handle recording into `sink`.
    pub fn attached(sink: &'a mut (dyn ObsSink + 'a)) -> Self {
        Self { sink: Some(sink) }
    }

    /// Whether hook sites should construct and record events.
    #[inline]
    pub fn enabled(&self) -> bool {
        match &self.sink {
            Some(sink) => sink.enabled(),
            None => false,
        }
    }

    /// Records one event if a sink is attached and enabled.
    #[inline]
    pub fn record(&mut self, ts_ns: u64, event: TraceEvent) {
        if let Some(sink) = &mut self.sink {
            if sink.enabled() {
                sink.record(ts_ns, event);
            }
        }
    }

    /// Reborrows the handle for a nested call without consuming it.
    pub fn reborrow(&mut self) -> ObsHandle<'_> {
        ObsHandle {
            sink: self.sink.as_deref_mut().map(|s| s as &mut dyn ObsSink),
        }
    }
}

/// Well-known metric handles the collector routes events into.
#[derive(Debug, Clone, Copy)]
struct Ids {
    des_iterations: CounterId,
    des_station_jobs: CounterId,
    des_exchanges: CounterId,
    des_reshard_checks: CounterId,
    des_reshards: CounterId,
    des_events: GaugeId,
    des_sojourn_ms: QuantileId,
    des_station_wait_ms: QuantileId,
    des_barrier_wait_ms: QuantileId,
    des_link_transfers: CounterId,
    des_link_duration_ms: QuantileId,
    des_link_stretch: QuantileId,
    des_link_tenancy: QuantileId,
    solver_lp_solves: CounterId,
    solver_pivots: CounterId,
    solver_refactorizations: CounterId,
    solver_nodes: CounterId,
    solver_pruned: CounterId,
    solver_incumbents: CounterId,
    solver_node_solves: CounterId,
    solver_compression: GaugeId,
    serve_shard_tasks: CounterId,
    serve_queries: CounterId,
    serve_hits: CounterId,
    serve_misses: CounterId,
    serve_bypasses: CounterId,
    serve_evictions: CounterId,
    serve_latency_ms: QuantileId,
    serve_service_ms: QuantileId,
    scenario_phases: CounterId,
    scenario_rate_multiplier: GaugeId,
    scenario_shifts_applied: GaugeId,
}

impl Ids {
    fn register(reg: &mut MetricsRegistry) -> Self {
        Self {
            des_iterations: reg.counter("des.iterations"),
            des_station_jobs: reg.counter("des.station.jobs"),
            des_exchanges: reg.counter("des.exchanges"),
            des_reshard_checks: reg.counter("des.reshard.checks"),
            des_reshards: reg.counter("des.reshard.applied"),
            des_events: reg.gauge("des.events"),
            des_sojourn_ms: reg.quantile("des.sojourn_ms"),
            des_station_wait_ms: reg.quantile("des.station.wait_ms"),
            des_barrier_wait_ms: reg.quantile("des.barrier.wait_ms"),
            des_link_transfers: reg.counter("des.link.transfers"),
            des_link_duration_ms: reg.quantile("des.link.duration_ms"),
            des_link_stretch: reg.quantile("des.link.stretch"),
            des_link_tenancy: reg.quantile("des.link.tenancy"),
            solver_lp_solves: reg.counter("solver.lp_solves"),
            solver_pivots: reg.counter("solver.simplex.pivots"),
            solver_refactorizations: reg.counter("solver.simplex.refactorizations"),
            solver_nodes: reg.counter("solver.bnb.nodes"),
            solver_pruned: reg.counter("solver.bnb.pruned"),
            solver_incumbents: reg.counter("solver.bnb.incumbents"),
            solver_node_solves: reg.counter("solver.hierarchical.node_solves"),
            solver_compression: reg.gauge("solver.bucketing.compression"),
            serve_shard_tasks: reg.counter("serve.shard_tasks"),
            serve_queries: reg.counter("serve.queries"),
            serve_hits: reg.counter("serve.cache.hits"),
            serve_misses: reg.counter("serve.cache.misses"),
            serve_bypasses: reg.counter("serve.cache.bypasses"),
            serve_evictions: reg.counter("serve.cache.evictions"),
            serve_latency_ms: reg.quantile("serve.latency_ms"),
            serve_service_ms: reg.quantile("serve.service_ms"),
            scenario_phases: reg.counter("scenario.phases"),
            scenario_rate_multiplier: reg.gauge("scenario.rate_multiplier"),
            scenario_shifts_applied: reg.gauge("scenario.shifts_applied"),
        }
    }
}

/// The standard sink: buffers every event into a per-worker [`TraceBuffer`]
/// and simultaneously routes it into well-known [`MetricsRegistry`] metrics.
/// [`finish`](Collector::finish) merges all buffers deterministically and
/// snapshots the registry.
#[derive(Debug)]
pub struct Collector {
    own: TraceBuffer,
    extra: Vec<TraceBuffer>,
    registry: MetricsRegistry,
    ids: Ids,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A collector recording as worker 0.
    pub fn new() -> Self {
        Self::for_worker(0)
    }

    /// A collector recording as the given worker lane.
    pub fn for_worker(worker: u32) -> Self {
        let mut registry = MetricsRegistry::new();
        let ids = Ids::register(&mut registry);
        Self {
            own: TraceBuffer::new(worker),
            extra: Vec::new(),
            registry,
            ids,
        }
    }

    /// The underlying registry (for reading values mid-run).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mutable access to the registry, so callers can register additional
    /// metrics of their own alongside the well-known ones.
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Absorbs a buffer recorded elsewhere (e.g. by a worker thread),
    /// routing its events into the metrics and keeping its records for the
    /// deterministic merge. Ingestion order must itself be deterministic
    /// (e.g. shard order) for quantile sinks to see a stable push order.
    pub fn ingest_buffer(&mut self, buffer: TraceBuffer) {
        for r in buffer.records() {
            self.route(&r.event);
        }
        self.extra.push(buffer);
    }

    /// Finishes the collection: merged trace plus metrics snapshot.
    pub fn finish(self) -> ObsBundle {
        let mut buffers = vec![self.own];
        buffers.extend(self.extra);
        ObsBundle {
            trace: Trace::merge(buffers),
            metrics: self.registry.snapshot(),
        }
    }

    fn route(&self, event: &TraceEvent) {
        let reg = &self.registry;
        let ids = &self.ids;
        match *event {
            TraceEvent::StationEnqueue { .. } => {}
            TraceEvent::StationService { wait_ns, .. } => {
                reg.incr(ids.des_station_jobs);
                reg.record(ids.des_station_wait_ms, wait_ns as f64 / 1e6);
            }
            TraceEvent::BarrierWait { wait_ns, .. } => {
                reg.record(ids.des_barrier_wait_ms, wait_ns as f64 / 1e6);
            }
            TraceEvent::Exchange { .. } => reg.incr(ids.des_exchanges),
            TraceEvent::IterationDone { sojourn_ns, .. } => {
                reg.incr(ids.des_iterations);
                reg.record(ids.des_sojourn_ms, sojourn_ns as f64 / 1e6);
            }
            TraceEvent::ReshardCheck { resharded, .. } => {
                reg.incr(ids.des_reshard_checks);
                if resharded {
                    reg.incr(ids.des_reshards);
                }
            }
            TraceEvent::SimulationDone { events, .. } => {
                reg.set(ids.des_events, events as f64);
            }
            TraceEvent::LinkTransfer {
                work_ns,
                elapsed_ns,
                ..
            } => {
                reg.incr(ids.des_link_transfers);
                reg.record(ids.des_link_duration_ms, elapsed_ns as f64 / 1e6);
                let stretch = if work_ns == 0 {
                    1.0
                } else {
                    elapsed_ns as f64 / work_ns as f64
                };
                reg.record(ids.des_link_stretch, stretch);
            }
            TraceEvent::LinkTenancy { tenants, .. } => {
                reg.record(ids.des_link_tenancy, tenants as f64);
            }
            TraceEvent::LpSolved {
                pivots,
                refactorizations,
                ..
            } => {
                reg.incr(ids.solver_lp_solves);
                reg.add(ids.solver_pivots, pivots);
                reg.add(ids.solver_refactorizations, refactorizations);
            }
            TraceEvent::BnbOpen { .. } => reg.incr(ids.solver_nodes),
            TraceEvent::BnbPrune { .. } => reg.incr(ids.solver_pruned),
            TraceEvent::BnbIncumbent { .. } => reg.incr(ids.solver_incumbents),
            TraceEvent::Bucketing { compression, .. } => {
                reg.set(ids.solver_compression, compression);
            }
            TraceEvent::NodeSolve { .. } => reg.incr(ids.solver_node_solves),
            TraceEvent::QueryServed {
                service_ns,
                hits,
                misses,
                bypasses,
                ..
            } => {
                reg.incr(ids.serve_shard_tasks);
                reg.record(ids.serve_service_ms, service_ns as f64 / 1e6);
                reg.add(ids.serve_hits, hits);
                reg.add(ids.serve_misses, misses);
                reg.add(ids.serve_bypasses, bypasses);
            }
            TraceEvent::QueryLatency { latency_ns, .. } => {
                reg.incr(ids.serve_queries);
                reg.record(ids.serve_latency_ms, latency_ns as f64 / 1e6);
            }
            TraceEvent::ScenarioPhase {
                rate_multiplier,
                shifts_applied,
                ..
            } => {
                reg.incr(ids.scenario_phases);
                reg.set(ids.scenario_rate_multiplier, rate_multiplier);
                reg.set(ids.scenario_shifts_applied, shifts_applied as f64);
            }
            TraceEvent::CacheShard { evictions, .. } => {
                reg.add(ids.serve_evictions, evictions);
            }
        }
    }
}

impl ObsSink for Collector {
    fn record(&mut self, ts_ns: u64, event: TraceEvent) {
        self.route(&event);
        self.own.record(ts_ns, event);
    }
}

/// Everything a finished collection yields: the deterministically merged
/// trace and the name-sorted metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsBundle {
    /// The merged trace (export via [`Trace::to_jsonl`] / [`Trace::to_chrome`]).
    pub trace: Trace,
    /// The metrics snapshot (export via [`MetricsSnapshot::to_json`]).
    pub metrics: MetricsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricValue;

    fn metric<'a>(snap: &'a MetricsSnapshot, name: &str) -> &'a MetricValue {
        &snap
            .entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("metric {name} missing"))
            .1
    }

    #[test]
    fn noop_handle_is_disabled_and_records_nothing() {
        let mut h = ObsHandle::noop();
        assert!(!h.enabled());
        h.record(
            0,
            TraceEvent::IterationDone {
                iter: 0,
                sojourn_ns: 1,
            },
        );
        let mut noop = NoopSink;
        let h = ObsHandle::attached(&mut noop);
        assert!(!h.enabled(), "a NoopSink-backed handle stays disabled");
    }

    #[test]
    fn collector_routes_events_into_well_known_metrics() {
        let mut c = Collector::new();
        for iter in 0..5u64 {
            c.record(
                iter * 100,
                TraceEvent::IterationDone {
                    iter,
                    sojourn_ns: 2_000_000,
                },
            );
        }
        c.record(
            0,
            TraceEvent::LpSolved {
                node: 0,
                pivots: 12,
                refactorizations: 2,
                objective: 1.5,
            },
        );
        c.record(
            500,
            TraceEvent::ReshardCheck {
                completed: 5,
                imbalance: 0.3,
                resharded: true,
                moved_tables: 3,
                migration_ns: 10,
            },
        );
        let bundle = c.finish();
        assert_eq!(bundle.trace.len(), 7);
        assert_eq!(
            metric(&bundle.metrics, "des.iterations"),
            &MetricValue::Counter(5)
        );
        assert_eq!(
            metric(&bundle.metrics, "solver.simplex.pivots"),
            &MetricValue::Counter(12)
        );
        assert_eq!(
            metric(&bundle.metrics, "des.reshard.applied"),
            &MetricValue::Counter(1)
        );
        match metric(&bundle.metrics, "des.sojourn_ms") {
            MetricValue::Quantile(q) => {
                assert_eq!(q.count, 5);
                assert!((q.summary.mean - 2.0).abs() < 1e-9);
            }
            other => panic!("expected quantile, got {other:?}"),
        }
    }

    #[test]
    fn ingested_buffers_merge_and_route() {
        let mut c = Collector::new();
        let mut worker = TraceBuffer::new(3);
        worker.record(
            10,
            TraceEvent::QueryServed {
                shard: 3,
                query: 0,
                start_ns: 10,
                service_ns: 100,
                wait_ns: 0,
                hits: 4,
                misses: 1,
                bypasses: 0,
            },
        );
        c.ingest_buffer(worker);
        let bundle = c.finish();
        assert_eq!(bundle.trace.len(), 1);
        assert_eq!(
            metric(&bundle.metrics, "serve.cache.hits"),
            &MetricValue::Counter(4)
        );
    }
}
