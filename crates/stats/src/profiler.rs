//! The training-data profiler (Section 4.1 of the paper).
//!
//! RecShard samples a small fraction (~1%) of the training data, hashes it
//! with each table's hash function, and estimates three per-table statistics:
//! the post-hash value frequency CDF, the average pooling factor, and the
//! coverage. [`DatasetProfiler`] implements that stage: feed it samples (or
//! let it generate them from a [`ModelSpec`]) and call
//! [`finish`](DatasetProfiler::finish).

use crate::cdf::AccessCdf;
use crate::freq::FrequencyMap;
use crate::profile::{DatasetProfile, FeatureProfile};
use rand::Rng;
use recshard_data::{FeatureHasher, ModelSpec, SampleGenerator, SparseSample};

/// Streaming profiler of multi-hot training samples.
#[derive(Debug, Clone)]
pub struct DatasetProfiler {
    model: ModelSpec,
    hashers: Vec<FeatureHasher>,
    freqs: Vec<FrequencyMap>,
    present: Vec<u64>,
    lookups: Vec<u64>,
    samples_seen: u64,
    sampling_rate: f64,
}

impl DatasetProfiler {
    /// Creates a profiler that inspects every sample it is offered.
    pub fn new(model: &ModelSpec) -> Self {
        Self::with_sampling_rate(model, 1.0)
    }

    /// Creates a profiler that inspects each offered sample with probability
    /// `sampling_rate` (the paper profiles ~1% of the training store).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not within `(0, 1]`.
    pub fn with_sampling_rate(model: &ModelSpec, sampling_rate: f64) -> Self {
        assert!(
            sampling_rate > 0.0 && sampling_rate <= 1.0,
            "sampling rate must be in (0, 1]"
        );
        let hashers = model.features().iter().map(|f| f.hasher()).collect();
        let n = model.num_features();
        Self {
            model: model.clone(),
            hashers,
            freqs: vec![FrequencyMap::new(); n],
            present: vec![0; n],
            lookups: vec![0; n],
            samples_seen: 0,
            sampling_rate,
        }
    }

    /// The sampling rate this profiler applies.
    pub fn sampling_rate(&self) -> f64 {
        self.sampling_rate
    }

    /// Number of samples actually inspected so far.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Offers one sample to the profiler; it is inspected with probability
    /// `sampling_rate`.
    pub fn offer<R: Rng + ?Sized>(&mut self, sample: &SparseSample, rng: &mut R) {
        if self.sampling_rate >= 1.0 || rng.gen::<f64>() < self.sampling_rate {
            self.consume(sample);
        }
    }

    /// Unconditionally inspects one sample.
    pub fn consume(&mut self, sample: &SparseSample) {
        assert_eq!(
            sample.values.len(),
            self.model.num_features(),
            "sample feature count must match the model"
        );
        self.samples_seen += 1;
        for (f, values) in sample.values.iter().enumerate() {
            if values.is_empty() {
                continue;
            }
            self.present[f] += 1;
            self.lookups[f] += values.len() as u64;
            let hasher = &self.hashers[f];
            let freq = &mut self.freqs[f];
            for &raw in values {
                freq.record(hasher.hash(raw));
            }
        }
    }

    /// Inspects every sample in the batch.
    pub fn consume_batch(&mut self, batch: &[SparseSample]) {
        for s in batch {
            self.consume(s);
        }
    }

    /// Finalises the profile.
    pub fn finish(self) -> DatasetProfile {
        let mut profiles = Vec::with_capacity(self.model.num_features());
        for (i, spec) in self.model.features().iter().enumerate() {
            let freq = &self.freqs[i];
            let present = self.present[i];
            let avg_pooling = if present > 0 {
                self.lookups[i] as f64 / present as f64
            } else {
                0.0
            };
            let coverage = if self.samples_seen > 0 {
                present as f64 / self.samples_seen as f64
            } else {
                0.0
            };
            profiles.push(FeatureProfile {
                id: spec.id,
                hash_size: spec.hash_size,
                embedding_dim: spec.embedding_dim,
                bytes_per_element: spec.bytes_per_element,
                samples_seen: self.samples_seen,
                present_samples: present,
                total_lookups: self.lookups[i],
                avg_pooling,
                coverage,
                cdf: AccessCdf::from_frequency(freq),
                ranked_rows: freq.ranked_rows(),
            });
        }
        DatasetProfile::new(profiles, self.samples_seen)
    }

    /// Convenience: generates `num_samples` synthetic samples for `model` and
    /// profiles all of them.
    pub fn profile_model(model: &ModelSpec, num_samples: usize, seed: u64) -> DatasetProfile {
        let mut profiler = DatasetProfiler::new(model);
        let mut gen = SampleGenerator::new(model, seed);
        for _ in 0..num_samples {
            profiler.consume(&gen.sample());
        }
        profiler.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use recshard_data::{FeatureId, ModelSpec};

    #[test]
    fn profiles_match_model_shape() {
        let model = ModelSpec::small(5, 2);
        let profile = DatasetProfiler::profile_model(&model, 1_000, 3);
        assert_eq!(profile.num_features(), 5);
        assert_eq!(profile.samples_profiled(), 1_000);
        for (p, f) in profile.profiles().iter().zip(model.features()) {
            assert_eq!(p.hash_size, f.hash_size);
            assert!(p.coverage >= 0.0 && p.coverage <= 1.0);
            assert!(p.accessed_rows() <= p.hash_size);
        }
    }

    #[test]
    fn measured_statistics_close_to_spec() {
        let model = ModelSpec::small(6, 9);
        let profile = DatasetProfiler::profile_model(&model, 5_000, 11);
        for (p, f) in profile.profiles().iter().zip(model.features()) {
            // Coverage estimate within a few points of the generating value.
            assert!(
                (p.coverage - f.coverage).abs() < 0.05,
                "{}: coverage {} vs spec {}",
                f.id,
                p.coverage,
                f.coverage
            );
            // Pooling estimate within ~15% of the generating mean.
            if f.coverage > 0.2 {
                let rel = (p.avg_pooling - f.avg_pooling()).abs() / f.avg_pooling();
                assert!(
                    rel < 0.2,
                    "{}: pooling {} vs spec {}",
                    f.id,
                    p.avg_pooling,
                    f.avg_pooling()
                );
            }
        }
    }

    #[test]
    fn lookups_are_conserved() {
        let model = ModelSpec::small(4, 5);
        let mut gen = SampleGenerator::new(&model, 1);
        let batch = gen.batch(500);
        let expected: u64 = batch.iter().map(|s| s.total_lookups() as u64).sum();
        let mut profiler = DatasetProfiler::new(&model);
        profiler.consume_batch(&batch);
        let profile = profiler.finish();
        assert_eq!(profile.total_lookups(), expected);
    }

    #[test]
    fn sampling_rate_reduces_inspected_samples() {
        let model = ModelSpec::small(3, 8);
        let mut gen = SampleGenerator::new(&model, 2);
        let mut profiler = DatasetProfiler::with_sampling_rate(&model, 0.1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..5_000 {
            profiler.offer(&gen.sample(), &mut rng);
        }
        let seen = profiler.samples_seen();
        assert!(seen > 300 && seen < 800, "sampled {seen} of 5000 at 10%");
    }

    #[test]
    fn sampled_profile_approximates_full_profile() {
        // The paper's claim (§4.1): ~1% sampling suffices for placement-grade
        // statistics. Verify a 10% sample tracks the full profile closely on
        // coverage and pooling for a small model.
        let model = ModelSpec::small(5, 21);
        let full = DatasetProfiler::profile_model(&model, 8_000, 33);
        let mut gen = SampleGenerator::new(&model, 33);
        let mut sampled = DatasetProfiler::with_sampling_rate(&model, 0.1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..8_000 {
            sampled.offer(&gen.sample(), &mut rng);
        }
        let sampled = sampled.finish();
        for (a, b) in full.profiles().iter().zip(sampled.profiles()) {
            assert!((a.coverage - b.coverage).abs() < 0.07);
            if a.avg_pooling > 2.0 {
                assert!((a.avg_pooling - b.avg_pooling).abs() / a.avg_pooling < 0.25);
            }
        }
    }

    #[test]
    fn skewed_features_have_skewed_cdfs() {
        let model = ModelSpec::small(8, 13);
        let profile = DatasetProfiler::profile_model(&model, 4_000, 17);
        // Find the most skewed generating feature and check its CDF head share
        // exceeds that of the least skewed one.
        let mut idx: Vec<usize> = (0..model.num_features()).collect();
        idx.sort_by(|&a, &b| {
            model.features()[a]
                .zipf_exponent
                .partial_cmp(&model.features()[b].zipf_exponent)
                .unwrap()
        });
        let flat = &profile.profiles()[idx[0]];
        let skewed = &profile.profiles()[idx[idx.len() - 1]];
        if flat.total_lookups > 100 && skewed.total_lookups > 100 {
            assert!(skewed.cdf.top_percent_share(5.0) >= flat.cdf.top_percent_share(5.0));
        }
    }

    #[test]
    #[should_panic(expected = "sampling rate must be in (0, 1]")]
    fn invalid_sampling_rate_rejected() {
        let model = ModelSpec::small(2, 1);
        let _ = DatasetProfiler::with_sampling_rate(&model, 0.0);
    }

    #[test]
    #[should_panic(expected = "sample feature count must match the model")]
    fn mismatched_sample_rejected() {
        let model = ModelSpec::small(3, 1);
        let mut profiler = DatasetProfiler::new(&model);
        let bad = SparseSample {
            values: vec![vec![1]],
        };
        profiler.consume(&bad);
    }

    #[test]
    fn empty_profiler_finishes_cleanly() {
        let model = ModelSpec::small(3, 1);
        let profile = DatasetProfiler::new(&model).finish();
        assert_eq!(profile.samples_profiled(), 0);
        assert_eq!(profile.profile(FeatureId(0)).coverage, 0.0);
    }
}
