//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! API shape the workspace's benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — backed by
//! a simple wall-clock timer: each benchmark runs a short warm-up, then
//! `sample_size` timed batches, and reports min/median/mean per-iteration
//! times to stdout. No statistical analysis, plots or regression detection.

#![deny(missing_docs)]
// A bench harness reports on stdout; that is its interface.
#![allow(clippy::print_stdout)]

use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Throughput annotation for a group (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs one benchmark body repeatedly and records timings.
#[derive(Debug)]
pub struct Bencher {
    batch_iters: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it in `sample_size` batches after a warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: target ~5 ms per batch.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_batch =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.batch_iters = per_batch;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates the group's per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            batch_iters: 1,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{}/{label}: no samples recorded", self.name);
            return;
        }
        let mut per_iter: Vec<f64> = b
            .samples
            .iter()
            .map(|d| d.as_secs_f64() * 1e9 / b.batch_iters as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  ({:.1} Melem/s)", n as f64 / median * 1e3),
            Some(Throughput::Bytes(n)) => format!("  ({:.1} MB/s)", n as f64 / median * 1e3),
            None => String::new(),
        };
        println!(
            "{}/{label}: min {:.2} us, median {:.2} us, mean {:.2} us over {} samples x {} iters{thr}",
            self.name,
            min / 1e3,
            median / 1e3,
            mean / 1e3,
            per_iter.len(),
            b.batch_iters,
        );
    }

    /// Benchmarks a closure.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.label, f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// Ends the group (separator line in the output).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("# bench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Prevents the compiler from optimising a value away (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
