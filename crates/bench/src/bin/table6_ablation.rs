//! Table 6: RecShard ablation — average HBM and UVM accesses per GPU on RM3
//! for the four formulation variants (CDF only, CDF+Coverage, CDF+Pooling,
//! Full).

#![allow(clippy::print_stdout)]
use recshard::{AblationVariant, RecShard, RecShardConfig};
use recshard_bench::{fmt_count, ExperimentConfig};
use recshard_data::RmKind;
use recshard_memsim::EmbeddingOpSimulator;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let setup = cfg.setup(RmKind::Rm3);
    let (model, profile) = (setup.model, setup.profile);
    // The paper profiles >200M samples, so the set of *observed* rows is far
    // larger than HBM and the ablation's cost-model differences decide which
    // observed rows win the scarce HBM space. At the reduced profiling volume
    // used here the observed set is smaller, so we tighten HBM by the same
    // proportion to recreate that pressure inside the observed region;
    // otherwise every variant trivially keeps all observed rows in HBM and
    // the ablation degenerates.
    let system = setup.system.map_classes(|mut c| {
        c.hbm_capacity /= 6;
        c
    });

    println!(
        "# Table 6: RecShard ablation on RM3 ({} GPUs, scale 1/{})",
        cfg.gpus, cfg.scale
    );
    println!("| formulation | HBM accesses / GPU / iter | UVM accesses / GPU / iter | UVM share |");
    println!("|-------------|---------------------------|---------------------------|-----------|");
    for variant in AblationVariant::all() {
        let config = variant.config(RecShardConfig::default());
        let plan = RecShard::new(config)
            .plan(&model, &profile, &system)
            .expect("ablation plan");
        let mut sim = EmbeddingOpSimulator::new(&model, &plan, &profile, &system, cfg.sim_config());
        let report = sim.run(cfg.sim_iterations, cfg.sim_batch, cfg.seed ^ 0xAB1A);
        println!(
            "| {} | {} | {} | {:.2}% |",
            variant.label(),
            fmt_count(report.mean_hbm_accesses_per_gpu()),
            fmt_count(report.mean_uvm_accesses_per_gpu()),
            report.uvm_access_fraction() * 100.0
        );
    }
    println!();
    println!(
        "Paper reference: the full formulation sources ~0.5% of accesses from UVM, CDF+Pooling \
         ~0.9%, CDF+Coverage ~1.3% and CDF-only ~2.4% — every statistic added to the MILP \
         reduces UVM traffic."
    );
}
