//! Integration test of the ablation study (Table 6): every statistic added to
//! the cost model reduces (or at least never substantially increases) the
//! share of accesses served from UVM.

use recshard::{AblationVariant, RecShard, RecShardConfig};
use recshard_bench::ExperimentConfig;
use recshard_data::RmKind;
use recshard_memsim::EmbeddingOpSimulator;
use recshard_stats::DatasetProfiler;

#[test]
fn full_formulation_minimises_uvm_accesses() {
    let mut cfg = ExperimentConfig::tiny();
    // Keep the paper's 16-GPU geometry so the scaled capacity pressure matches RM3's.
    cfg.gpus = 16;
    cfg.scale = 16_384;
    cfg.profile_samples = 1_500;
    cfg.sim_iterations = 2;
    cfg.sim_batch = 96;

    let model = cfg.model(RmKind::Rm3);
    let system = cfg.system();
    let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);

    let mut uvm_share = std::collections::HashMap::new();
    for variant in AblationVariant::all() {
        let plan = RecShard::new(variant.config(RecShardConfig::default()))
            .plan(&model, &profile, &system)
            .expect("ablation plan");
        plan.validate(&model, &system).expect("valid plan");
        let mut sim = EmbeddingOpSimulator::new(&model, &plan, &profile, &system, cfg.sim_config());
        let report = sim.run(cfg.sim_iterations, cfg.sim_batch, 99);
        uvm_share.insert(variant, report.uvm_access_fraction());
    }

    let full = uvm_share[&AblationVariant::Full];
    let cdf_only = uvm_share[&AblationVariant::CdfOnly];
    // The full formulation is never worse than CDF-only (the paper measures a
    // ~5x gap; we only require the ordering to be preserved within noise).
    assert!(
        full <= cdf_only + 0.02,
        "full formulation ({full:.4}) should not source more UVM accesses than CDF-only ({cdf_only:.4})"
    );
    // Every variant keeps the UVM share far below the ~36% the whole-table
    // baselines exhibit on RM3-class pressure.
    for (variant, share) in &uvm_share {
        assert!(
            *share < 0.25,
            "{variant} UVM share unexpectedly high: {share:.3}"
        );
    }
}
