//! Trace-driven embedding-operator simulation.
//!
//! Simulates single iterations in isolation: each run draws fresh multi-hot
//! batches, routes every lookup through the plan's remap tables and charges
//! the bandwidth-bound timing model. For time-extended behaviour — queueing
//! between iterations, the all-to-all barrier, p99 tails, drift and online
//! re-sharding — use the discrete-event cluster simulator in `recshard-des`,
//! which reuses this crate's timing model for its station service times.

use crate::counters::AccessCounters;
use crate::timing::embedding_kernel_time_ms;
use rand::{Rng, SeedableRng};
use recshard_data::{ModelSpec, Zipf};
use recshard_sharding::{MemoryTier, RemapTable, ShardingPlan, SystemSpec};
use recshard_stats::{DatasetProfile, Summary};
use serde::{Deserialize, Serialize};

/// Configuration of the embedding-operator simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Fixed overhead charged per table kernel per iteration, in microseconds
    /// (models kernel launch + pooling arithmetic).
    pub kernel_overhead_us_per_table: f64,
    /// When set, counters and times are scaled from the simulated batch size
    /// up to this target batch size. This lets large-batch experiments run a
    /// representative sub-batch (e.g. simulate 1024 samples, report as if
    /// 16384) without changing which strategy wins or by how much.
    pub scale_to_batch: Option<u32>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            kernel_overhead_us_per_table: 8.0,
            scale_to_batch: None,
        }
    }
}

/// Per-GPU results of one simulated training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuIterationStats {
    /// The GPU these statistics describe.
    pub gpu: usize,
    /// Row-access and byte counters for the iteration.
    pub counters: AccessCounters,
    /// Embedding-operator time for the iteration, in milliseconds.
    pub time_ms: f64,
}

/// Results of one simulated training iteration across all GPUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    per_gpu: Vec<GpuIterationStats>,
}

impl IterationReport {
    /// Per-GPU statistics, indexed by GPU id.
    pub fn per_gpu(&self) -> &[GpuIterationStats] {
        &self.per_gpu
    }

    /// The iteration time: training is synchronous, so it is the slowest GPU's
    /// embedding time.
    pub fn iteration_time_ms(&self) -> f64 {
        self.per_gpu.iter().map(|g| g.time_ms).fold(0.0, f64::max)
    }

    /// Total accesses across all GPUs.
    pub fn total_counters(&self) -> AccessCounters {
        let mut total = AccessCounters::new();
        for g in &self.per_gpu {
            total.merge(&g.counters);
        }
        total
    }
}

/// Aggregated results of a multi-iteration simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    strategy: String,
    iterations: usize,
    /// Mean embedding time per iteration for each GPU.
    per_gpu_mean_time_ms: Vec<f64>,
    /// Mean per-iteration counters for each GPU.
    per_gpu_mean_counters: Vec<AccessCounters>,
}

impl RunReport {
    /// The sharding strategy that produced the simulated plan.
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// Number of iterations simulated.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Mean embedding-operator time per iteration for each GPU (ms).
    pub fn per_gpu_mean_time_ms(&self) -> &[f64] {
        &self.per_gpu_mean_time_ms
    }

    /// Mean per-iteration access counters for each GPU.
    pub fn per_gpu_mean_counters(&self) -> &[AccessCounters] {
        &self.per_gpu_mean_counters
    }

    /// Min/max/mean/std of the per-GPU mean iteration times — the exact
    /// format of Table 3 in the paper. Training throughput is bound by the
    /// max; load balance is captured by the standard deviation.
    pub fn time_summary(&self) -> Summary {
        Summary::of(&self.per_gpu_mean_time_ms)
    }

    /// The effective EMB training iteration time (slowest GPU's mean).
    pub fn iteration_time_ms(&self) -> f64 {
        self.time_summary().max
    }

    /// Mean HBM accesses per GPU per iteration (Table 5).
    pub fn mean_hbm_accesses_per_gpu(&self) -> f64 {
        let n = self.per_gpu_mean_counters.len().max(1);
        self.per_gpu_mean_counters
            .iter()
            .map(|c| c.hbm_accesses as f64)
            .sum::<f64>()
            / n as f64
    }

    /// Mean UVM accesses per GPU per iteration (Table 5).
    pub fn mean_uvm_accesses_per_gpu(&self) -> f64 {
        let n = self.per_gpu_mean_counters.len().max(1);
        self.per_gpu_mean_counters
            .iter()
            .map(|c| c.uvm_accesses as f64)
            .sum::<f64>()
            / n as f64
    }

    /// Fraction of all embedding accesses served from UVM.
    pub fn uvm_access_fraction(&self) -> f64 {
        let mut total = AccessCounters::new();
        for c in &self.per_gpu_mean_counters {
            total.merge(c);
        }
        total.uvm_access_fraction()
    }
}

/// Trace-driven simulator of the model-parallel embedding operator.
///
/// One simulator instance owns the remapping tables materialised from a
/// sharding plan and a dataset profile, and can run any number of iterations
/// over freshly generated multi-hot batches.
#[derive(Debug, Clone)]
pub struct EmbeddingOpSimulator {
    model: ModelSpec,
    plan: ShardingPlan,
    system: SystemSpec,
    config: SimConfig,
    remaps: Vec<RemapTable>,
    /// Per-feature value distributions and hashers are owned by the model; we
    /// pre-build the Zipf samplers once since they are pure.
    value_dists: Vec<Zipf>,
    tables_per_gpu: Vec<usize>,
}

impl EmbeddingOpSimulator {
    /// Builds a simulator for a plan, materialising the remapping tables from
    /// the profile's hottest-first row ranking (Section 4.3).
    ///
    /// # Panics
    ///
    /// Panics if the plan, profile and model disagree on the feature count.
    pub fn new(
        model: &ModelSpec,
        plan: &ShardingPlan,
        profile: &DatasetProfile,
        system: &SystemSpec,
        config: SimConfig,
    ) -> Self {
        assert_eq!(
            plan.placements().len(),
            model.num_features(),
            "plan/model mismatch"
        );
        assert_eq!(
            profile.num_features(),
            model.num_features(),
            "profile/model mismatch"
        );
        let remaps = Self::build_remap_tables(plan, profile);
        let value_dists = model
            .features()
            .iter()
            .map(|f| f.value_distribution())
            .collect();
        let mut tables_per_gpu = vec![0usize; plan.num_gpus()];
        for p in plan.placements() {
            tables_per_gpu[p.gpu] += 1;
        }
        Self {
            model: model.clone(),
            plan: plan.clone(),
            system: system.clone(),
            config,
            remaps,
            value_dists,
            tables_per_gpu,
        }
    }

    /// Materialises one remapping table per embedding table for a plan, using
    /// the profile's hottest-first row ranking.
    pub fn build_remap_tables(plan: &ShardingPlan, profile: &DatasetProfile) -> Vec<RemapTable> {
        plan.placements()
            .iter()
            .zip(profile.profiles())
            .map(|(placement, prof)| RemapTable::build(placement, &prof.ranked_rows))
            .collect()
    }

    /// The plan being simulated.
    pub fn plan(&self) -> &ShardingPlan {
        &self.plan
    }

    /// The remapping tables materialised for the plan.
    pub fn remap_tables(&self) -> &[RemapTable] {
        &self.remaps
    }

    /// Total storage of all remapping tables in bytes (Section 6.6 overhead).
    pub fn remap_storage_bytes(&self) -> u64 {
        self.remaps.iter().map(|r| r.storage_bytes()).sum()
    }

    /// Simulates one iteration over a freshly drawn batch of
    /// `simulated_batch` samples using the given RNG.
    pub fn run_iteration<R: Rng + ?Sized>(
        &self,
        simulated_batch: usize,
        rng: &mut R,
    ) -> IterationReport {
        let gpu_of = self.plan.gpu_assignments();
        let counters = sample_batch_accesses(
            &self.model,
            &self.value_dists,
            &self.remaps,
            &gpu_of,
            self.plan.num_gpus(),
            simulated_batch,
            rng,
        );

        // Scale a sub-sampled batch up to the configured full batch size.
        let scale = self
            .config
            .scale_to_batch
            .map(|b| b as f64 / simulated_batch as f64)
            .unwrap_or(1.0)
            .max(1.0);

        let per_gpu = counters
            .into_iter()
            .enumerate()
            .map(|(gpu, c)| {
                let scaled = c.scaled(scale);
                let time_ms = embedding_kernel_time_ms(
                    &scaled,
                    &self.system,
                    gpu,
                    self.tables_per_gpu[gpu],
                    self.config.kernel_overhead_us_per_table,
                );
                GpuIterationStats {
                    gpu,
                    counters: scaled,
                    time_ms,
                }
            })
            .collect();
        IterationReport { per_gpu }
    }

    /// Simulates `iterations` iterations of `simulated_batch` samples each and
    /// aggregates the per-GPU means.
    pub fn run(&mut self, iterations: usize, simulated_batch: usize, seed: u64) -> RunReport {
        assert!(iterations > 0, "must simulate at least one iteration");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let num_gpus = self.plan.num_gpus();
        let mut time_sums = vec![0.0f64; num_gpus];
        let mut counter_sums = vec![AccessCounters::new(); num_gpus];
        for _ in 0..iterations {
            let report = self.run_iteration(simulated_batch, &mut rng);
            for g in report.per_gpu() {
                time_sums[g.gpu] += g.time_ms;
                counter_sums[g.gpu].merge(&g.counters);
            }
        }
        let per_gpu_mean_time_ms = time_sums.iter().map(|t| t / iterations as f64).collect();
        let per_gpu_mean_counters = counter_sums
            .iter()
            .map(|c| c.scaled(1.0 / iterations as f64))
            .collect();
        RunReport {
            strategy: self.plan.strategy().to_string(),
            iterations,
            per_gpu_mean_time_ms,
            per_gpu_mean_counters,
        }
    }
}

/// Draws one batch of `simulated_batch` multi-hot samples and returns the
/// per-GPU tier access counters its lookups induce: for each feature, a
/// coverage draw, a pooling draw, then `pool` hashed Zipf values routed
/// through that feature's remap table, accumulated on `gpu_of[feature]`.
///
/// This is *the* trace-sampling kernel shared by the single-iteration
/// simulator here and the discrete-event cluster simulator in
/// `recshard-des`, so the two backends stay draw-for-draw comparable.
///
/// # Panics
///
/// Panics if `simulated_batch` is zero or the slices disagree with the
/// model's feature count.
pub fn sample_batch_accesses<R: Rng + ?Sized>(
    model: &ModelSpec,
    value_dists: &[Zipf],
    remaps: &[RemapTable],
    gpu_of: &[usize],
    num_gpus: usize,
    simulated_batch: usize,
    rng: &mut R,
) -> Vec<AccessCounters> {
    assert!(
        simulated_batch > 0,
        "batch must contain at least one sample"
    );
    assert_eq!(
        value_dists.len(),
        model.num_features(),
        "dists/model mismatch"
    );
    assert_eq!(remaps.len(), model.num_features(), "remaps/model mismatch");
    assert_eq!(gpu_of.len(), model.num_features(), "gpu map/model mismatch");
    let mut counters = vec![AccessCounters::new(); num_gpus];
    for (f, spec) in model.features().iter().enumerate() {
        let remap = &remaps[f];
        let hasher = spec.hasher();
        let dist = &value_dists[f];
        let gpu = gpu_of[f];
        let row_bytes = spec.row_bytes();
        let mut hbm_rows = 0u64;
        let mut uvm_rows = 0u64;
        for _ in 0..simulated_batch {
            if rng.gen::<f64>() >= spec.coverage {
                continue;
            }
            let pool = spec.pooling.sample(rng);
            for _ in 0..pool {
                let row = hasher.hash(dist.sample(rng));
                match remap.tier_of(row) {
                    MemoryTier::Hbm => hbm_rows += 1,
                    MemoryTier::Uvm => uvm_rows += 1,
                }
            }
        }
        counters[gpu].record_hbm(hbm_rows, row_bytes);
        counters[gpu].record_uvm(uvm_rows, row_bytes);
    }
    counters
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::ModelSpec;
    use recshard_sharding::{GreedySharder, LookupCost, SizeCost, TablePlacement};
    use recshard_stats::DatasetProfiler;

    fn setup(n: usize) -> (ModelSpec, DatasetProfile, SystemSpec) {
        let model = ModelSpec::small(n, 5);
        let profile = DatasetProfiler::profile_model(&model, 2_000, 3);
        let system = SystemSpec::uniform(2, u64::MAX / 4, u64::MAX / 4, 1555.0, 16.0);
        (model, profile, system)
    }

    #[test]
    fn accesses_are_conserved_across_tiers() {
        let (model, profile, system) = setup(6);
        let plan = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let sim = EmbeddingOpSimulator::new(&model, &plan, &profile, &system, SimConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let report = sim.run_iteration(128, &mut rng);
        let total = report.total_counters();
        // With everything in HBM, no UVM accesses may appear.
        assert_eq!(total.uvm_accesses, 0);
        assert!(total.hbm_accesses > 0);
        assert_eq!(report.per_gpu().len(), 2);
    }

    #[test]
    fn full_uvm_plan_sources_everything_from_uvm() {
        let (model, profile, system) = setup(4);
        let placements = model
            .features()
            .iter()
            .map(|f| TablePlacement {
                table: f.id,
                gpu: 0,
                hbm_rows: 0,
                total_rows: f.hash_size,
                row_bytes: f.row_bytes(),
            })
            .collect();
        let plan = ShardingPlan::new("all-uvm", 2, placements);
        let sim = EmbeddingOpSimulator::new(&model, &plan, &profile, &system, SimConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let report = sim.run_iteration(64, &mut rng);
        assert_eq!(report.total_counters().hbm_accesses, 0);
        assert!(report.total_counters().uvm_accesses > 0);
    }

    #[test]
    fn uvm_heavy_plan_is_slower_than_hbm_plan() {
        let (model, profile, system) = setup(6);
        let hbm_plan = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let uvm_placements = model
            .features()
            .iter()
            .map(|f| TablePlacement {
                table: f.id,
                gpu: f.id.index() % 2,
                hbm_rows: 0,
                total_rows: f.hash_size,
                row_bytes: f.row_bytes(),
            })
            .collect();
        let uvm_plan = ShardingPlan::new("all-uvm", 2, uvm_placements);
        let mut sim_hbm =
            EmbeddingOpSimulator::new(&model, &hbm_plan, &profile, &system, SimConfig::default());
        let mut sim_uvm =
            EmbeddingOpSimulator::new(&model, &uvm_plan, &profile, &system, SimConfig::default());
        let t_hbm = sim_hbm.run(3, 128, 7).iteration_time_ms();
        let t_uvm = sim_uvm.run(3, 128, 7).iteration_time_ms();
        assert!(
            t_uvm > t_hbm,
            "UVM-resident embeddings must be slower ({t_uvm} vs {t_hbm})"
        );
    }

    #[test]
    fn batch_scaling_multiplies_counts() {
        let (model, profile, system) = setup(4);
        let plan = GreedySharder::new(LookupCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let base = SimConfig {
            kernel_overhead_us_per_table: 0.0,
            scale_to_batch: None,
        };
        let scaled = SimConfig {
            kernel_overhead_us_per_table: 0.0,
            scale_to_batch: Some(1024),
        };
        let sim_a = EmbeddingOpSimulator::new(&model, &plan, &profile, &system, base);
        let sim_b = EmbeddingOpSimulator::new(&model, &plan, &profile, &system, scaled);
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(3);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(3);
        let a = sim_a.run_iteration(128, &mut rng_a).total_counters();
        let b = sim_b.run_iteration(128, &mut rng_b).total_counters();
        let ratio = b.hbm_accesses as f64 / a.hbm_accesses.max(1) as f64;
        assert!(
            (ratio - 8.0).abs() < 0.01,
            "1024/128 = 8x scaling, got {ratio}"
        );
    }

    #[test]
    fn run_report_summary_shapes() {
        let (model, profile, system) = setup(5);
        let plan = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let mut sim =
            EmbeddingOpSimulator::new(&model, &plan, &profile, &system, SimConfig::default());
        let report = sim.run(4, 64, 11);
        assert_eq!(report.iterations(), 4);
        assert_eq!(report.per_gpu_mean_time_ms().len(), 2);
        let summary = report.time_summary();
        assert!(summary.max >= summary.mean && summary.mean >= summary.min);
        assert!(report.iteration_time_ms() >= summary.mean);
        assert_eq!(report.strategy(), "size");
    }

    #[test]
    fn deterministic_given_seed() {
        let (model, profile, system) = setup(4);
        let plan = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let mut a =
            EmbeddingOpSimulator::new(&model, &plan, &profile, &system, SimConfig::default());
        let mut b =
            EmbeddingOpSimulator::new(&model, &plan, &profile, &system, SimConfig::default());
        assert_eq!(a.run(2, 64, 99), b.run(2, 64, 99));
    }

    #[test]
    fn remap_storage_is_four_bytes_per_row() {
        let (model, profile, system) = setup(4);
        let plan = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let sim = EmbeddingOpSimulator::new(&model, &plan, &profile, &system, SimConfig::default());
        assert_eq!(sim.remap_storage_bytes(), model.total_hash_size() * 4);
    }
}
